//! Digg-style personalized news feed with item churn and user churn.
//!
//! News stories age out fast and users drop in for short sessions — the
//! dynamic setting the paper argues offline back-ends handle poorly. This
//! example runs a Digg-shaped workload with a custom widget configuration
//! (Jaccard similarity and a serendipity-leaning recommendation policy —
//! the Table 1 customization hooks):
//!
//! ```text
//! cargo run --release --example news_feed
//! ```

use hyrec::client::{Serendipity, Widget};
use hyrec::core::Jaccard;
use hyrec::datasets::{DatasetSpec, TraceGenerator};
use hyrec::prelude::*;

fn main() {
    let spec = DatasetSpec::DIGG.scaled(0.02);
    println!("== generating workload: {spec}");
    let trace = TraceGenerator::new(spec, 9).generate().binarize();

    // Content providers can cap profile sizes for feed workloads
    // (Section 6) and swap both widget hooks (Table 1).
    let server = HyRecServer::builder()
        .k(10)
        .r(10)
        .profile_cap(50)
        .seed(3)
        .build();
    let widget = Widget::builder()
        .similarity(Jaccard)
        .policy(Serendipity::default())
        .build();
    println!(
        "== widget hooks: similarity={}, policy={}",
        widget.similarity_name(),
        widget.policy_name()
    );

    let mut jobs = 0u64;
    let mut wire_bytes = 0u64;
    for event in trace.iter() {
        server.record(event.user, event.item, event.vote);
        let job = server.build_job(event.user);
        let out = widget.run_job(&job);
        wire_bytes += job.gzip_bytes() as u64 + out.update.encode().len() as u64;
        server.apply_update(&out.update);
        jobs += 1;
    }

    let users = trace.user_ids().len();
    println!("== replayed {jobs} feed requests from {users} users");
    println!(
        "   average view similarity: {:.3}",
        server.average_view_similarity()
    );
    println!(
        "   bandwidth per user over 2 weeks: {:.1} kB (paper: ~8 kB on Digg)",
        wire_bytes as f64 / users as f64 / 1e3
    );

    // Show one user's feed.
    let user = trace.user_ids()[users / 2];
    let job = server.build_job(user);
    let out = widget.run_job(&job);
    println!("== serendipitous feed for {user}:");
    for rec in out.recommendations.iter().take(5) {
        println!("   story {} (popularity {})", rec.item, rec.popularity);
    }
}
