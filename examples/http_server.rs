//! The deployment shape of the paper: a real HTTP server speaking the
//! Table 1 web API, with "browsers" talking to it over TCP.
//!
//! Spawns the HyRec server on an ephemeral port, registers some users over
//! `/rate/`, then runs widget clients against `/online/` + `/neighbors/` —
//! the same gunzip → compute → gzip round-trip a real browser widget (or a
//! WASM build of `hyrec-client`) would perform:
//!
//! ```text
//! cargo run --release --example http_server
//! ```

use hyrec::client::Widget;
use hyrec::http::{api, HttpClient, ReactorServer};
use hyrec::prelude::*;
use std::sync::Arc;

fn main() {
    let hyrec = Arc::new(HyRecServer::builder().k(5).r(5).seed(11).build());
    // The sharded epoll reactor front-end: two event loops (SO_REUSEPORT
    // kernel accept sharding where available, accept hand-off otherwise)
    // over a shared worker pool; concurrent /online/ and /rate/ traffic
    // is coalesced process-wide onto the batched pipeline
    // (build_jobs / record_many).
    let server = ReactorServer::bind_sharded("127.0.0.1:0", 2, 2).expect("bind");
    let addr = server.local_addr();
    println!(
        "== HyRec web API: {} reactor shards ({:?} accept sharding) on http://{addr}",
        server.reactors(),
        server.accept_sharding(),
    );
    let handle = server.serve(api::hyrec_router(Arc::clone(&hyrec)));

    // --- Users rate items through the web API.
    let client = HttpClient::new(addr);
    println!("== POSTing ratings through /rate/");
    for user in 0..30u32 {
        for i in 0..6u32 {
            let item = (user % 3) * 50 + i;
            let response = client
                .get(&format!("/rate/?uid={user}&item={item}&like=1"))
                .expect("rate");
            assert_eq!(response.status, 200);
        }
    }

    // --- Browser clients: fetch job, compute, report back; two rounds.
    let widget = Widget::new();
    println!("== running browser widgets over HTTP");
    for round in 1..=2 {
        let mut job_bytes = 0usize;
        for user in 0..30u32 {
            let response = client.get(&format!("/online/?uid={user}")).expect("online");
            assert_eq!(response.status, 200);
            job_bytes += response.body.len();

            let job = PersonalizationJob::decode(&response.body).expect("job decodes");
            let out = widget.run_job(&job);

            let posted = client
                .post("/neighbors/", &out.update.encode())
                .expect("neighbors");
            assert_eq!(posted.status, 200);
        }
        println!(
            "   round {round}: view similarity {:.3}, {} job bytes on the wire",
            hyrec.average_view_similarity(),
            job_bytes
        );
    }

    // --- The Table 1 GET form works too. Candidate ids in jobs are
    // pseudonyms (the anonymous mapping of Section 3.1), so a widget
    // reports back the pseudonymous ids it received.
    let response = client.get("/online/?uid=0").expect("online");
    let job = PersonalizationJob::decode(&response.body).expect("job");
    let mut query = String::from("/neighbors/?uid=0");
    for (i, candidate) in job.candidates.iter().take(3).enumerate() {
        query.push_str(&format!(
            "&id{i}={}&sim{i}=0.{}",
            candidate.user.raw(),
            9 - i
        ));
    }
    let response = client.get(&query).expect("get form");
    assert_eq!(response.status, 200);
    println!(
        "== Table 1 GET form accepted; u0 now has {} stored neighbours (pseudonyms resolved)",
        hyrec.knn_of(UserId(0)).map_or(0, |h| h.len())
    );

    let shard_requests: Vec<u64> = handle
        .stats()
        .shards()
        .iter()
        .map(|shard| shard.requests())
        .collect();
    println!(
        "== {} requests served ({} coalesced into {} batches; per shard: {shard_requests:?})",
        handle.request_count(),
        handle.stats().batched_requests(),
        handle.stats().batches()
    );
    handle.stop();
    println!("== server stopped cleanly");
}
