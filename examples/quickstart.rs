//! Quickstart: the full HyRec loop in one file.
//!
//! Builds a tiny movie-recommender population, runs a few browser-side
//! personalization rounds, and prints what each architecture component did:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyrec::prelude::*;

fn main() {
    // --- Server bootstrap: k nearest neighbours, r recommendations.
    // Anonymization is on by default (candidate ids in jobs are pseudonyms);
    // we disable it here so the printed neighbour ids are recognizable.
    let server = HyRecServer::builder()
        .k(4)
        .r(5)
        .seed(7)
        .anonymize_users(false)
        .build();

    // Four taste groups of users rating overlapping item sets. In a real
    // deployment these arrive through the `/rate/` web API.
    println!("== recording ratings");
    for user in 0..40u32 {
        let group = user % 4;
        for i in 0..8u32 {
            server.record(UserId(user), ItemId(group * 100 + i), Vote::Like);
        }
        // Everyone has also seen a couple of blockbusters.
        server.record(UserId(user), ItemId(999), Vote::Like);
    }
    println!("   {} users registered", server.user_count());

    // --- The hybrid loop: the server only samples and ships jobs; the
    // widget (this process here, a browser in production) does the math.
    let widget = Widget::new();
    println!("== running 3 personalization rounds in the 'browser'");
    for round in 1..=3 {
        for user in 0..40u32 {
            let job = server.build_job(UserId(user));
            let output = widget.run_job(&job);
            server.apply_update(&output.update);
        }
        println!(
            "   round {round}: average view similarity {:.3}",
            server.average_view_similarity()
        );
    }

    // --- What did user 0 get?
    let job = server.build_job(UserId(0));
    let output = widget.run_job(&job);
    println!("== recommendations for u0 (likes items 0-7 of group 0):");
    for rec in &output.recommendations {
        println!(
            "   item {} (liked by {} candidates)",
            rec.item, rec.popularity
        );
    }
    println!("== u0's neighbours:");
    for n in &output.update.neighbors {
        println!("   {} (similarity {:.2})", n.user, n.similarity);
    }

    // --- And what crossed the wire?
    println!("== wire costs for that job:");
    println!("   raw JSON: {} bytes", job.json_bytes());
    println!("   gzipped:  {} bytes", job.gzip_bytes());
    println!("   update:   {} bytes", output.update.encode().len());
}
