//! The Section 5.6 face-off: fully decentralized gossip vs HyRec.
//!
//! Runs the same community-structured population through (a) the P2P
//! recommender (random peer sampling + clustering, profiles gossiped every
//! cycle) and (b) the hybrid loop, then compares convergence and per-client
//! bandwidth:
//!
//! ```text
//! cargo run --release --example p2p_vs_hybrid
//! ```

use hyrec::gossip::{GossipConfig, GossipNetwork};
use hyrec::prelude::*;

fn main() {
    // A population with 6 interest communities.
    let profiles: Vec<(UserId, Profile)> = (0..120u32)
        .map(|u| {
            let community = u % 6;
            let profile = Profile::from_liked(
                (0..10u32)
                    .map(|i| community * 100 + (u / 6 + i) % 14)
                    .collect::<Vec<_>>(),
            );
            (UserId(u), profile)
        })
        .collect();

    // --- P2P: cycles until convergence, bandwidth metered.
    println!("== decentralized (P2P) recommender");
    let mut network = GossipNetwork::new(
        profiles.clone(),
        GossipConfig {
            k: 8,
            ..GossipConfig::default()
        },
    );
    for cycle in [5usize, 10, 20] {
        network.run(if cycle == 5 { 5 } else { cycle / 2 });
        println!(
            "   after {:>2} cycles: view similarity {:.3}",
            cycle,
            network.average_view_similarity()
        );
    }
    let report = network.bandwidth_report();
    println!(
        "   per-node traffic: {:.1} kB over {} cycles (gossip never stops)",
        report.mean_bytes_per_node / 1e3,
        report.cycles
    );

    // --- Hybrid: same population, requests instead of cycles.
    println!("== HyRec (hybrid)");
    let server = HyRecServer::builder().k(8).seed(2).build();
    for (user, profile) in &profiles {
        for item in profile.liked() {
            server.record(*user, item, Vote::Like);
        }
    }
    let widget = Widget::new();
    let mut bytes = 0u64;
    for round in 1..=3 {
        for (user, _) in &profiles {
            let job = server.build_job(*user);
            let out = widget.run_job(&job);
            bytes += job.gzip_bytes() as u64 + out.update.encode().len() as u64;
            server.apply_update(&out.update);
        }
        println!(
            "   after {round} requests/user: view similarity {:.3}",
            server.average_view_similarity()
        );
    }
    println!(
        "   per-client traffic: {:.1} kB for 3 requests (traffic only on activity)",
        bytes as f64 / profiles.len() as f64 / 1e3
    );
    println!("== paper's point: comparable quality, but P2P pays continuous gossip traffic");
    println!("   plus NAT traversal and churn handling; HyRec needs only a browser.");
}
