//! Movie recommender on a MovieLens-shaped workload.
//!
//! Replays a scaled ML1 trace through the hybrid loop, reports convergence
//! against the ideal KNN, and compares the recommendation quality of HyRec
//! with a periodically-recomputed offline back-end — the Section 5.2/5.3
//! experiments as a library user would run them:
//!
//! ```text
//! cargo run --release --example movie_night
//! ```

use hyrec::datasets::{DatasetSpec, TraceGenerator};
use hyrec::sim::quality;
use hyrec::sim::replay::{replay_hyrec, ReplayConfig};

fn main() {
    let spec = DatasetSpec::ML1.scaled(0.25);
    println!("== generating workload: {spec}");
    let trace = TraceGenerator::new(spec, 42).generate().binarize();

    println!(
        "== replaying {} rating events through HyRec (k=10)",
        trace.len()
    );
    let result = replay_hyrec(
        &trace,
        &ReplayConfig {
            k: 10,
            probe_interval: 21 * 86_400,
            compute_ideal: true,
            ..ReplayConfig::default()
        },
    );
    println!("   day | view similarity | ideal bound");
    for probe in &result.probes {
        println!(
            "   {:>3.0} | {:.3}           | {}",
            probe.time.days(),
            probe.view_similarity,
            probe
                .ideal_view_similarity
                .map_or(String::from("-"), |v| format!("{v:.3}")),
        );
    }

    println!("== recommendation quality (80/20 chronological split, hits@n)");
    let (train, test) = trace.split_chronological(0.8);
    let hyrec = quality::quality_hyrec(&train, &test, 10, 10, 1);
    let offline = quality::quality_offline(&train, &test, 10, 10, 24 * 3600);
    println!("   n  | HyRec | offline (24h)");
    for n in [1usize, 3, 5, 10] {
        println!(
            "   {:>2} | {:>5} | {:>5}",
            n,
            hyrec.hits[n - 1],
            offline.hits[n - 1]
        );
    }
    println!(
        "   ({} positive test ratings; higher is better)",
        hyrec.positives
    );
}
