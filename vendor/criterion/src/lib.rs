//! Offline shim for the `criterion` crate.
//!
//! Implements the criterion API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter` — with a simple but honest measurement loop: per sample,
//! the iteration count is calibrated so one sample spans at least ~5 ms,
//! and the reported estimate is the *median* of per-iteration sample means
//! (robust to scheduler noise, the same robustness argument criterion's
//! own analysis makes).
//!
//! Results print as one line per benchmark and, when `CRITERION_JSON`
//! names a file, are also appended there as JSON lines — the workspace's
//! `BENCH_*.json` trajectory files are produced that way.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One finished measurement, as recorded into the JSON trail.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name (`c.benchmark_group(...)`).
    pub group: String,
    /// Benchmark id inside the group (`function` or `function/param`).
    pub id: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Maximum per-iteration time, nanoseconds.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Optional throughput denominator (bytes per iteration).
    pub throughput_bytes: Option<u64>,
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (top-level `c.bench_function`).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, "standalone", id, 20, None, f);
        self
    }

    /// All measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the JSON trail if `CRITERION_JSON` is set. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut file = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("criterion shim: cannot open {path}: {e}");
                return;
            }
        };
        for m in &self.results {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}",
                m.group, m.id, m.median_ns, m.min_ns, m.max_ns, m.samples
            );
            if let Some(bytes) = m.throughput_bytes {
                let _ = write!(line, ",\"throughput_bytes\":{bytes}");
            }
            line.push('}');
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Throughput annotation for a group (affects reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work done per iteration (reported, not measured).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (name, sample_size, throughput) =
            (self.name.clone(), self.sample_size, self.throughput);
        run_one(self.criterion, &name, id, sample_size, throughput, f);
        self
    }

    /// Benchmarks `f(bencher, input)` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (name, sample_size, throughput) =
            (self.name.clone(), self.sample_size, self.throughput);
        run_one(
            self.criterion,
            &name,
            &id.id,
            sample_size,
            throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; measurement is eager).
    pub fn finish(&mut self) {}
}

/// Handle passed to benchmark closures; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    criterion: &mut Criterion,
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: find an iteration count where one sample spans >= 5 ms
    // (or a single iteration already exceeds it).
    let mut iters = 1u64;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        // Grow towards the target with a progress-based estimate.
        let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (0.005 / per_iter).ceil() as u64
        } else {
            iters * 10
        };
        iters = needed.clamp(iters * 2, iters * 100).min(1 << 20);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let measurement = Measurement {
        group: group.to_string(),
        id: id.to_string(),
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        min_ns: per_iter_ns[0],
        max_ns: per_iter_ns[per_iter_ns.len() - 1],
        samples: per_iter_ns.len(),
        throughput_bytes: match throughput {
            Some(Throughput::Bytes(b)) => Some(b),
            _ => None,
        },
    };
    let throughput_note = measurement
        .throughput_bytes
        .map(|b| {
            let gib_s = b as f64 / measurement.median_ns;
            format!("  ({gib_s:.3} GB/s)")
        })
        .unwrap_or_default();
    println!(
        "{:<40} median {:>12.1} ns  min {:>12.1} ns  ({} samples × {} iters){}",
        format!("{group}/{id}"),
        measurement.median_ns,
        measurement.min_ns,
        measurement.samples,
        iters,
        throughput_note,
    );
    criterion.results.push(measurement);
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
            group.finish();
        }
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns > 0.0);
        assert_eq!(c.measurements()[0].id, "sum/10");
    }

    #[test]
    fn bench_function_records_under_group() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("wire");
            group.sample_size(2);
            group.bench_function("encode", |b| b.iter(|| std::hint::black_box(1 + 1)));
        }
        assert_eq!(c.measurements()[0].group, "wire");
        assert_eq!(c.measurements()[0].id, "encode");
    }
}
