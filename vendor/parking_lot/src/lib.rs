//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access, so this crate provides the
//! subset of the `parking_lot` API the workspace uses — `Mutex` and `RwLock`
//! with non-poisoning, guard-returning `lock`/`read`/`write` — backed by
//! `std::sync`. Poisoning is translated into a panic-propagating recovery:
//! a poisoned std lock yields its inner guard, matching `parking_lot`'s
//! "no poisoning" semantics closely enough for this workspace (state behind
//! the locks is only reachable again if the panicking thread was unwound,
//! exactly the situation `parking_lot` itself allows).
//!
//! Replace with the real crate by flipping the `parking_lot` entry in the
//! workspace `Cargo.toml` once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking:
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn locks_are_share_and_send() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Mutex<Vec<u8>>>();
        assert_sync::<RwLock<Vec<u8>>>();
    }

    #[test]
    fn contended_mutex_counts_correctly() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
