//! Offline shim for `serde_derive`.
//!
//! The shim `serde` crate blanket-implements its marker `Serialize` /
//! `Deserialize` traits for every type, so these derives have nothing to
//! generate. They exist so that `#[derive(Serialize, Deserialize)]` and
//! field attributes like `#[serde(skip)]` keep compiling unchanged; the
//! `attributes(serde)` registration is what makes the attribute legal.
//!
//! No `syn`/`quote` dependency: the input token stream is simply discarded.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; registers the `#[serde(...)]` helper attribute.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; registers the `#[serde(...)]` helper attribute.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
