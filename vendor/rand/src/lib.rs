//! Offline shim for the `rand` crate (0.8 API surface).
//!
//! The build container has no network access, so this crate implements the
//! subset of `rand` the workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64 — *not* the real `StdRng`'s ChaCha12, but a
//! high-quality deterministic generator), the [`Rng`] / [`SeedableRng`]
//! traits with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: all experiment harnesses in this workspace seed
//! explicitly via `seed_from_u64`, and this shim's output is a pure function
//! of that seed — stable across platforms and releases of this workspace.
//! Numeric streams differ from the real `rand` crate, which only matters if
//! results are compared against runs made with the real dependency.

#![forbid(unsafe_code)]

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the shim's
/// stand-in for `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Maps this value to the `u128` number line used for range arithmetic.
    fn to_u128(self) -> u128;
    /// Maps back from the `u128` number line.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn to_u128(self) -> u128 {
                // Order-preserving shift: signed types map via offset.
                (self as i128 as u128) ^ (1u128 << 127)
            }
            fn from_u128(v: u128) -> Self {
                (v ^ (1u128 << 127)) as i128 as $ty
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u128<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    // Modulo reduction: the span of any range in this workspace is tiny
    // compared to 2^128 (two u64 draws), so bias is negligible.
    let hi = rng.next_u64() as u128;
    let lo = rng.next_u64() as u128;
    ((hi << 64) | lo) % span
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u128(lo + uniform_u128(hi - lo, rng))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "cannot sample from empty range");
        T::from_u128(lo + uniform_u128(hi - lo + 1, rng))
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice extension trait providing in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_lies_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "value {i} drawn only {c} times");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice sorted");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn unsized_rng_callable_through_generic_fn() {
        fn roll<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = roll(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
