//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`/`boxed`,
//! [`strategy::Just`], `any::<T>()`, ranges, tuples, string-pattern
//! strategies (a small regex subset: char classes, `\PC`, `{m,n}`
//! repetition) and [`collection::vec`].
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (failures report the original case), and the default
//! case count is 64. Case generation is deterministic per test name, so
//! failures reproduce.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner plumbing: configuration and case-level error signalling.
pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// The random source threaded through strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property test.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test path: deterministic, collision-tolerant (any
    // seed is as good as any other for generation purposes).
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] for boxing.
    trait ErasedStrategy<T> {
        fn generate_erased(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_erased(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies ([`prop_oneof!`]'s output).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if roll < weight {
                    return strat.generate(rng);
                }
                roll -= weight;
            }
            unreachable!("weights summed incorrectly")
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String strategies from a small regex subset: a sequence of atoms,
    /// each a literal char, a `[...]` class (ranges, `\`-escapes) or `\PC`
    /// (any non-control char), optionally followed by `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug)]
    enum Atom {
        Class(Vec<char>),
        NonControl,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut members = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    let escaped = chars.next().expect("dangling escape in class");
                    let literal = match escaped {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    members.push(literal);
                    prev = Some(literal);
                }
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let start = prev.take().expect("range start");
                    let end = chars.next().expect("range end");
                    for code in (start as u32 + 1)..=(end as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            members.push(ch);
                        }
                    }
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        assert!(!members.is_empty(), "empty character class");
        members
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("bad repeat lower bound"),
                hi.parse().expect("bad repeat upper bound"),
            ),
            None => {
                let n = spec.parse().expect("bad repeat count");
                (n, n)
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                        Atom::NonControl
                    }
                    Some('n') => Atom::Class(vec!['\n']),
                    Some('t') => Atom::Class(vec!['\t']),
                    Some(other) => Atom::Class(vec![other]),
                    None => panic!("dangling escape in pattern"),
                },
                other => Atom::Class(vec![other]),
            };
            let (lo, hi) = parse_repeat(&mut chars);
            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                match &atom {
                    Atom::Class(members) => {
                        out.push(members[rng.gen_range(0..members.len())]);
                    }
                    Atom::NonControl => loop {
                        // Mostly ASCII with occasional multi-byte chars —
                        // the interesting space for a JSON parser.
                        let candidate = if rng.gen_range(0..4usize) == 0 {
                            char::from_u32(rng.gen_range(0x80u32..0x1_0000))
                        } else {
                            char::from_u32(rng.gen_range(0x20u32..0x7F))
                        };
                        if let Some(ch) = candidate.filter(|ch| !ch.is_control()) {
                            out.push(ch);
                            break;
                        }
                    },
                }
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each function runs `config.cases` generated
/// cases (retrying `prop_assume!` rejections, bounded at 50× the case
/// budget).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(50),
                    "too many prop_assume! rejections in {}", stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                match case {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::rng_for("shim::ranges");
        for _ in 0..100 {
            let v = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let xs = crate::collection::vec(0u64..50, 2..40).generate(&mut rng);
            assert!((2..40).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::rng_for("shim::strings");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "\\PC{0,100}".generate(&mut rng);
            assert!(t.chars().count() <= 100);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn escaped_class_members_are_literal() {
        let mut rng = crate::rng_for("shim::escapes");
        let allowed: Vec<char> = "abc-\"\\\n\t".chars().collect();
        for _ in 0..200 {
            let s = "[abc\\-\"\\\\\n\t]{0,20}".generate(&mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = crate::rng_for("shim::oneof");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..10, ys in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
