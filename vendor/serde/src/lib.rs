//! Offline shim for the `serde` crate.
//!
//! The workspace's actual wire format is the hand-rolled JSON + DEFLATE
//! stack in `hyrec-wire`; the `serde` derives on domain types only declare
//! *intent* (the types are serialization-safe) and are never driven by a
//! serde serializer. With no network access to crates.io, this shim keeps
//! those declarations compiling: marker traits blanket-implemented for all
//! types, plus the no-op derives from the sibling `serde_derive` shim.
//!
//! The `derive` and `rc` cargo features are accepted (and meaningless) so
//! the workspace manifest reads identically with the real crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (shim: satisfied by every type).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (shim: satisfied by every type).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stub of `serde::ser` so paths like `serde::ser::Serialize` resolve.
pub mod ser {
    pub use crate::Serialize;
}

/// Stub of `serde::de` so paths like `serde::de::DeserializeOwned` resolve.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
