//! Dataset specifications matching Table 2 of the paper.

use std::fmt;

/// The shape of a synthetic dataset: cardinalities, skew and structure.
///
/// The four presets ([`DatasetSpec::ML1`] … [`DatasetSpec::DIGG`]) reproduce
/// Table 2; [`DatasetSpec::scaled`] shrinks any spec for laptop-scale runs
/// while preserving the per-user statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Stable name used in experiment output ("ML1", "Digg", …).
    pub name: &'static str,
    /// Number of users `N`.
    pub users: usize,
    /// Number of items `M`.
    pub items: usize,
    /// Total number of ratings `R`.
    pub ratings: usize,
    /// Trace period in days (ML traces span ~7 months, Digg 2 weeks).
    pub period_days: f64,
    /// Number of planted interest communities.
    pub communities: usize,
    /// Probability that a rating event draws from the user's own community
    /// pool rather than the global catalogue.
    pub community_affinity: f64,
    /// Zipf skew exponent for item popularity.
    pub zipf_exponent: f64,
    /// Log-normal sigma for per-user activity (0 = everyone rates equally).
    pub activity_sigma: f64,
    /// Median length of a user's active session in days (log-normal,
    /// sigma 1). MovieLens users rate for days-to-weeks then leave; Digg
    /// users churn within days. This drives the staleness effects of
    /// Figures 3-4: a departed user's KNN entry freezes.
    pub session_days_median: f64,
}

impl DatasetSpec {
    /// The ML1 workload of Table 2: 943 users, 1,700 items, 100,000 ratings.
    pub const ML1: DatasetSpec = DatasetSpec {
        name: "ML1",
        users: 943,
        items: 1_700,
        ratings: 100_000,
        period_days: 210.0,
        communities: 16,
        community_affinity: 0.55,
        zipf_exponent: 0.9,
        activity_sigma: 0.9,
        session_days_median: 14.0,
    };

    /// The ML2 workload: 6,040 users, 4,000 items, 1,000,000 ratings.
    pub const ML2: DatasetSpec = DatasetSpec {
        name: "ML2",
        users: 6_040,
        items: 4_000,
        ratings: 1_000_000,
        period_days: 210.0,
        communities: 25,
        community_affinity: 0.7,
        zipf_exponent: 0.9,
        activity_sigma: 0.9,
        session_days_median: 14.0,
    };

    /// The ML3 workload: 69,878 users, 10,000 items, 10,000,000 ratings.
    pub const ML3: DatasetSpec = DatasetSpec {
        name: "ML3",
        users: 69_878,
        items: 10_000,
        ratings: 10_000_000,
        period_days: 210.0,
        communities: 50,
        community_affinity: 0.7,
        zipf_exponent: 0.9,
        activity_sigma: 0.9,
        session_days_median: 14.0,
    };

    /// The Digg workload: 59,167 users, 7,724 items, 782,807 ratings over two
    /// weeks — much sparser profiles (avg 13 ratings/user).
    pub const DIGG: DatasetSpec = DatasetSpec {
        name: "Digg",
        users: 59_167,
        items: 7_724,
        ratings: 782_807,
        period_days: 14.0,
        communities: 40,
        community_affinity: 0.6,
        zipf_exponent: 1.05,
        activity_sigma: 1.1,
        session_days_median: 2.0,
    };

    /// All four paper presets, in Table 2 order.
    #[must_use]
    pub fn paper_presets() -> [DatasetSpec; 4] {
        [Self::ML1, Self::ML2, Self::ML3, Self::DIGG]
    }

    /// Average ratings per user implied by the spec (Table 2's last column).
    #[must_use]
    pub fn avg_ratings_per_user(&self) -> f64 {
        self.ratings as f64 / self.users as f64
    }

    /// Returns a copy scaled by `factor` in users and ratings (items and the
    /// per-user average are preserved so similarity structure is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not within `(0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        DatasetSpec {
            users: ((self.users as f64 * factor) as usize).max(2),
            ratings: ((self.ratings as f64 * factor) as usize).max(10),
            communities: self
                .communities
                .min(((self.users as f64 * factor) as usize).max(2)),
            ..*self
        }
    }

    /// Trace period in seconds.
    #[must_use]
    pub fn period_seconds(&self) -> u64 {
        (self.period_days * 86_400.0) as u64
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} users, {} items, {} ratings, {:.0} avg)",
            self.name,
            self.users,
            self.items,
            self.ratings,
            self.avg_ratings_per_user()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2() {
        assert_eq!(DatasetSpec::ML1.users, 943);
        assert_eq!(DatasetSpec::ML1.items, 1_700);
        assert_eq!(DatasetSpec::ML1.ratings, 100_000);
        assert!((DatasetSpec::ML1.avg_ratings_per_user() - 106.0).abs() < 1.0);

        assert_eq!(DatasetSpec::ML2.users, 6_040);
        assert!((DatasetSpec::ML2.avg_ratings_per_user() - 166.0).abs() < 1.0);

        assert_eq!(DatasetSpec::ML3.users, 69_878);
        assert!((DatasetSpec::ML3.avg_ratings_per_user() - 143.0).abs() < 1.0);

        assert_eq!(DatasetSpec::DIGG.users, 59_167);
        assert_eq!(DatasetSpec::DIGG.items, 7_724);
        assert!((DatasetSpec::DIGG.avg_ratings_per_user() - 13.0).abs() < 0.5);
    }

    #[test]
    fn scaling_preserves_per_user_average() {
        let scaled = DatasetSpec::ML2.scaled(0.1);
        let orig_avg = DatasetSpec::ML2.avg_ratings_per_user();
        assert!((scaled.avg_ratings_per_user() - orig_avg).abs() / orig_avg < 0.02);
        assert_eq!(scaled.items, DatasetSpec::ML2.items);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaling_rejects_bad_factor() {
        let _ = DatasetSpec::ML1.scaled(0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = DatasetSpec::ML1.to_string();
        assert!(s.contains("ML1") && s.contains("943"));
    }
}
