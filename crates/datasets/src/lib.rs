//! # hyrec-datasets
//!
//! Synthetic workload generation for the HyRec reproduction.
//!
//! The paper evaluates on three MovieLens snapshots and a crawled Digg trace
//! (Table 2). Those exact traces are not redistributable, so this crate
//! generates synthetic equivalents calibrated to the same statistics:
//!
//! | Dataset | Users  | Items  | Ratings    | Avg ratings/user | Period |
//! |---------|--------|--------|------------|------------------|--------|
//! | ML1     | 943    | 1,700  | 100,000    | 106              | ~7 mo  |
//! | ML2     | 6,040  | 4,000  | 1,000,000  | 166              | ~7 mo  |
//! | ML3     | 69,878 | 10,000 | 10,000,000 | 143              | ~7 mo  |
//! | Digg    | 59,167 | 7,724  | 782,807    | 13               | 2 wk   |
//!
//! Beyond the marginal statistics, the generator plants *interest
//! communities* (users in the same community like overlapping item sets), a
//! Zipf item-popularity skew, and log-normal per-user activity — the
//! structural properties that make KNN selection meaningful and that every
//! measured quantity in the paper depends on.
//!
//! The full paper pipeline is reproduced: the generator emits 1–5 star
//! ratings; [`StarTrace::binarize`] applies the paper's projection ("rating 1
//! if above the user's average, 0 otherwise", Section 5.1); and
//! [`Trace::split_chronological`] produces the 80/20 train/test split used
//! for recommendation quality (Section 5.1, Metrics).
//!
//! ```
//! use hyrec_datasets::{DatasetSpec, TraceGenerator};
//!
//! // A laptop-scale slice of ML1 for quick experiments.
//! let spec = DatasetSpec::ML1.scaled(0.1);
//! let trace = TraceGenerator::new(spec, 42).generate().binarize();
//! assert!(trace.len() > 5_000);
//! let (train, test) = trace.split_chronological(0.8);
//! assert!(train.len() > test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod generator;
pub mod spec;
pub mod stats;
pub mod trace;

pub use generator::TraceGenerator;
pub use spec::DatasetSpec;
pub use stats::TraceStats;
pub use trace::{StarEvent, StarTrace, Timestamp, Trace, TraceEvent};
