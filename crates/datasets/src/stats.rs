//! Trace statistics — the numbers Table 2 of the paper reports.

use crate::trace::Trace;
use hyrec_core::Vote;
use std::collections::HashSet;
use std::fmt;

/// Summary statistics of a binary trace.
///
/// ```
/// use hyrec_datasets::{DatasetSpec, TraceGenerator, TraceStats};
/// let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.05), 1)
///     .generate()
///     .binarize();
/// let stats = TraceStats::compute(&trace);
/// assert_eq!(stats.ratings, trace.len());
/// assert!(stats.avg_ratings_per_user > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Distinct users observed.
    pub users: usize,
    /// Distinct items observed.
    pub items: usize,
    /// Total rating events.
    pub ratings: usize,
    /// Mean ratings per observed user (Table 2's "Avg ratings").
    pub avg_ratings_per_user: f64,
    /// Fraction of ratings that are likes after binarization.
    pub like_fraction: f64,
    /// Trace duration in days.
    pub duration_days: f64,
}

impl TraceStats {
    /// Computes statistics over a trace.
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        let mut users = HashSet::new();
        let mut items = HashSet::new();
        let mut likes = 0usize;
        for e in trace.iter() {
            users.insert(e.user);
            items.insert(e.item);
            if e.vote == Vote::Like {
                likes += 1;
            }
        }
        let ratings = trace.len();
        let user_count = users.len();
        Self {
            users: user_count,
            items: items.len(),
            ratings,
            avg_ratings_per_user: if user_count == 0 {
                0.0
            } else {
                ratings as f64 / user_count as f64
            },
            like_fraction: if ratings == 0 {
                0.0
            } else {
                likes as f64 / ratings as f64
            },
            duration_days: trace.horizon().days(),
        }
    }

    /// Formats the stats as a Table 2 row: `name | users | items | ratings |
    /// avg`.
    #[must_use]
    pub fn table2_row(&self, name: &str) -> String {
        format!(
            "{name:<6} {users:>8} {items:>8} {ratings:>12} {avg:>6.0}",
            users = self.users,
            items = self.items,
            ratings = self.ratings,
            avg = self.avg_ratings_per_user,
        )
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} users, {} items, {} ratings ({:.0} avg/user, {:.0}% likes, {:.0} days)",
            self.users,
            self.items,
            self.ratings,
            self.avg_ratings_per_user,
            self.like_fraction * 100.0,
            self.duration_days
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::TraceGenerator;

    #[test]
    fn stats_match_generated_spec() {
        let spec = DatasetSpec::ML1.scaled(0.2);
        let trace = TraceGenerator::new(spec, 11).generate().binarize();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.ratings, spec.ratings);
        // Nearly all users should appear (some may get a zero budget).
        assert!(stats.users as f64 > spec.users as f64 * 0.8);
        // Average within 25% of the spec's target.
        let target = spec.avg_ratings_per_user();
        assert!(
            (stats.avg_ratings_per_user - target).abs() / target < 0.25,
            "avg {} vs target {}",
            stats.avg_ratings_per_user,
            target
        );
        // Binarization yields a sensible like share.
        assert!(stats.like_fraction > 0.2 && stats.like_fraction < 0.8);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let stats = TraceStats::compute(&Trace::default());
        assert_eq!(stats.users, 0);
        assert_eq!(stats.avg_ratings_per_user, 0.0);
        assert_eq!(stats.like_fraction, 0.0);
    }

    #[test]
    fn table2_row_formats() {
        let spec = DatasetSpec::ML1.scaled(0.05);
        let trace = TraceGenerator::new(spec, 1).generate().binarize();
        let row = TraceStats::compute(&trace).table2_row("ML1");
        assert!(row.starts_with("ML1"));
        assert!(row.contains(&format!("{}", spec.ratings)));
    }

    #[test]
    fn display_mentions_key_numbers() {
        let spec = DatasetSpec::ML1.scaled(0.05);
        let trace = TraceGenerator::new(spec, 1).generate().binarize();
        let text = TraceStats::compute(&trace).to_string();
        assert!(text.contains("users") && text.contains("ratings"));
    }
}
