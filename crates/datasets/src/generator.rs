//! The synthetic trace generator.
//!
//! Produces star-rating traces whose marginal statistics match a
//! [`DatasetSpec`] and whose *joint* structure gives KNN selection something
//! to find:
//!
//! * **Item popularity** is Zipf-distributed (a handful of blockbusters, a
//!   long tail), as observed in both MovieLens and Digg.
//! * **Interest communities**: every user belongs to one of `C` communities;
//!   with probability `community_affinity` a rating draws from the user's
//!   community pool (items whose global rank ≡ community id mod C), giving
//!   same-community users strongly overlapping liked sets.
//! * **Star ratings** are biased by affinity: in-community items skew to 4–5
//!   stars, out-of-community items to 1–3, so the paper's mean-threshold
//!   binarization yields likes concentrated within communities.
//! * **User activity** is log-normal (a few heavy raters, many light ones),
//!   apportioned so the total ratings count matches the spec exactly.
//! * **Timing**: users arrive throughout the first 40% of the period (the
//!   paper notes "continuous arrival of new users") and spread their ratings
//!   uniformly from arrival to the horizon.

use crate::distributions::{apportion, log_normal, Zipf};
use crate::spec::DatasetSpec;
use crate::trace::{StarEvent, StarTrace, Timestamp};
use hyrec_core::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic, seeded generator for one dataset.
///
/// ```
/// use hyrec_datasets::{DatasetSpec, TraceGenerator};
/// let spec = DatasetSpec::ML1.scaled(0.05);
/// let a = TraceGenerator::new(spec, 7).generate();
/// let b = TraceGenerator::new(spec, 7).generate();
/// assert_eq!(a, b); // same seed, same trace
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: DatasetSpec,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` with a deterministic `seed`.
    #[must_use]
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// The spec being generated.
    #[must_use]
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Community of a user (users are assigned round-robin by id).
    #[must_use]
    pub fn community_of_user(&self, user: UserId) -> usize {
        user.0 as usize % self.spec.communities
    }

    /// Community of an item (items are striped by popularity rank so every
    /// community pool contains popular and niche items alike).
    #[must_use]
    pub fn community_of_item(&self, item: ItemId) -> usize {
        item.0 as usize % self.spec.communities
    }

    /// Generates the full star trace.
    #[must_use]
    pub fn generate(&self) -> StarTrace {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let c = spec.communities.max(1);

        // Per-community item pools, striped by global popularity rank.
        // Item id == global popularity rank (rank 0 most popular).
        let pools: Vec<Vec<u32>> = (0..c)
            .map(|community| {
                (0..spec.items as u32)
                    .filter(|i| (*i as usize) % c == community)
                    .collect()
            })
            .collect();
        let pool_zipfs: Vec<Zipf> = pools
            .iter()
            .map(|pool| Zipf::new(pool.len().max(1), spec.zipf_exponent))
            .collect();
        let global_zipf = Zipf::new(spec.items, spec.zipf_exponent);

        // Ratings budget per user: log-normal weights, exact total.
        let weights: Vec<f64> = (0..spec.users)
            .map(|_| log_normal(&mut rng, 0.0, spec.activity_sigma))
            .collect();
        let mut budgets = apportion(spec.ratings, &weights);
        // A user cannot rate more distinct items than exist; redistribute
        // clipped surplus to light users (rarely triggers at paper scales).
        let mut surplus = 0usize;
        for b in budgets.iter_mut() {
            if *b > spec.items {
                surplus += *b - spec.items;
                *b = spec.items;
            }
        }
        let mut cursor = 0usize;
        while surplus > 0 {
            if budgets[cursor] < spec.items {
                budgets[cursor] += 1;
                surplus -= 1;
            }
            cursor = (cursor + 1) % budgets.len();
        }

        let period = spec.period_seconds().max(1);
        // Users arrive throughout the trace ("continuous arrival of new
        // users") and stay active for a log-normal session, after which
        // they leave — the churn that makes offline KNN tables stale.
        let arrival_window = (period as f64 * 0.85) as u64;
        let session_median = (spec.session_days_median * 86_400.0).max(1.0);
        let mut events = Vec::with_capacity(spec.ratings);

        for (user_index, &budget) in budgets.iter().enumerate() {
            if budget == 0 {
                continue;
            }
            let user = UserId(user_index as u32);
            let community = self.community_of_user(user);
            let pool = &pools[community];
            let pool_zipf = &pool_zipfs[community];

            let arrival = rng.gen_range(0..=arrival_window);
            let span = (log_normal(&mut rng, session_median.ln(), 1.0) as u64).clamp(3_600, period);
            let departure = (arrival + span).min(period);
            // Activity happens in short bursts (a sitting of ~hours) spread
            // across the user's span — the pattern real MovieLens/Digg
            // users show, and the reason online KNN beats daily offline
            // recomputation (a whole burst fits between two recomputes).
            let burst_count = rng.gen_range(1..=4usize);
            let burst_centers: Vec<u64> = (0..burst_count)
                .map(|_| rng.gen_range(arrival..=departure))
                .collect();
            let burst_half_width = 2 * 3_600u64; // ±2 hours
            let mut seen: HashSet<u32> = HashSet::with_capacity(budget * 2);
            let mut times: Vec<u64> = (0..budget)
                .map(|_| {
                    let center = burst_centers[rng.gen_range(0..burst_centers.len())];
                    let lo = center.saturating_sub(burst_half_width);
                    let hi = (center + burst_half_width).min(period);
                    rng.gen_range(lo..=hi)
                })
                .collect();
            times.sort_unstable();

            for &time in &times {
                // Draw a not-yet-rated item: community pool w.p. affinity.
                let mut in_community =
                    rng.gen::<f64>() < spec.community_affinity && !pool.is_empty();
                let mut rejections = 0usize;
                let item = loop {
                    // Heavy raters exhaust the Zipf head; after a bounded
                    // number of rejections pick uniformly among unseen items.
                    if rejections > 32 {
                        let unseen: Vec<u32> = (0..spec.items as u32)
                            .filter(|i| !seen.contains(i))
                            .collect();
                        debug_assert!(!unseen.is_empty(), "budget exceeds catalogue");
                        let pick = unseen[rng.gen_range(0..unseen.len())];
                        seen.insert(pick);
                        break pick;
                    }
                    let candidate = if in_community {
                        pool[pool_zipf.sample(&mut rng)]
                    } else {
                        global_zipf.sample(&mut rng) as u32
                    };
                    if seen.insert(candidate) {
                        break candidate;
                    }
                    rejections += 1;
                    // Pool exhausted for this user: fall back to global.
                    if in_community && seen.len() >= pool.len() {
                        in_community = false;
                    }
                };

                // Star bias: own-community items score high.
                let own = self.community_of_item(ItemId(item)) == community;
                let stars = sample_stars(&mut rng, own);
                events.push(StarEvent {
                    user,
                    item: ItemId(item),
                    stars,
                    time: Timestamp(time),
                });
            }
        }
        StarTrace::new(events)
    }
}

/// Draws a star rating: in-community items skew positive, others negative.
fn sample_stars<R: Rng + ?Sized>(rng: &mut R, own_community: bool) -> u8 {
    let roll: f64 = rng.gen();
    if own_community {
        // P(5)=0.35 P(4)=0.35 P(3)=0.15 P(2)=0.10 P(1)=0.05 -> mean ~3.85
        match roll {
            r if r < 0.35 => 5,
            r if r < 0.70 => 4,
            r if r < 0.85 => 3,
            r if r < 0.95 => 2,
            _ => 1,
        }
    } else {
        // P(5)=0.08 P(4)=0.17 P(3)=0.25 P(2)=0.25 P(1)=0.25 -> mean ~2.58
        match roll {
            r if r < 0.08 => 5,
            r if r < 0.25 => 4,
            r if r < 0.50 => 3,
            r if r < 0.75 => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{Cosine, Similarity};

    fn small_spec() -> DatasetSpec {
        DatasetSpec::ML1.scaled(0.1)
    }

    #[test]
    fn generates_exact_rating_count() {
        let spec = small_spec();
        let trace = TraceGenerator::new(spec, 1).generate();
        assert_eq!(trace.len(), spec.ratings);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let spec = small_spec();
        let a = TraceGenerator::new(spec, 9).generate();
        let b = TraceGenerator::new(spec, 9).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(spec, 10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn no_user_rates_an_item_twice() {
        let trace = TraceGenerator::new(small_spec(), 2).generate();
        let mut seen = HashSet::new();
        for e in trace.iter() {
            assert!(
                seen.insert((e.user, e.item)),
                "duplicate {:?}/{:?}",
                e.user,
                e.item
            );
        }
    }

    #[test]
    fn items_stay_in_catalogue() {
        let spec = small_spec();
        let trace = TraceGenerator::new(spec, 3).generate();
        for e in trace.iter() {
            assert!((e.item.0 as usize) < spec.items);
            assert!((e.user.0 as usize) < spec.users);
            assert!((1..=5).contains(&e.stars));
            assert!(e.time.0 <= spec.period_seconds());
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = small_spec();
        let trace = TraceGenerator::new(spec, 4).generate();
        let mut counts = vec![0usize; spec.items];
        for e in trace.iter() {
            counts[e.item.0 as usize] += 1;
        }
        let head: usize = counts[..spec.items / 10].iter().sum();
        // With Zipf ~0.9, the top decile draws far more than a tenth.
        assert!(
            head > trace.len() / 4,
            "head share too small: {head}/{}",
            trace.len()
        );
    }

    #[test]
    fn communities_create_similarity_structure() {
        // Same-community users must be measurably more similar than
        // cross-community pairs — the property KNN selection relies on.
        let spec = small_spec();
        let generator = TraceGenerator::new(spec, 5);
        let profiles = generator.generate().binarize().final_profiles();

        let mut within = Vec::new();
        let mut across = Vec::new();
        for (i, (ua, pa)) in profiles.iter().enumerate() {
            if pa.liked_len() < 5 {
                continue;
            }
            for (ub, pb) in profiles.iter().skip(i + 1) {
                if pb.liked_len() < 5 {
                    continue;
                }
                let s = Cosine.score(pa, pb);
                if generator.community_of_user(*ua) == generator.community_of_user(*ub) {
                    within.push(s);
                } else {
                    across.push(s);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (w, a) = (mean(&within), mean(&across));
        assert!(
            w > a * 2.0,
            "within-community similarity {w:.4} not well above across {a:.4}"
        );
    }

    #[test]
    fn binarized_likes_are_mostly_in_community() {
        let spec = small_spec();
        let generator = TraceGenerator::new(spec, 6);
        let binary = generator.generate().binarize();
        let mut own = 0usize;
        let mut other = 0usize;
        for e in binary.iter() {
            if e.vote == hyrec_core::Vote::Like {
                if generator.community_of_item(e.item) == generator.community_of_user(e.user) {
                    own += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(
            own > other,
            "likes not community-concentrated: {own} vs {other}"
        );
    }

    #[test]
    fn digg_spec_generates_sparse_profiles() {
        let spec = DatasetSpec::DIGG.scaled(0.02);
        let trace = TraceGenerator::new(spec, 7).generate().binarize();
        let profiles = trace.final_profiles();
        let avg: f64 = profiles
            .iter()
            .map(|(_, p)| p.exposure_len() as f64)
            .sum::<f64>()
            / profiles.len() as f64;
        assert!(avg < 30.0, "Digg profiles should be small, got {avg:.1}");
    }
}
