//! Trace types: timestamped rating events, star→binary projection, splits.

use hyrec_core::{ItemId, Profile, SharedProfile, UserId, Vote};
use std::collections::HashMap;

/// Seconds since the start of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp in whole days (Figure 3's x-axis unit).
    #[must_use]
    pub fn days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// The timestamp in whole minutes (Figure 5's x-axis unit).
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Builds a timestamp from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Timestamp((days * 86_400.0) as u64)
    }
}

/// A raw star-rating event (1–5 stars), as MovieLens records them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarEvent {
    /// Who rated.
    pub user: UserId,
    /// What was rated.
    pub item: ItemId,
    /// 1–5 stars.
    pub stars: u8,
    /// When.
    pub time: Timestamp,
}

/// A binary rating event after the paper's projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Who rated.
    pub user: UserId,
    /// What was rated.
    pub item: ItemId,
    /// Liked or disliked.
    pub vote: Vote,
    /// When.
    pub time: Timestamp,
}

/// A chronologically ordered star-rating trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StarTrace {
    events: Vec<StarEvent>,
}

impl StarTrace {
    /// Wraps events, sorting them chronologically (stable on ties).
    #[must_use]
    pub fn new(mut events: Vec<StarEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &StarEvent> {
        self.events.iter()
    }

    /// Applies the paper's binary projection (Section 5.1): an item is
    /// *liked* iff its star rating is strictly above the user's mean star
    /// rating across all their items, *disliked* otherwise.
    #[must_use]
    pub fn binarize(&self) -> Trace {
        let mut sums: HashMap<UserId, (u64, u64)> = HashMap::new();
        for e in &self.events {
            let entry = sums.entry(e.user).or_insert((0, 0));
            entry.0 += u64::from(e.stars);
            entry.1 += 1;
        }
        let events = self
            .events
            .iter()
            .map(|e| {
                let (sum, count) = sums[&e.user];
                let mean = sum as f64 / count as f64;
                TraceEvent {
                    user: e.user,
                    item: e.item,
                    vote: if f64::from(e.stars) > mean {
                        Vote::Like
                    } else {
                        Vote::Dislike
                    },
                    time: e.time,
                }
            })
            .collect();
        Trace { events }
    }
}

/// A chronologically ordered binary rating trace — the replay input for
/// every experiment in Section 5.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps events, sorting them chronologically (stable on ties).
    #[must_use]
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events as a slice (time-ordered).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Timestamp of the last event (the trace horizon).
    #[must_use]
    pub fn horizon(&self) -> Timestamp {
        self.events.last().map_or(Timestamp(0), |e| e.time)
    }

    /// The distinct users appearing in the trace.
    #[must_use]
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.events.iter().map(|e| e.user).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Splits chronologically: the first `fraction` of events form the
    /// training trace, the rest the test trace (Section 5.1: "the training
    /// set contains the first 80% of the ratings").
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn split_chronological(&self, fraction: f64) -> (Trace, Trace) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let cut = (self.events.len() as f64 * fraction) as usize;
        (
            Trace {
                events: self.events[..cut].to_vec(),
            },
            Trace {
                events: self.events[cut..].to_vec(),
            },
        )
    }

    /// Materializes the final profiles implied by the whole trace — the
    /// input shape for the offline KNN back-ends (Figure 7). Profiles come
    /// out behind shared handles (each is freshly built here, so wrapping is
    /// a move, not a copy) ready to feed `OfflineBackend::compute`.
    #[must_use]
    pub fn final_profiles(&self) -> Vec<(UserId, SharedProfile)> {
        let mut profiles: HashMap<UserId, Profile> = HashMap::new();
        for e in &self.events {
            profiles.entry(e.user).or_default().record(e.item, e.vote);
        }
        let mut out: Vec<(UserId, SharedProfile)> = profiles
            .into_iter()
            .map(|(u, p)| (u, SharedProfile::new(p)))
            .collect();
        out.sort_by_key(|(u, _)| *u);
        out
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u32, item: u32, vote: Vote, t: u64) -> TraceEvent {
        TraceEvent {
            user: UserId(user),
            item: ItemId(item),
            vote,
            time: Timestamp(t),
        }
    }

    #[test]
    fn traces_sort_chronologically() {
        let trace = Trace::new(vec![
            ev(1, 1, Vote::Like, 50),
            ev(2, 2, Vote::Like, 10),
            ev(3, 3, Vote::Like, 30),
        ]);
        let times: Vec<u64> = trace.iter().map(|e| e.time.0).collect();
        assert_eq!(times, vec![10, 30, 50]);
        assert_eq!(trace.horizon(), Timestamp(50));
    }

    #[test]
    fn binarize_uses_per_user_mean() {
        // User 1 rates 5,3,1 (mean 3): only the 5 becomes a like.
        // User 2 rates 4,4 (mean 4): nothing is strictly above the mean.
        let star = StarTrace::new(vec![
            StarEvent {
                user: UserId(1),
                item: ItemId(1),
                stars: 5,
                time: Timestamp(0),
            },
            StarEvent {
                user: UserId(1),
                item: ItemId(2),
                stars: 3,
                time: Timestamp(1),
            },
            StarEvent {
                user: UserId(1),
                item: ItemId(3),
                stars: 1,
                time: Timestamp(2),
            },
            StarEvent {
                user: UserId(2),
                item: ItemId(1),
                stars: 4,
                time: Timestamp(3),
            },
            StarEvent {
                user: UserId(2),
                item: ItemId(2),
                stars: 4,
                time: Timestamp(4),
            },
        ]);
        let binary = star.binarize();
        let votes: Vec<Vote> = binary.iter().map(|e| e.vote).collect();
        assert_eq!(
            votes,
            vec![
                Vote::Like,
                Vote::Dislike,
                Vote::Dislike,
                Vote::Dislike,
                Vote::Dislike
            ]
        );
    }

    #[test]
    fn split_is_chronological_and_exact() {
        let trace: Trace = (0..100u64)
            .map(|t| ev(1, t as u32, Vote::Like, t))
            .collect();
        let (train, test) = trace.split_chronological(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert!(train.horizon() < test.iter().next().unwrap().time);
    }

    #[test]
    fn split_edge_fractions() {
        let trace: Trace = (0..10u64).map(|t| ev(1, t as u32, Vote::Like, t)).collect();
        let (train, test) = trace.split_chronological(0.0);
        assert_eq!((train.len(), test.len()), (0, 10));
        let (train, test) = trace.split_chronological(1.0);
        assert_eq!((train.len(), test.len()), (10, 0));
    }

    #[test]
    fn final_profiles_accumulate_votes() {
        let trace = Trace::new(vec![
            ev(1, 10, Vote::Like, 0),
            ev(1, 11, Vote::Dislike, 1),
            ev(2, 10, Vote::Like, 2),
            ev(1, 11, Vote::Like, 3), // flips to like
        ]);
        let profiles = trace.final_profiles();
        assert_eq!(profiles.len(), 2);
        let (u1, p1) = &profiles[0];
        assert_eq!(*u1, UserId(1));
        assert_eq!(p1.liked_len(), 2);
    }

    #[test]
    fn user_ids_are_deduplicated() {
        let trace = Trace::new(vec![
            ev(5, 1, Vote::Like, 0),
            ev(5, 2, Vote::Like, 1),
            ev(3, 1, Vote::Like, 2),
        ]);
        assert_eq!(trace.user_ids(), vec![UserId(3), UserId(5)]);
    }

    #[test]
    fn timestamp_units() {
        let t = Timestamp::from_days(2.0);
        assert_eq!(t.0, 172_800);
        assert!((t.days() - 2.0).abs() < 1e-9);
        assert!((t.minutes() - 2_880.0).abs() < 1e-9);
    }
}
