//! Sampling distributions used by the trace generator.
//!
//! Implemented in-crate (rather than pulling `rand_distr`) because only two
//! distributions are needed: Zipf for item popularity and log-normal for
//! user-activity skew.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF binary search.
///
/// Rank 0 is the most popular. Sampling is `O(log n)` after an `O(n)` setup.
///
/// ```
/// use hyrec_datasets::distributions::Zipf;
/// use rand::SeedableRng;
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cdf[i]` covers ranks `0..=i`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(exponent >= 0.0 && exponent.is_finite(), "invalid exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        Self { cdf }
    }

    /// Number of ranks in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support has a single rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // support is never empty by construction
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty support");
        let needle = rng.gen::<f64>() * total;
        // First index with cdf >= needle.
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&needle).expect("weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Draws one standard-normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling from the open interval.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a log-normal variate `exp(mu + sigma * Z)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Splits `total` into `n` non-negative integer shares proportional to
/// `weights`, preserving the exact total (largest-remainder method).
///
/// Used to hand each user their ratings budget so the generated trace hits
/// the spec's ratings count exactly.
///
/// # Panics
///
/// Panics if `weights` is empty while `total > 0`, or weights are all zero.
#[must_use]
pub fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    if total == 0 {
        return vec![0; weights.len()];
    }
    assert!(!weights.is_empty(), "cannot apportion to zero users");
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must not be all zero");

    let mut shares = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w / sum;
        let floor = exact.floor() as usize;
        shares.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Distribute the leftover to the largest remainders.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = total - assigned;
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 100 by roughly 100x for exponent 1.
        assert!(counts[0] > counts[100] * 20);
        // Everything stays in range (implicitly checked by indexing).
        assert!(counts[0] > 0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "non-uniform: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn apportion_preserves_total() {
        let weights = [0.5, 1.0, 2.5, 0.01];
        let shares = apportion(1000, &weights);
        assert_eq!(shares.iter().sum::<usize>(), 1000);
        assert!(shares[2] > shares[0]);
    }

    #[test]
    fn apportion_zero_total() {
        assert_eq!(apportion(0, &[1.0, 2.0]), vec![0, 0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn apportion_total_is_exact(
                total in 0usize..10_000,
                weights in proptest::collection::vec(0.001f64..100.0, 1..50),
            ) {
                let shares = apportion(total, &weights);
                prop_assert_eq!(shares.iter().sum::<usize>(), total);
                prop_assert_eq!(shares.len(), weights.len());
            }

            #[test]
            fn zipf_samples_in_range(n in 1usize..500, exp in 0.0f64..2.5, seed in any::<u64>()) {
                let zipf = Zipf::new(n, exp);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..50 {
                    prop_assert!(zipf.sample(&mut rng) < n);
                }
            }
        }
    }
}
