//! # hyrec-client
//!
//! The HyRec **widget**: the client-side half of the hybrid architecture
//! (Section 3.2 of the paper), as a pure compute kernel.
//!
//! On receiving a personalization job the widget
//!
//! 1. computes the user's recommended items (*Algorithm 2*), and
//! 2. runs one iteration of KNN selection (*Algorithm 1*),
//!
//! then returns both. It keeps **no local state** — "it receives the
//! necessary information from the server and forgets it after displaying
//! recommendations and sending the new KNN to the server" — which is what
//! lets the same user roam across devices.
//!
//! ## WASM compatibility
//!
//! The paper runs this code as JavaScript in the browser. This crate is the
//! Rust equivalent, deliberately free of threads, I/O, clocks and OS
//! dependencies so it compiles unchanged for `wasm32-unknown-unknown`; a real
//! deployment would expose [`Widget::run_encoded_job`] through `wasm-bindgen`
//! and keep the paper's exact architecture with a faster-than-JS kernel.
//!
//! ```
//! use hyrec_client::Widget;
//! use hyrec_core::{CandidateSet, Profile, UserId};
//! use hyrec_wire::PersonalizationJob;
//!
//! let mut candidates = CandidateSet::new();
//! candidates.insert(UserId(2), Profile::from_liked([1, 2, 3]));
//! candidates.insert(UserId(3), Profile::from_liked([2, 3, 4]));
//! let job = PersonalizationJob {
//!     uid: UserId(1),
//!     k: 2,
//!     r: 3,
//!     lease: 0,
//!     epoch: 0,
//!     profile: Profile::from_liked([1, 2]).into(),
//!     candidates,
//! };
//!
//! let widget = Widget::new();
//! let output = widget.run_job(&job);
//! assert_eq!(output.update.uid, UserId(1));
//! assert!(!output.recommendations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hooks;
pub mod widget;

pub use hooks::{MostPopular, RecommendationPolicy, Serendipity};
pub use widget::{Widget, WidgetBuilder, WidgetOutput};
