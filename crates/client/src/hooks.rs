//! Customization hooks of the widget (Table 1 of the paper).
//!
//! The paper exposes `setSimilarity()` and `setRecommendedItems()` so content
//! providers can replace the similarity metric and the item-selection
//! algorithm without touching the rest of the stack. The similarity hook is
//! `hyrec_core::Similarity`; this module provides the recommendation hook.

use hyrec_core::{recommend, CandidateSet, Profile, Recommendation};

/// The `setRecommendedItems()` hook: turns a candidate set into a ranked
/// recommendation list for one user.
///
/// Object-safe so a widget can swap policies at runtime.
pub trait RecommendationPolicy: Send + Sync {
    /// Produces at most `r` recommendations for `profile` from `candidates`.
    fn recommend(
        &self,
        profile: &Profile,
        candidates: &CandidateSet,
        r: usize,
    ) -> Vec<Recommendation>;

    /// A short stable name for experiment output.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The paper's default policy: the `r` items most popular among the
/// candidate profiles that the user has not seen (Algorithm 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MostPopular;

impl RecommendationPolicy for MostPopular {
    fn recommend(
        &self,
        profile: &Profile,
        candidates: &CandidateSet,
        r: usize,
    ) -> Vec<Recommendation> {
        recommend::most_popular(profile, candidates.profiles(), r)
    }

    fn name(&self) -> &'static str {
        "most-popular"
    }
}

/// A serendipity-leaning policy: dampens raw popularity so mid-tail items
/// surface (the paper motivates including random users' items for exactly
/// this reason, Section 3.2).
///
/// Ranks by `popularity^damping`, with ties broken deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Serendipity {
    /// Exponent in `(0, 1]`; `1.0` degenerates to [`MostPopular`].
    pub damping: f64,
}

impl Default for Serendipity {
    fn default() -> Self {
        Self { damping: 0.5 }
    }
}

impl RecommendationPolicy for Serendipity {
    fn recommend(
        &self,
        profile: &Profile,
        candidates: &CandidateSet,
        r: usize,
    ) -> Vec<Recommendation> {
        let counts = recommend::popularity_counts(profile, candidates.profiles());
        recommend::rank_with(counts, r, |item, count| {
            f64::from(count).powf(self.damping) - f64::from(item.raw()) * 1e-12
        })
    }

    fn name(&self) -> &'static str {
        "serendipity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{ItemId, UserId};

    fn candidates() -> CandidateSet {
        let mut set = CandidateSet::new();
        set.insert(UserId(1), Profile::from_liked([1u32, 2]));
        set.insert(UserId(2), Profile::from_liked([2u32, 3]));
        set.insert(UserId(3), Profile::from_liked([2u32]));
        set
    }

    #[test]
    fn most_popular_matches_algorithm_2() {
        let recs = MostPopular.recommend(&Profile::new(), &candidates(), 1);
        assert_eq!(recs[0].item, ItemId(2));
        assert_eq!(recs[0].popularity, 3);
    }

    #[test]
    fn serendipity_with_damping_one_matches_most_popular() {
        let a = MostPopular.recommend(&Profile::new(), &candidates(), 3);
        let b = Serendipity { damping: 1.0 }.recommend(&Profile::new(), &candidates(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn policies_have_names() {
        assert_eq!(MostPopular.name(), "most-popular");
        assert_eq!(Serendipity::default().name(), "serendipity");
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn RecommendationPolicy>> =
            vec![Box::new(MostPopular), Box::new(Serendipity::default())];
        for p in &policies {
            let recs = p.recommend(&Profile::new(), &candidates(), 2);
            assert!(recs.len() <= 2);
        }
    }
}
