//! The widget itself: stateless execution of personalization jobs.

use crate::hooks::{MostPopular, RecommendationPolicy};
use hyrec_core::{knn, Cosine, Recommendation, Similarity};
use hyrec_wire::{KnnUpdate, PersonalizationJob, WireError};
use std::sync::Arc;

/// The result of one widget run: what to display and what to send back.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetOutput {
    /// Items to display to the user (Algorithm 2's output).
    pub recommendations: Vec<Recommendation>,
    /// The new KNN selection to report to the server (Algorithm 1's output).
    pub update: KnnUpdate,
}

/// The HyRec widget: runs personalization jobs with pluggable hooks.
///
/// Cheap to clone (hooks are shared through `Arc`), stateless between jobs.
///
/// ```
/// use hyrec_client::{Widget, Serendipity};
/// use hyrec_core::Jaccard;
///
/// // A content provider customizing both hooks (Table 1 of the paper):
/// let widget = Widget::builder()
///     .similarity(Jaccard)
///     .policy(Serendipity::default())
///     .build();
/// assert_eq!(widget.similarity_name(), "jaccard");
/// assert_eq!(widget.policy_name(), "serendipity");
/// ```
#[derive(Clone)]
pub struct Widget {
    similarity: Arc<dyn Similarity>,
    policy: Arc<dyn RecommendationPolicy>,
}

impl std::fmt::Debug for Widget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Widget")
            .field("similarity", &self.similarity.name())
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl Default for Widget {
    fn default() -> Self {
        Self::new()
    }
}

impl Widget {
    /// Creates a widget with the paper's defaults: cosine similarity and
    /// most-popular recommendation.
    #[must_use]
    pub fn new() -> Self {
        Self {
            similarity: Arc::new(Cosine),
            policy: Arc::new(MostPopular),
        }
    }

    /// Starts building a customized widget.
    #[must_use]
    pub fn builder() -> WidgetBuilder {
        WidgetBuilder::default()
    }

    /// Name of the active similarity metric.
    #[must_use]
    pub fn similarity_name(&self) -> &'static str {
        self.similarity.name()
    }

    /// Name of the active recommendation policy.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Executes one personalization job: Algorithm 2 then Algorithm 1.
    ///
    /// This is the entire client-side computation the paper offloads to the
    /// browser — the work measured in Figures 12 and 13.
    #[must_use]
    pub fn run_job(&self, job: &PersonalizationJob) -> WidgetOutput {
        let recommendations = self.policy.recommend(&job.profile, &job.candidates, job.r);
        let hood = knn::select(
            &job.profile,
            job.candidates.pairs(),
            job.k,
            self.similarity.as_ref(),
        );
        WidgetOutput {
            recommendations,
            // Echo the lease credentials: the server's scheduler only
            // applies completions presenting the live lease at the
            // current epoch.
            update: KnnUpdate::from_neighborhood(job.uid, &hood).with_lease(job.lease, job.epoch),
        }
    }

    /// Executes a job straight from its wire encoding, returning the encoded
    /// update — the full browser round-trip body (gunzip → parse → compute →
    /// serialize → gzip), as exercised by the HTTP example and benches.
    ///
    /// # Errors
    ///
    /// Propagates gzip/JSON/schema errors from the job decoding.
    pub fn run_encoded_job(&self, bytes: &[u8]) -> Result<(WidgetOutput, Vec<u8>), WireError> {
        let job = PersonalizationJob::decode(bytes)?;
        let output = self.run_job(&job);
        let encoded = output.update.encode();
        Ok((output, encoded))
    }
}

/// Builder for customized widgets (Rust guideline C-BUILDER).
#[derive(Default)]
pub struct WidgetBuilder {
    similarity: Option<Arc<dyn Similarity>>,
    policy: Option<Arc<dyn RecommendationPolicy>>,
}

impl std::fmt::Debug for WidgetBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WidgetBuilder")
            .field("similarity", &self.similarity.as_ref().map(|s| s.name()))
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .finish()
    }
}

impl WidgetBuilder {
    /// Sets the similarity metric (the `setSimilarity()` hook).
    #[must_use]
    pub fn similarity(mut self, similarity: impl Similarity + 'static) -> Self {
        self.similarity = Some(Arc::new(similarity));
        self
    }

    /// Sets the recommendation policy (the `setRecommendedItems()` hook).
    #[must_use]
    pub fn policy(mut self, policy: impl RecommendationPolicy + 'static) -> Self {
        self.policy = Some(Arc::new(policy));
        self
    }

    /// Builds the widget, defaulting unset hooks to the paper's choices.
    #[must_use]
    pub fn build(self) -> Widget {
        Widget {
            similarity: self.similarity.unwrap_or_else(|| Arc::new(Cosine)),
            policy: self.policy.unwrap_or_else(|| Arc::new(MostPopular)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{CandidateSet, ItemId, Profile, UserId};

    fn job() -> PersonalizationJob {
        let mut candidates = CandidateSet::new();
        candidates.insert(UserId(2), Profile::from_liked([1u32, 2, 3]));
        candidates.insert(UserId(3), Profile::from_liked([2u32, 3, 4]));
        candidates.insert(UserId(4), Profile::from_liked([100u32]));
        PersonalizationJob {
            uid: UserId(1),
            k: 2,
            r: 2,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked([1u32, 2]).into(),
            candidates,
        }
    }

    #[test]
    fn run_job_produces_both_outputs() {
        let out = Widget::new().run_job(&job());
        assert_eq!(out.update.uid, UserId(1));
        assert_eq!(out.update.neighbors.len(), 2);
        // Most similar candidate (u2 shares items 1,2) comes first.
        assert_eq!(out.update.neighbors[0].user, UserId(2));
        // Recommended items exclude already-seen 1 and 2.
        assert!(out.recommendations.iter().all(|r| r.item != ItemId(1)));
        assert!(out.recommendations.iter().all(|r| r.item != ItemId(2)));
        assert_eq!(out.recommendations[0].item, ItemId(3)); // liked by both
    }

    #[test]
    fn widget_is_stateless_across_jobs() {
        let widget = Widget::new();
        let first = widget.run_job(&job());
        let second = widget.run_job(&job());
        assert_eq!(first, second);
    }

    #[test]
    fn encoded_round_trip_runs_full_pipeline() {
        let job = job();
        let bytes = job.encode();
        let (out, update_bytes) = Widget::new().run_encoded_job(&bytes).unwrap();
        let update = KnnUpdate::decode(&update_bytes).unwrap();
        // Similarities are quantized to 1e-6 on the wire; identity holds
        // on users and order, and scores agree within quantization error.
        assert_eq!(update.uid, out.update.uid);
        let ids = |u: &KnnUpdate| u.neighbors.iter().map(|n| n.user).collect::<Vec<_>>();
        assert_eq!(ids(&update), ids(&out.update));
        for (a, b) in update.neighbors.iter().zip(out.update.neighbors.iter()) {
            assert!((a.similarity - b.similarity).abs() < 1e-6);
        }
    }

    #[test]
    fn encoded_job_rejects_garbage() {
        assert!(Widget::new().run_encoded_job(b"junk").is_err());
    }

    #[test]
    fn k_and_r_bounds_respected() {
        let mut j = job();
        j.k = 0;
        j.r = 0;
        let out = Widget::new().run_job(&j);
        assert!(out.update.neighbors.is_empty());
        assert!(out.recommendations.is_empty());

        j.k = 100;
        j.r = 100;
        let out = Widget::new().run_job(&j);
        assert_eq!(out.update.neighbors.len(), 3); // bounded by candidates
    }

    #[test]
    fn custom_similarity_changes_ranking_name() {
        let widget = Widget::builder().similarity(hyrec_core::Overlap).build();
        assert_eq!(widget.similarity_name(), "overlap");
        let out = widget.run_job(&job());
        assert_eq!(out.update.neighbors.len(), 2);
    }

    #[test]
    fn widget_is_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Widget>();
    }
}
