//! Device and CPU-contention models (Figures 11, 12, 13).
//!
//! The paper measures the widget on a Dell laptop and a Wiko smartphone
//! while `stress`/AnTuTu generate background CPU load. We cannot ship that
//! hardware, so the substitution (recorded in DESIGN.md) is:
//!
//! * The **kernel time** — how long one widget run takes at a given profile
//!   size and `k` — is *really measured* on this machine via
//!   [`measure_widget_kernel`].
//! * A [`Device`] multiplies kernel time by a relative speed factor
//!   (calibrated to the paper's laptop ≈ 5 ms vs smartphone ≈ 30 ms at
//!   `ps = 100`).
//! * Background load divides the widget's CPU share through a fair-share
//!   scheduler model ([`contended_time`], [`FairShareCpu`]): with the CPU
//!   at load `L`, a compute-bound task effectively time-shares with `L`
//!   competing demand, so its wall time scales by `1 + L` — exactly the
//!   ≤2× degradation the paper observes from 0% to 100% load.

use hyrec_client::Widget;
use hyrec_core::{CandidateSet, Profile, UserId};
use hyrec_wire::PersonalizationJob;
use std::time::{Duration, Instant};

/// A client device class with a speed factor relative to this machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Human-readable name ("laptop", "smartphone").
    pub name: &'static str,
    /// Wall-time multiplier relative to the benchmark machine.
    pub speed_factor: f64,
    /// Relative propensity to abandon an in-flight personalization job
    /// (navigate away mid-computation). Laptops sit below the population
    /// mean, phones above it — mobile sessions are shorter and a 6.5×
    /// slower kernel spends far longer inside the abandonment window.
    pub churn_factor: f64,
}

impl Device {
    /// The paper's Dell Latitude laptop — the reference machine (we report
    /// measured times directly for it).
    pub const LAPTOP: Device = Device {
        name: "laptop",
        speed_factor: 1.0,
        churn_factor: 0.6,
    };

    /// The paper's Wiko Cink King smartphone: roughly 6–7× slower than the
    /// laptop on the widget workload (calibrated from Figures 12–13, e.g.
    /// ≈30 ms vs ≈5 ms at profile size 100).
    pub const SMARTPHONE: Device = Device {
        name: "smartphone",
        speed_factor: 6.5,
        churn_factor: 1.4,
    };

    /// This device's probability of abandoning a job, given the
    /// population-wide base rate (an even laptop/smartphone split averages
    /// back to `base`). Drives the churn replay in [`crate::churn`].
    #[must_use]
    pub fn abandon_probability(&self, base: f64) -> f64 {
        (base * self.churn_factor).clamp(0.0, 1.0)
    }
}

/// Fair-share CPU model: `n` compute-bound tasks on one core each progress
/// at rate `1/n`; a background load `L ∈ [0, 1]` acts as `L` of a task.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FairShareCpu {
    /// Background utilization in `[0, 1]` (the stress tool's dial).
    pub background_load: f64,
}

impl FairShareCpu {
    /// Creates a model with the given background load.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `[0, 1]`.
    #[must_use]
    pub fn new(load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        Self {
            background_load: load,
        }
    }

    /// CPU share a single compute-bound foreground task receives.
    #[must_use]
    pub fn foreground_share(&self) -> f64 {
        1.0 / (1.0 + self.background_load)
    }

    /// Progress (in task-seconds) a foreground task with CPU `demand ∈
    /// [0,1]` makes over `window` wall seconds, competing with the
    /// background load and `other_demand` from other foreground tasks.
    ///
    /// This drives Figure 11: the monitor loop's progress under stress with
    /// various co-running applications.
    #[must_use]
    pub fn progress(&self, demand: f64, other_demand: f64, window: f64) -> f64 {
        let total = self.background_load + demand + other_demand;
        if total <= 1.0 {
            // CPU not saturated: everyone runs at full demand.
            demand * window
        } else {
            // Saturated: proportional share.
            demand / total * window
        }
    }
}

/// Wall-clock time of one widget run on `device` under `load`.
#[must_use]
pub fn contended_time(kernel: Duration, device: Device, load: FairShareCpu) -> Duration {
    let secs = kernel.as_secs_f64() * device.speed_factor / load.foreground_share();
    Duration::from_secs_f64(secs)
}

/// Builds a synthetic personalization job with `candidates` candidate
/// profiles of `profile_size` liked items each (the workload shape of
/// Figures 12–13).
#[must_use]
pub fn synthetic_job(profile_size: usize, k: usize, candidates: usize) -> PersonalizationJob {
    let profile_of = |seed: u32| {
        Profile::from_liked((0..profile_size as u32).map(|i| (seed * 131 + i * 7) % 60_000))
    };
    let mut set = CandidateSet::with_capacity(candidates);
    for c in 0..candidates as u32 {
        set.insert(UserId(c + 1), profile_of(c + 1));
    }
    PersonalizationJob {
        uid: UserId(0),
        k,
        r: 10,
        lease: 0,
        epoch: 0,
        profile: profile_of(0).into(),
        candidates: set,
    }
}

/// Really measures the widget kernel (Algorithm 1 + Algorithm 2) on this
/// machine: median over `iterations` runs.
#[must_use]
pub fn measure_widget_kernel(job: &PersonalizationJob, iterations: usize) -> Duration {
    let widget = Widget::new();
    let iterations = iterations.max(1);
    let mut samples: Vec<Duration> = (0..iterations)
        .map(|_| {
            let start = Instant::now();
            let out = widget.run_job(job);
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            elapsed
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_unsaturated_is_full_speed() {
        let cpu = FairShareCpu::new(0.3);
        // demand 0.5 + load 0.3 < 1: no slowdown.
        assert!((cpu.progress(0.5, 0.0, 10.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_saturated_is_proportional() {
        let cpu = FairShareCpu::new(1.0);
        // demand 1 vs load 1: half speed.
        assert!((cpu.progress(1.0, 0.0, 10.0) - 5.0).abs() < 1e-9);
        // Adding another full-demand app cuts it to a third.
        assert!((cpu.progress(1.0, 1.0, 10.0) - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn foreground_share_halves_at_full_load() {
        assert!((FairShareCpu::new(0.0).foreground_share() - 1.0).abs() < 1e-9);
        assert!((FairShareCpu::new(1.0).foreground_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn rejects_out_of_range_load() {
        let _ = FairShareCpu::new(1.5);
    }

    #[test]
    fn contended_time_composes_device_and_load() {
        let kernel = Duration::from_millis(4);
        let quiet = contended_time(kernel, Device::LAPTOP, FairShareCpu::new(0.0));
        assert_eq!(quiet, kernel);
        let busy = contended_time(kernel, Device::LAPTOP, FairShareCpu::new(1.0));
        assert_eq!(busy, kernel * 2);
        let phone = contended_time(kernel, Device::SMARTPHONE, FairShareCpu::new(0.0));
        assert!(phone > kernel * 6 && phone < kernel * 7);
    }

    #[test]
    fn kernel_time_grows_with_profile_size() {
        let small = measure_widget_kernel(&synthetic_job(10, 10, 50), 15);
        let large = measure_widget_kernel(&synthetic_job(500, 10, 50), 15);
        assert!(
            large > small,
            "larger profiles must cost more: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn abandon_probability_scales_by_device_and_clamps() {
        assert!((Device::LAPTOP.abandon_probability(0.3) - 0.18).abs() < 1e-12);
        assert!((Device::SMARTPHONE.abandon_probability(0.3) - 0.42).abs() < 1e-12);
        // An even split averages to the base rate.
        let mean = (Device::LAPTOP.abandon_probability(0.3)
            + Device::SMARTPHONE.abandon_probability(0.3))
            / 2.0;
        assert!((mean - 0.3).abs() < 1e-12);
        assert_eq!(Device::SMARTPHONE.abandon_probability(0.9), 1.0);
        assert_eq!(Device::LAPTOP.abandon_probability(0.0), 0.0);
    }

    #[test]
    fn synthetic_job_shape() {
        let job = synthetic_job(100, 10, 120);
        assert_eq!(job.candidates.len(), 120);
        assert_eq!(job.profile.liked_len(), 100);
        assert_eq!(job.k, 10);
    }
}
