//! Response-time and concurrency measurement (Figures 8 and 9).
//!
//! Figure 8 measures *service time* per request as a function of profile
//! size for three front-ends:
//!
//! * **HyRec**: sample a candidate set + encode the job (cached fragments +
//!   fast gzip) — no recommendation computation at all.
//! * **CRec**: sample the same candidate set, then compute Algorithm 2
//!   server-side (the paper's "same algorithm as HyRec" centralized
//!   front-end) and encode the small result.
//! * **Online Ideal**: brute-force KNN over every user, then recommend.
//!
//! Figure 9 drives the real HTTP stack with closed-loop clients and
//! measures latency as concurrency grows.

use hyrec_core::{recommend, ItemId, Neighbor, Neighborhood, UserId, Vote};
use hyrec_http::{api, BatchPolicy, HttpClient, HttpServer, ReactorServer, Response, Router};
use hyrec_sched::SchedConfig;
use hyrec_server::{
    HyRecConfig, HyRecServer, JobEncoder, OnlineIdeal, ScheduledServer, SweeperHandle,
};
use hyrec_wire::{KnnUpdate, PersonalizationJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency summary over a measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile latency.
    pub p95: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl LatencyStats {
    /// Summarizes a sample vector.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    #[must_use]
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        assert!(!samples.is_empty(), "no samples collected");
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let n = samples.len();
        Self {
            mean: total / n as u32,
            p50: samples[n / 2],
            p95: samples[(n * 95 / 100).min(n - 1)],
            samples: n,
        }
    }
}

/// A server population prepared for response-time experiments: `n` users
/// with `profile_size`-item profiles and a warm KNN table (the paper's
/// "assume its KNN table is up to date").
#[derive(Debug)]
pub struct Population {
    /// The HyRec server holding the tables.
    pub server: Arc<HyRecServer>,
    /// Fragment-caching job encoder (shared with the HTTP front-end).
    pub encoder: Arc<JobEncoder>,
    /// User ids present.
    pub users: Vec<UserId>,
}

/// Builds a population of `n_users` users with dense `profile_size`-item
/// profiles and `k` random warm neighbours each.
#[must_use]
pub fn build_population(n_users: usize, profile_size: usize, k: usize, seed: u64) -> Population {
    let server = Arc::new(HyRecServer::with_config(
        HyRecConfig::builder()
            .k(k)
            .anonymize_users(false)
            .seed(seed)
            .build(),
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
    for &user in &users {
        for i in 0..profile_size as u32 {
            // Overlapping item space so similarities are non-trivial.
            let item = (user.0.wrapping_mul(17).wrapping_add(i * 3)) % 60_000;
            server.record(user, ItemId(item), Vote::Like);
        }
    }
    // Warm KNN table: k distinct random neighbours per user.
    for &user in &users {
        let mut picks = std::collections::HashSet::new();
        while picks.len() < k.min(n_users.saturating_sub(1)) {
            let v = users[rng.gen_range(0..users.len())];
            if v != user {
                picks.insert(v);
            }
        }
        let hood = Neighborhood::from_neighbors(picks.into_iter().map(|v| Neighbor {
            user: v,
            similarity: 0.5,
        }));
        server.knn_table().update(user, hood);
    }
    Population {
        server,
        encoder: Arc::new(JobEncoder::new()),
        users,
    }
}

/// Builds a population whose KNN table already *converged*: users live in
/// communities of `2k` members with correlated profiles, and each user's
/// stored neighbours are `k` members of their own community — the
/// steady-state table shape the HyRec loop produces (and the regime where
/// the sampler's 1-hop/2-hop sets overlap heavily, exactly as the paper
/// notes candidate sets shrink "more and more as the KNN tables converge").
#[must_use]
pub fn build_converged_population(
    n_users: usize,
    profile_size: usize,
    k: usize,
    seed: u64,
) -> Population {
    let server = Arc::new(HyRecServer::with_config(
        HyRecConfig::builder()
            .k(k)
            .anonymize_users(false)
            .seed(seed)
            .build(),
    ));
    let users: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
    let community = (2 * k).max(2) as u32;
    for &user in &users {
        let base = (user.0 / community) * 1_000;
        for i in 0..profile_size as u32 {
            // Mostly community items plus a personal remainder.
            let item = if i % 4 == 0 {
                user.0.wrapping_mul(31).wrapping_add(i) % 60_000
            } else {
                base + i
            };
            server.record(user, ItemId(item), Vote::Like);
        }
    }
    for &user in &users {
        let community_start = (user.0 / community) * community;
        let hood = Neighborhood::from_neighbors(
            (1..=community as usize)
                .filter_map(|offset| {
                    let v =
                        community_start + ((user.0 - community_start) + offset as u32) % community;
                    (v != user.0 && (v as usize) < n_users).then_some(Neighbor {
                        user: UserId(v),
                        similarity: 0.8,
                    })
                })
                .take(k),
        );
        server.knn_table().update(user, hood);
    }
    Population {
        server,
        encoder: Arc::new(JobEncoder::new()),
        users,
    }
}

/// Warms the encoder's fragment cache to steady state over the first
/// `users` users — one batched job build instead of a per-user loop.
pub fn warm_cache(population: &Population, users: usize) {
    let prefix = &population.users[..users.min(population.users.len())];
    for job in population.server.build_jobs(prefix) {
        let _ = population.encoder.encode(&job);
    }
}

/// Figure 8, HyRec series: candidate sampling + cached encoding.
#[must_use]
pub fn measure_hyrec_response(population: &Population, requests: usize, seed: u64) -> LatencyStats {
    let mut rng = StdRng::seed_from_u64(seed);
    // Warm the fragment cache once (steady-state behaviour).
    warm_cache(population, 64);
    let samples = (0..requests.max(1))
        .map(|_| {
            let user = population.users[rng.gen_range(0..population.users.len())];
            let start = Instant::now();
            let job = population.server.build_job(user);
            let bytes = population.encoder.encode(&job);
            let elapsed = start.elapsed();
            std::hint::black_box(bytes);
            elapsed
        })
        .collect();
    LatencyStats::from_samples(samples)
}

/// HyRec series with request coalescing: jobs are built through
/// [`hyrec_server::HyRecServer::build_jobs`] in batches of `batch`,
/// reporting the per-request latency. Compare against
/// [`measure_hyrec_response`] to see what shard-lock amortization buys at a
/// given batch size.
#[must_use]
pub fn measure_hyrec_batched_response(
    population: &Population,
    requests: usize,
    batch: usize,
    seed: u64,
) -> LatencyStats {
    let batch = batch.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    warm_cache(population, 64);
    let samples = (0..requests.max(1).div_ceil(batch))
        .map(|_| {
            let start_idx = rng.gen_range(0..population.users.len());
            let users: Vec<UserId> = (0..batch)
                .map(|j| population.users[(start_idx + j) % population.users.len()])
                .collect();
            let start = Instant::now();
            let jobs = population.server.build_jobs(&users);
            let encoded: Vec<_> = jobs
                .iter()
                .map(|job| population.encoder.encode(job))
                .collect();
            let elapsed = start.elapsed() / batch as u32;
            std::hint::black_box(encoded);
            elapsed
        })
        .collect();
    LatencyStats::from_samples(samples)
}

/// Figure 8, CRec series: the same candidate sampling, then Algorithm 2
/// computed **on the server**, then the (small) result encoded.
#[must_use]
pub fn measure_crec_response(population: &Population, requests: usize, seed: u64) -> LatencyStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..requests.max(1))
        .map(|_| {
            let user = population.users[rng.gen_range(0..population.users.len())];
            let start = Instant::now();
            let job = population.server.build_job(user);
            let recs = recommend::most_popular(&job.profile, job.candidates.profiles(), job.r);
            let body = recs_json(&recs);
            let bytes = hyrec_wire::gzip::compress_with(
                body.as_bytes(),
                hyrec_wire::deflate::lz77::Effort::FAST,
            );
            let elapsed = start.elapsed();
            std::hint::black_box(bytes);
            elapsed
        })
        .collect();
    LatencyStats::from_samples(samples)
}

/// Figure 8, Online-Ideal series: brute-force KNN per request.
#[must_use]
pub fn measure_online_ideal_response(
    population: &Population,
    requests: usize,
    seed: u64,
) -> LatencyStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..requests.max(1))
        .map(|_| {
            let user = population.users[rng.gen_range(0..population.users.len())];
            let start = Instant::now();
            let ideal = OnlineIdeal::new(population.server.profiles(), hyrec_core::Cosine, 10);
            let recs = ideal.recommend(user, 10);
            let body = recs_json(&recs);
            let elapsed = start.elapsed();
            std::hint::black_box(body);
            elapsed
        })
        .collect();
    LatencyStats::from_samples(samples)
}

fn recs_json(recs: &[hyrec_core::Recommendation]) -> String {
    let mut out = String::from("{\"items\":[");
    for (i, rec) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.item.raw().to_string());
    }
    out.push_str("]}");
    out
}

/// Builds the HTTP router for concurrency experiments: `/online/`
/// (coalescable, shares the population's fragment-cache encoder),
/// `/online-fast/` (scalar cached-encoder variant) and `/crecommend/`
/// (CRec, server-side Algorithm 2).
#[must_use]
pub fn benchmark_router(population: &Population) -> Router {
    let mut router = api::hyrec_router_with(
        Arc::clone(&population.server),
        Arc::clone(&population.encoder),
        BatchPolicy::default(),
    );

    // A scalar cached-encoder endpoint alongside the coalesced /online/:
    // lets experiments separate the encoder win from the coalescing win.
    let server = Arc::clone(&population.server);
    let encoder = Arc::clone(&population.encoder);
    router.get("/online-fast/", move |req| {
        match req.query_param("uid").and_then(|v| v.parse::<u32>().ok()) {
            Some(uid) => {
                let job = server.build_job(UserId(uid));
                Response::ok_pregzipped_json(encoder.encode(&job))
            }
            None => Response::bad_request("missing uid"),
        }
    });

    let server = Arc::clone(&population.server);
    router.get("/crecommend/", move |req| {
        match req.query_param("uid").and_then(|v| v.parse::<u32>().ok()) {
            Some(uid) => {
                let job = server.build_job(UserId(uid));
                let recs = recommend::most_popular(&job.profile, job.candidates.profiles(), job.r);
                Response::ok_json_gzip(recs_json(&recs).as_bytes())
            }
            None => Response::bad_request("missing uid"),
        }
    });
    router
}

/// Figure 9: closed-loop load — `clients` threads each issue
/// `requests_per_client` requests to `path` (with `?uid=<random>`
/// appended) and the mean per-request latency is reported.
///
/// # Panics
///
/// Panics if no request succeeds (server unreachable).
#[must_use]
pub fn closed_loop(
    addr: std::net::SocketAddr,
    path: &str,
    users: usize,
    clients: usize,
    requests_per_client: usize,
) -> LatencyStats {
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let path = path.to_owned();
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new(addr).with_timeout(Duration::from_secs(60));
            let mut rng = StdRng::seed_from_u64(c as u64);
            let mut samples = Vec::with_capacity(requests_per_client);
            for _ in 0..requests_per_client {
                let uid = rng.gen_range(0..users);
                let start = Instant::now();
                match client.get(&format!("{path}?uid={uid}")) {
                    Ok(response) if response.status == 200 => {
                        samples.push(start.elapsed());
                    }
                    _ => {}
                }
            }
            samples
        }));
    }
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread panicked"));
    }
    LatencyStats::from_samples(all)
}

/// Convenience: spin up a benchmark server and return (handle, addr).
#[must_use]
pub fn spawn_benchmark_server(
    population: &Population,
    workers: usize,
) -> (hyrec_http::server::ServerHandle, std::net::SocketAddr) {
    let server = HttpServer::bind("127.0.0.1:0", workers).expect("bind benchmark server");
    let addr = server.local_addr();
    let handle = server.serve(benchmark_router(population));
    (handle, addr)
}

/// The *seed* front-end, preserved for baseline measurements: scalar
/// `/online/` doing `build_job` + a full `PersonalizationJob::encode`
/// (re-gzipping every candidate profile on every request — no fragment
/// cache, no coalescing). This is the per-request work the PR-1 ROADMAP
/// items were written against.
#[must_use]
pub fn seed_frontend_router(server: Arc<HyRecServer>) -> Router {
    let mut router = Router::new();
    router.get("/online/", move |req: &hyrec_http::Request| {
        match req.query_param("uid").and_then(|v| v.parse::<u32>().ok()) {
            Some(uid) => {
                let job = server.build_job(UserId(uid));
                Response::ok_pregzipped_json(job.encode())
            }
            None => Response::bad_request("missing uid"),
        }
    });
    router
}

/// Spins up the epoll reactor front-end over the benchmark router
/// (coalesced `/online/` + `/rate/` sharing the population's encoder).
#[must_use]
pub fn spawn_reactor_server(
    population: &Population,
    workers: usize,
    policy: BatchPolicy,
) -> (hyrec_http::reactor::ReactorHandle, std::net::SocketAddr) {
    spawn_sharded_reactor_server(population, 1, workers, policy)
}

/// Spins up the reactor front-end sharded across `reactors` event loops
/// (`SO_REUSEPORT` kernel accept sharding when available, hand-off
/// otherwise) over a shared pool of `reactors × workers_per_reactor`
/// workers — the multi-core scaling configuration.
#[must_use]
pub fn spawn_sharded_reactor_server(
    population: &Population,
    reactors: usize,
    workers_per_reactor: usize,
    policy: BatchPolicy,
) -> (hyrec_http::reactor::ReactorHandle, std::net::SocketAddr) {
    let router = api::hyrec_router_with(
        Arc::clone(&population.server),
        Arc::clone(&population.encoder),
        policy,
    );
    let server = ReactorServer::bind_sharded("127.0.0.1:0", reactors, workers_per_reactor)
        .expect("bind sharded reactor server");
    let addr = server.local_addr();
    let handle = server.serve(router);
    (handle, addr)
}

/// Spins up the reactor front-end over the *scheduled* router: jobs are
/// leased, completions validated, `/stats/` live, and a wall-clock sweeper
/// chases abandoned leases. The sweeper handle must outlive the run.
#[must_use]
pub fn spawn_scheduled_reactor_server(
    population: &Population,
    workers: usize,
    policy: BatchPolicy,
    sched_config: SchedConfig,
) -> (
    hyrec_http::reactor::ReactorHandle,
    std::net::SocketAddr,
    Arc<ScheduledServer>,
    SweeperHandle,
) {
    let scheduled = Arc::new(ScheduledServer::new(
        Arc::clone(&population.server),
        sched_config,
    ));
    let server = ReactorServer::bind("127.0.0.1:0", workers).expect("bind scheduled reactor");
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let handle = server.serve(api::hyrec_scheduled_router(
        Arc::clone(&scheduled),
        Arc::clone(&population.encoder),
        policy,
        Some(stats),
    ));
    let sweeper = scheduled.spawn_sweeper(Duration::from_millis(20));
    (handle, addr, scheduled, sweeper)
}

/// Outcome of a churn-mode closed loop ([`measure_churn_loop`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnLoad {
    /// `/online/` fetches answered 200.
    pub fetched: usize,
    /// Completions answered 200 (applied).
    pub completed: usize,
    /// Completions answered 409 (lease superseded/duplicate — expected
    /// under churn and concurrency, not an error).
    pub superseded: usize,
    /// Jobs deliberately abandoned by the simulated browsers.
    pub abandoned: usize,
    /// Hard failures: transport errors or unexpected statuses.
    pub errors: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// `/online/` fetches served per second (every interaction starts
    /// with exactly one fetch, so this is the interaction rate regardless
    /// of the abandon split).
    pub rps: f64,
}

/// Closed-loop churn driver: `clients` keep-alive connections each run
/// `per_client` browser interactions — fetch a job from `/online/`, then
/// with probability `abandon` vanish, otherwise post a completion echoing
/// the job's lease to `/neighbors/`. Works against both the scheduled
/// router (leases enforced) and the plain router (lease fields ignored),
/// so the two series measure the scheduler's overhead like-for-like.
///
/// # Panics
///
/// Panics if a client thread panics.
#[must_use]
pub fn measure_churn_loop(
    addr: std::net::SocketAddr,
    users: usize,
    clients: usize,
    per_client: usize,
    abandon: f64,
    seed: u64,
) -> ChurnLoad {
    let barrier = Arc::new(std::sync::Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new(addr).with_timeout(Duration::from_secs(60));
            let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
            let mut out = (0usize, 0usize, 0usize, 0usize, 0usize);
            barrier.wait();
            let start = Instant::now();
            for _ in 0..per_client {
                let uid = rng.gen_range(0..users);
                let job = match client.get(&format!("/online/?uid={uid}")) {
                    // A 200 whose body does not decode to a job is a hard
                    // error — a silent `None` here would let an encoder
                    // regression sail through the CI churn smoke.
                    Ok(response) if response.status == 200 => {
                        match PersonalizationJob::decode(&response.body) {
                            Ok(job) => {
                                out.0 += 1;
                                Some(job)
                            }
                            Err(_) => {
                                out.4 += 1;
                                None
                            }
                        }
                    }
                    _ => {
                        out.4 += 1;
                        None
                    }
                };
                let Some(job) = job else { continue };
                if rng.gen_bool(abandon) {
                    out.3 += 1; // browser navigates away
                    continue;
                }
                // Synthetic completion: echo the lease, report the first k
                // candidates (cheap stand-in for the widget kernel, which
                // is not what this loop measures).
                let update = KnnUpdate {
                    uid: job.uid,
                    lease: job.lease,
                    epoch: job.epoch,
                    neighbors: job
                        .candidates
                        .iter()
                        .take(job.k)
                        .map(|cand| Neighbor {
                            user: cand.user,
                            similarity: 0.5,
                        })
                        .collect(),
                };
                match client.post("/neighbors/", &update.encode()) {
                    Ok(response) if response.status == 200 => out.1 += 1,
                    Ok(response) if response.status == 409 => out.2 += 1,
                    _ => out.4 += 1,
                }
            }
            (out, start, Instant::now())
        }));
    }
    barrier.wait();
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for handle in handles {
        let ((fetched, completed, superseded, abandoned, errors), start, end) =
            handle.join().expect("churn client thread panicked");
        totals.0 += fetched;
        totals.1 += completed;
        totals.2 += superseded;
        totals.3 += abandoned;
        totals.4 += errors;
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |s| s.max(end)));
    }
    let elapsed = match (first_start, last_end) {
        (Some(start), Some(end)) => end.duration_since(start),
        _ => Duration::ZERO,
    };
    ChurnLoad {
        fetched: totals.0,
        completed: totals.1,
        superseded: totals.2,
        abandoned: totals.3,
        errors: totals.4,
        elapsed,
        rps: totals.0 as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Connection behaviour of the closed-loop load clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Reuse one persistent connection per client (HTTP keep-alive)
    /// instead of a fresh TCP connect per request.
    pub keep_alive: bool,
    /// With `keep_alive`, rotate to a fresh connection after this many
    /// requests (`0` = never; the server's own budget still applies).
    pub requests_per_conn: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            keep_alive: true,
            requests_per_conn: 0,
        }
    }
}

impl LoadOptions {
    /// The seed behaviour: `Connection: close`, one TCP connect per
    /// request.
    #[must_use]
    pub fn close_per_request() -> Self {
        Self {
            keep_alive: false,
            requests_per_conn: 0,
        }
    }

    /// Persistent connections, rotated every `requests_per_conn` requests
    /// (`0` = never).
    #[must_use]
    pub fn persistent(requests_per_conn: usize) -> Self {
        Self {
            keep_alive: true,
            requests_per_conn,
        }
    }
}

/// Outcome of a closed-loop throughput run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Requests answered with 200.
    pub ok: usize,
    /// Requests that failed or returned a non-200 status.
    pub errors: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Completed (200) requests per second.
    pub rps: f64,
}

/// Closed-loop throughput in the seed `Connection: close` mode (one TCP
/// connect per request) — see [`measure_throughput_with`] for the
/// keep-alive modes. Kept as the baseline so `BENCH_http.json` series stay
/// comparable across PRs.
///
/// # Panics
///
/// Panics if a client thread panics.
#[must_use]
pub fn measure_throughput(
    addr: std::net::SocketAddr,
    path: &str,
    users: usize,
    clients: usize,
    requests_per_client: usize,
) -> Throughput {
    measure_throughput_with(
        addr,
        path,
        users,
        clients,
        requests_per_client,
        LoadOptions::close_per_request(),
    )
}

/// Closed-loop throughput: `clients` threads each issue
/// `requests_per_client` requests to `path` (with `?uid=<random>`)
/// and the aggregate completion rate is measured from a barrier-aligned
/// start. `options` selects the connection mode: persistent keep-alive
/// sockets (optionally rotated every N requests) or the seed
/// connect-per-request behaviour.
///
/// # Panics
///
/// Panics if a client thread panics.
#[must_use]
pub fn measure_throughput_with(
    addr: std::net::SocketAddr,
    path: &str,
    users: usize,
    clients: usize,
    requests_per_client: usize,
    options: LoadOptions,
) -> Throughput {
    let barrier = Arc::new(std::sync::Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let path = path.to_owned();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new(addr)
                .with_timeout(Duration::from_secs(60))
                .with_keep_alive(options.keep_alive);
            let mut rng = StdRng::seed_from_u64(0xBEEF ^ c as u64);
            let sep = if path.contains('?') { '&' } else { '?' };
            barrier.wait();
            // Each client times its own span; the aggregate window is
            // min(start)..max(end). (A single post-barrier timestamp on the
            // coordinating thread undercounts badly when the box has fewer
            // cores than clients — the coordinator may not be scheduled
            // until most requests already finished.)
            let start = Instant::now();
            let mut ok = 0usize;
            let mut errors = 0usize;
            let mut on_conn = 0usize;
            for _ in 0..requests_per_client {
                if options.keep_alive
                    && options.requests_per_conn > 0
                    && on_conn >= options.requests_per_conn
                {
                    client.reset_connection();
                    on_conn = 0;
                }
                let uid = rng.gen_range(0..users);
                match client.get(&format!("{path}{sep}uid={uid}")) {
                    Ok(response) if response.status == 200 => ok += 1,
                    _ => errors += 1,
                }
                on_conn += 1;
            }
            (ok, errors, start, Instant::now())
        }));
    }
    barrier.wait();
    let mut ok = 0usize;
    let mut errors = 0usize;
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for handle in handles {
        let (o, e, start, end) = handle.join().expect("client thread panicked");
        ok += o;
        errors += e;
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |s| s.max(end)));
    }
    let elapsed = match (first_start, last_end) {
        (Some(start), Some(end)) => end.duration_since(start),
        _ => Duration::ZERO,
    };
    Throughput {
        ok,
        errors,
        elapsed,
        rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_warm() {
        let population = build_population(50, 20, 5, 1);
        assert_eq!(population.users.len(), 50);
        for &user in &population.users {
            assert_eq!(population.server.profile_of(user).unwrap().liked_len(), 20);
            assert_eq!(population.server.knn_of(user).unwrap().len(), 5);
        }
    }

    #[test]
    fn hyrec_beats_crec_on_large_profiles() {
        // The Figure 8 relationship: with large profiles, offloading the
        // recommendation computation makes the HyRec front-end faster.
        let population = build_population(300, 300, 10, 2);
        // Interleaved sampling: ambient CI load hits both series equally.
        let mut rng = StdRng::seed_from_u64(3);
        // Warm the fragment cache first (steady-state behaviour).
        warm_cache(&population, 64);
        let mut hyrec_samples = Vec::new();
        let mut crec_samples = Vec::new();
        for _ in 0..40 {
            let user = population.users[rng.gen_range(0..population.users.len())];
            let start = Instant::now();
            let job = population.server.build_job(user);
            let bytes = population.encoder.encode(&job);
            hyrec_samples.push(start.elapsed());
            std::hint::black_box(bytes);

            let start = Instant::now();
            let job = population.server.build_job(user);
            let recs = recommend::most_popular(&job.profile, job.candidates.profiles(), job.r);
            crec_samples.push(start.elapsed());
            std::hint::black_box(recs);
        }
        // Minima for noise robustness (see online_ideal_is_slowest_at_scale).
        let hyrec_min = hyrec_samples.iter().min().copied().unwrap();
        let crec_min = crec_samples.iter().min().copied().unwrap();
        assert!(
            hyrec_min < crec_min,
            "hyrec {hyrec_min:?} should beat crec {crec_min:?}"
        );
    }

    #[test]
    fn online_ideal_is_slowest_at_scale() {
        // The full-table scan costs O(N · ps) per request vs O(candidates ·
        // ps) for HyRec's job building; the separation needs N ≫ |S_u|.
        // Samples are interleaved so ambient CI load (other test binaries
        // sharing the cores) hits both series equally; medians compared.
        let population = build_population(3000, 50, 10, 4);
        let mut rng = StdRng::seed_from_u64(5);
        // Warm the fragment cache to steady state (profiles are static in
        // this population, so production behaviour is all cache hits).
        warm_cache(&population, 128);
        let ideal = OnlineIdeal::new(population.server.profiles(), hyrec_core::Cosine, 10);
        let mut hyrec_samples = Vec::new();
        let mut ideal_samples = Vec::new();
        for _ in 0..30 {
            let user = population.users[rng.gen_range(0..population.users.len())];
            let start = Instant::now();
            let job = population.server.build_job(user);
            let bytes = population.encoder.encode(&job);
            hyrec_samples.push(start.elapsed());
            std::hint::black_box(bytes);

            let start = Instant::now();
            let recs = ideal.recommend(user, 10);
            ideal_samples.push(start.elapsed());
            std::hint::black_box(recs);
        }
        // Compare minima: contention from concurrently running tests only
        // produces upward spikes, so the per-series floor is the robust
        // estimate of intrinsic service time.
        let hyrec_min = hyrec_samples.iter().min().copied().unwrap();
        let ideal_min = ideal_samples.iter().min().copied().unwrap();
        assert!(
            ideal_min > hyrec_min,
            "ideal {ideal_min:?} must exceed hyrec {hyrec_min:?}"
        );
    }

    #[test]
    fn batched_measurement_runs_and_counts() {
        let population = build_population(100, 20, 5, 8);
        let stats = measure_hyrec_batched_response(&population, 64, 16, 9);
        assert_eq!(stats.samples, 4);
        assert!(stats.mean > Duration::ZERO);
    }

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100).map(Duration::from_millis).collect());
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50, Duration::from_millis(51));
        assert!(stats.p95 >= Duration::from_millis(95));
        assert!(stats.mean > Duration::from_millis(45));
    }

    #[test]
    fn reactor_front_end_serves_and_measures_throughput() {
        let population = build_population(40, 10, 3, 6);
        let (handle, addr) = spawn_reactor_server(&population, 2, BatchPolicy::default());
        let throughput = measure_throughput(addr, "/online/", 40, 8, 4);
        assert_eq!(throughput.ok, 32);
        assert_eq!(throughput.errors, 0);
        assert!(throughput.rps > 0.0);
        // The closed-loop latency harness works against the reactor too.
        let stats = closed_loop(addr, "/online/", 40, 4, 3);
        assert_eq!(stats.samples, 12);
        assert_eq!(handle.request_count(), 32 + 12);
        handle.stop();
    }

    #[test]
    fn sharded_reactor_front_end_serves_and_aggregates_stats() {
        let population = build_population(40, 10, 3, 6);
        let (handle, addr) =
            spawn_sharded_reactor_server(&population, 2, 1, BatchPolicy::default());
        let throughput =
            measure_throughput_with(addr, "/online/", 40, 8, 4, LoadOptions::persistent(0));
        assert_eq!(throughput.ok, 32);
        assert_eq!(throughput.errors, 0);
        let stats = handle.stats();
        assert_eq!(stats.shards().len(), 2);
        assert_eq!(
            stats
                .shards()
                .iter()
                .map(hyrec_http::reactor::ShardStats::requests)
                .sum::<u64>(),
            stats.requests()
        );
        assert_eq!(stats.requests(), 32);
        handle.stop();
    }

    #[test]
    fn keep_alive_throughput_mode_reuses_and_rotates_connections() {
        let population = build_population(40, 10, 3, 6);
        let (handle, addr) = spawn_reactor_server(&population, 2, BatchPolicy::default());
        let throughput =
            measure_throughput_with(addr, "/online/", 40, 4, 6, LoadOptions::persistent(3));
        assert_eq!(throughput.ok, 24);
        assert_eq!(throughput.errors, 0);
        // 4 clients × (6 requests rotated every 3) = 8 connections, far
        // fewer than the 24 the close-per-request mode would open.
        assert_eq!(handle.stats().connections(), 8);
        assert_eq!(handle.request_count(), 24);
        handle.stop();
    }

    #[test]
    fn churn_loop_drives_scheduled_and_plain_routers() {
        let population = build_population(40, 10, 3, 6);
        // Scheduled: leases enforced, abandonment recovered by the sweeper.
        let (handle, addr, scheduled, sweeper) = spawn_scheduled_reactor_server(
            &population,
            2,
            BatchPolicy::default(),
            SchedConfig {
                lease_timeout: 50,
                max_reissues: 1,
                ..SchedConfig::default()
            },
        );
        let churn = measure_churn_loop(addr, 40, 4, 6, 0.5, 11);
        assert_eq!(churn.fetched, 24);
        assert_eq!(churn.errors, 0, "{churn:?}");
        assert!(churn.abandoned > 0, "{churn:?}");
        assert_eq!(
            churn.completed + churn.superseded + churn.abandoned,
            24,
            "{churn:?}"
        );
        assert!(scheduled.scheduler().stats().issued() >= 24);
        sweeper.stop();
        handle.stop();

        // The same loop against the plain router: lease fields are zero
        // and every posted completion lands (no 409s possible).
        let (handle, addr) = spawn_reactor_server(&population, 2, BatchPolicy::default());
        let plain = measure_churn_loop(addr, 40, 4, 6, 0.25, 12);
        assert_eq!(plain.fetched, 24);
        assert_eq!(plain.errors, 0, "{plain:?}");
        assert_eq!(plain.superseded, 0, "{plain:?}");
        handle.stop();
    }

    #[test]
    fn seed_router_replicates_seed_online_semantics() {
        let population = build_population(20, 10, 3, 9);
        let server = HttpServer::bind("127.0.0.1:0", 2).expect("bind");
        let addr = server.local_addr();
        let handle = server.serve(seed_frontend_router(Arc::clone(&population.server)));
        let client = HttpClient::new(addr);
        let response = client.get("/online/?uid=1").unwrap();
        assert_eq!(response.status, 200);
        // The seed path gzips the whole job per request; the body still
        // decodes to a job for the requested user.
        let job = hyrec_wire::PersonalizationJob::decode(&response.body).unwrap();
        assert_eq!(job.uid, UserId(1));
        assert_eq!(client.get("/online/").unwrap().status, 400);
        handle.stop();
    }

    #[test]
    fn closed_loop_over_real_http() {
        let population = build_population(40, 10, 3, 6);
        let (handle, addr) = spawn_benchmark_server(&population, 4);
        let stats = closed_loop(addr, "/online-fast/", 40, 4, 5);
        assert_eq!(stats.samples, 20);
        assert!(stats.mean > Duration::ZERO);
        let stats = closed_loop(addr, "/crecommend/", 40, 2, 5);
        assert_eq!(stats.samples, 10);
        handle.stop();
    }
}
