//! Trace replay: driving HyRec and the offline baselines through a
//! workload, with periodic metric probes.
//!
//! This is the engine behind Figures 3, 4 and 5: "we replay the rating
//! activity of each user over time. When a user rates an item in the
//! workload, the client sends a request to the server, triggering the
//! computation of recommendations" (Section 5.2).

use crate::metrics;
use hyrec_client::Widget;
use hyrec_core::{SharedProfile, UserId};
use hyrec_datasets::{Timestamp, Trace};
use hyrec_server::offline::{ExhaustiveBackend, OfflineBackend};
use hyrec_server::{HyRecConfig, HyRecServer};
use std::collections::{BinaryHeap, HashMap};

/// Configuration for a HyRec replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Recommendation list size `r`.
    pub r: usize,
    /// Optional bound on inter-request time, in seconds: users idle longer
    /// than this get a synthetic refresh request (the paper's `IR=7` days
    /// variant in Figure 3).
    pub inter_request_bound: Option<u64>,
    /// Seconds between metric probes.
    pub probe_interval: u64,
    /// Compute the ideal-KNN upper bound at every probe (quadratic; keep
    /// for ML1-scale runs only).
    pub compute_ideal: bool,
    /// RNG seed forwarded to the server's sampler.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            k: 10,
            r: 10,
            inter_request_bound: None,
            probe_interval: 2 * 86_400, // every 2 simulated days
            compute_ideal: false,
            seed: 42,
        }
    }
}

/// One metric probe along the replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// Simulated time of the probe.
    pub time: Timestamp,
    /// Mean view similarity of the live KNN table (re-scored against
    /// current profiles).
    pub view_similarity: f64,
    /// Ideal upper bound at the same instant, when requested.
    pub ideal_view_similarity: Option<f64>,
    /// Mean candidate-set size over the jobs built since the last probe
    /// (Figure 5's y-axis).
    pub avg_candidate_size: f64,
}

/// Result of a HyRec replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Metric probes in time order.
    pub probes: Vec<ProbePoint>,
    /// Per-user iteration counts (number of personalization jobs run).
    pub iterations: HashMap<UserId, u64>,
    /// Per-user final view similarity (re-scored at the end).
    pub final_per_user: HashMap<UserId, f64>,
    /// Per-user ideal view similarity at the end (for Figure 4 ratios),
    /// when `compute_ideal` was set.
    pub ideal_per_user: Option<HashMap<UserId, f64>>,
}

impl ReplayResult {
    /// Final mean view similarity (last probe).
    #[must_use]
    pub fn final_view_similarity(&self) -> f64 {
        self.probes.last().map_or(0.0, |p| p.view_similarity)
    }

    /// Per-user `(iterations, achieved / ideal)` ratios — the scatter of
    /// Figure 4. Users with zero ideal similarity are skipped.
    #[must_use]
    pub fn figure4_points(&self) -> Vec<(u64, f64)> {
        let Some(ideal) = &self.ideal_per_user else {
            return Vec::new();
        };
        let mut points = Vec::new();
        for (user, achieved) in &self.final_per_user {
            let Some(&bound) = ideal.get(user) else {
                continue;
            };
            if bound > 1e-9 {
                let iterations = self.iterations.get(user).copied().unwrap_or(0);
                points.push((iterations, (achieved / bound).min(1.0)));
            }
        }
        points.sort_unstable_by_key(|(i, _)| *i);
        points
    }
}

/// Replays a binary trace through the full HyRec loop (server + widget).
///
/// Each rating event records the vote, then triggers a personalization job
/// and a KNN write-back, exactly the paper's request flow.
#[must_use]
pub fn replay_hyrec(trace: &Trace, config: &ReplayConfig) -> ReplayResult {
    let server = HyRecServer::with_config(
        HyRecConfig::builder()
            .k(config.k)
            .r(config.r)
            .seed(config.seed)
            .build(),
    );
    let widget = Widget::new();

    let mut iterations: HashMap<UserId, u64> = HashMap::new();
    let mut probes = Vec::new();
    let mut candidate_sizes_sum = 0u64;
    let mut candidate_jobs = 0u64;
    let mut next_probe = config.probe_interval;

    // Synthetic refresh requests for the IR-bounded variant: a min-heap of
    // (due_time, user).
    let mut refresh_queue: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut last_request: HashMap<UserId, u64> = HashMap::new();

    let run_request =
        |server: &HyRecServer,
         user: UserId,
         now: u64,
         iterations: &mut HashMap<UserId, u64>,
         candidate_sizes_sum: &mut u64,
         candidate_jobs: &mut u64,
         last_request: &mut HashMap<UserId, u64>,
         refresh_queue: &mut BinaryHeap<std::cmp::Reverse<(u64, u32)>>| {
            let job = server.build_job(user);
            *candidate_sizes_sum += job.candidates.len() as u64;
            *candidate_jobs += 1;
            let out = widget.run_job(&job);
            server.apply_update(&out.update);
            *iterations.entry(user).or_insert(0) += 1;
            last_request.insert(user, now);
            if let Some(bound) = config.inter_request_bound {
                refresh_queue.push(std::cmp::Reverse((now + bound, user.0)));
            }
        };

    let probe = |server: &HyRecServer,
                 time: u64,
                 candidate_sizes_sum: &mut u64,
                 candidate_jobs: &mut u64,
                 probes: &mut Vec<ProbePoint>| {
        // The paper's metric uses the similarities *stored* in the KNN
        // table (computed at selection time): an inactive user's entry
        // goes stale, which is exactly the activity effect Figures 3-4
        // measure. The ideal bound is evaluated on current profiles.
        let view = server.average_view_similarity();
        let ideal = if config.compute_ideal {
            let profiles: HashMap<UserId, SharedProfile> =
                server.profiles().snapshot().into_iter().collect();
            Some(metrics::ideal_view_similarity(&profiles, config.k))
        } else {
            None
        };
        probes.push(ProbePoint {
            time: Timestamp(time),
            view_similarity: view,
            ideal_view_similarity: ideal,
            avg_candidate_size: if *candidate_jobs == 0 {
                0.0
            } else {
                *candidate_sizes_sum as f64 / *candidate_jobs as f64
            },
        });
        *candidate_sizes_sum = 0;
        *candidate_jobs = 0;
    };

    for event in trace.iter() {
        let now = event.time.0;

        // Fire due synthetic refreshes first (IR-bounded variant). The due
        // entries at each queue drain form one coalesced batch through the
        // server's batched entry points — the request-coalescing shape a
        // production front-end would use for its refresh backlog. The outer
        // loop re-drains until quiescent so cascaded refreshes (a long-idle
        // user owes several bound-spaced refreshes before `now`) still fire,
        // exactly as the one-at-a-time harness did; `last_request` is
        // updated at collection time so one user never enters a batch twice.
        loop {
            let mut due_refreshes: Vec<(UserId, u64)> = Vec::new();
            while let Some(&std::cmp::Reverse((due, uid))) = refresh_queue.peek() {
                if due > now {
                    break;
                }
                refresh_queue.pop();
                let user = UserId(uid);
                // Only refresh if the user has actually been idle that long.
                let idle_since = last_request.get(&user).copied().unwrap_or(0);
                if now.saturating_sub(idle_since) >= config.inter_request_bound.unwrap_or(u64::MAX)
                {
                    last_request.insert(user, due);
                    due_refreshes.push((user, due));
                }
            }
            if due_refreshes.is_empty() {
                break;
            }
            let users: Vec<UserId> = due_refreshes.iter().map(|(u, _)| *u).collect();
            let jobs = server.build_jobs(&users);
            let updates: Vec<_> = jobs
                .iter()
                .map(|job| {
                    candidate_sizes_sum += job.candidates.len() as u64;
                    candidate_jobs += 1;
                    widget.run_job(job).update
                })
                .collect();
            server.apply_updates(&updates);
            for (user, due) in due_refreshes {
                *iterations.entry(user).or_insert(0) += 1;
                if let Some(bound) = config.inter_request_bound {
                    refresh_queue.push(std::cmp::Reverse((due + bound, user.0)));
                }
            }
        }

        // Probes due before this event.
        while now >= next_probe {
            probe(
                &server,
                next_probe,
                &mut candidate_sizes_sum,
                &mut candidate_jobs,
                &mut probes,
            );
            next_probe += config.probe_interval;
        }

        // The paper's flow: profile update, then the personalization job.
        server.record(event.user, event.item, event.vote);
        run_request(
            &server,
            event.user,
            now,
            &mut iterations,
            &mut candidate_sizes_sum,
            &mut candidate_jobs,
            &mut last_request,
            &mut refresh_queue,
        );
    }

    // Final probe at the horizon.
    probe(
        &server,
        trace.horizon().0,
        &mut candidate_sizes_sum,
        &mut candidate_jobs,
        &mut probes,
    );

    let final_per_user: HashMap<UserId, f64> = server
        .knn_table()
        .snapshot()
        .into_iter()
        .map(|(user, hood)| (user, hood.view_similarity()))
        .collect();
    let ideal_per_user = if config.compute_ideal {
        let profiles: HashMap<UserId, SharedProfile> =
            server.profiles().snapshot().into_iter().collect();
        Some(metrics::ideal_knn(&profiles, config.k).per_user_view_similarity(&profiles))
    } else {
        None
    };

    ReplayResult {
        probes,
        iterations,
        final_per_user,
        ideal_per_user,
    }
}

/// Replays the *Offline-Ideal* baseline: profiles accumulate continuously;
/// the KNN table is recomputed exhaustively every `period` seconds and
/// stays frozen in between (the staircase of Figure 3).
#[must_use]
pub fn replay_offline_ideal(
    trace: &Trace,
    k: usize,
    period: u64,
    probe_interval: u64,
) -> Vec<ProbePoint> {
    let backend = ExhaustiveBackend::default();
    let mut profiles: HashMap<UserId, SharedProfile> = HashMap::new();
    // Mean of the similarities stored at the last recompute: constant
    // between recomputations, which is the paper's staircase.
    let mut stored_view = 0.0f64;
    let mut next_recompute = period;
    let mut next_probe = probe_interval;
    let mut probes = Vec::new();

    let advance = |now: u64,
                   profiles: &HashMap<UserId, SharedProfile>,
                   stored_view: &mut f64,
                   next_recompute: &mut u64,
                   next_probe: &mut u64,
                   probes: &mut Vec<ProbePoint>| {
        while now >= *next_recompute || now >= *next_probe {
            if *next_recompute <= *next_probe {
                let flat: Vec<(UserId, SharedProfile)> = profiles
                    .iter()
                    .map(|(u, p)| (*u, SharedProfile::clone(p)))
                    .collect();
                let table = backend.compute(&flat, k);
                *stored_view = if table.is_empty() {
                    0.0
                } else {
                    table.iter().map(|(_, h)| h.view_similarity()).sum::<f64>() / table.len() as f64
                };
                *next_recompute += period;
            } else {
                probes.push(ProbePoint {
                    time: Timestamp(*next_probe),
                    view_similarity: *stored_view,
                    ideal_view_similarity: None,
                    avg_candidate_size: 0.0,
                });
                *next_probe += probe_interval;
            }
        }
    };

    for event in trace.iter() {
        advance(
            event.time.0,
            &profiles,
            &mut stored_view,
            &mut next_recompute,
            &mut next_probe,
            &mut probes,
        );
        SharedProfile::make_mut(profiles.entry(event.user).or_default())
            .record(event.item, event.vote);
    }
    // Final probe.
    probes.push(ProbePoint {
        time: trace.horizon(),
        view_similarity: stored_view,
        ideal_view_similarity: None,
        avg_candidate_size: 0.0,
    });
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_datasets::{DatasetSpec, TraceGenerator};

    fn small_trace() -> Trace {
        TraceGenerator::new(DatasetSpec::ML1.scaled(0.05), 3)
            .generate()
            .binarize()
    }

    #[test]
    fn hyrec_replay_converges_toward_ideal() {
        let trace = small_trace();
        let config = ReplayConfig {
            k: 5,
            probe_interval: 10 * 86_400,
            compute_ideal: true,
            ..ReplayConfig::default()
        };
        let result = replay_hyrec(&trace, &config);
        assert!(!result.probes.is_empty());

        let last = result.probes.last().unwrap();
        let ideal = last.ideal_view_similarity.expect("ideal requested");
        assert!(ideal > 0.0);
        // The paper reports within 10-20% of ideal on ML1; the small scaled
        // trace is harder, so accept 60%+.
        assert!(
            last.view_similarity > ideal * 0.6,
            "view {:.4} vs ideal {:.4}",
            last.view_similarity,
            ideal
        );
        // Convergence: final view similarity beats the first probe's.
        assert!(last.view_similarity > result.probes[0].view_similarity);
    }

    #[test]
    fn candidate_sizes_shrink_after_warmup() {
        // Needs communities larger than k for the 2-hop sets to collapse:
        // use a 15% slice (≈140 users across 12 communities). The IR bound
        // keeps idle users iterating, so the late-trace candidate sizes
        // reflect convergence rather than staleness — without it the shrink
        // is at the mercy of the tail of the activity distribution.
        let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.15), 3)
            .generate()
            .binarize();
        let config = ReplayConfig {
            k: 5,
            probe_interval: 10 * 86_400,
            inter_request_bound: Some(7 * 86_400),
            ..Default::default()
        };
        let result = replay_hyrec(&trace, &config);
        let sizes: Vec<f64> = result
            .probes
            .iter()
            .map(|p| p.avg_candidate_size)
            .filter(|&s| s > 0.0)
            .collect();
        assert!(sizes.len() >= 3);
        // Candidate sets grow while tables fill, peak, then shrink as the
        // KNN converges and the 2-hop sets overlap (Figure 5's shape).
        let peak = sizes.iter().cloned().fold(0.0f64, f64::max);
        let late = sizes[sizes.len() - 1];
        assert!(
            late < peak * 0.85,
            "candidate set should shrink after convergence: peak {peak:.1} late {late:.1}"
        );
        // And never exceed the paper's bound.
        let bound = hyrec_core::candidate_set_bound(5) as f64;
        assert!(sizes.iter().all(|&s| s <= bound + 1e-9));
    }

    #[test]
    fn iteration_counts_match_events_without_ir() {
        let trace = small_trace();
        let result = replay_hyrec(
            &trace,
            &ReplayConfig {
                k: 3,
                ..Default::default()
            },
        );
        let total: u64 = result.iterations.values().sum();
        assert_eq!(total, trace.len() as u64);
    }

    #[test]
    fn ir_bound_adds_refresh_iterations() {
        let trace = small_trace();
        let without = replay_hyrec(
            &trace,
            &ReplayConfig {
                k: 3,
                ..Default::default()
            },
        );
        let with = replay_hyrec(
            &trace,
            &ReplayConfig {
                k: 3,
                inter_request_bound: Some(7 * 86_400),
                ..Default::default()
            },
        );
        let total = |r: &ReplayResult| r.iterations.values().sum::<u64>();
        assert!(
            total(&with) > total(&without),
            "IR bound must add synthetic refreshes: {} vs {}",
            total(&with),
            total(&without)
        );
    }

    #[test]
    fn figure4_points_are_ratios() {
        let trace = small_trace();
        let config = ReplayConfig {
            k: 4,
            compute_ideal: true,
            ..Default::default()
        };
        let result = replay_hyrec(&trace, &config);
        let points = result.figure4_points();
        assert!(!points.is_empty());
        for (iterations, ratio) in &points {
            assert!(*iterations >= 1);
            assert!((0.0..=1.0).contains(ratio));
        }
    }

    #[test]
    fn offline_staircase_updates_on_period() {
        let trace = small_trace();
        let horizon = trace.horizon().0;
        let probes = replay_offline_ideal(&trace, 5, horizon / 4 + 1, horizon / 20 + 1);
        assert!(probes.len() >= 10);
        // Early probes (before the first recompute) score zero.
        assert_eq!(probes[0].view_similarity, 0.0);
        // Final probes are positive (table computed at least thrice).
        assert!(probes.last().unwrap().view_similarity > 0.0);
    }

    #[test]
    fn hyrec_converges_while_unrefreshed_offline_stays_at_zero() {
        // The view-similarity advantage of HyRec over a *periodically
        // refreshed* offline table is transient (mid-staircase) — the
        // paper's durable advantage is recommendation quality (Figure 6,
        // tested in `quality`). The robust replay-level invariant is the
        // cold-start one: before the first recompute the offline table
        // provides nothing, while HyRec personalizes from the first rating.
        let trace = small_trace();
        let horizon = trace.horizon().0;
        let hyrec = replay_hyrec(
            &trace,
            &ReplayConfig {
                k: 5,
                probe_interval: horizon / 10 + 1,
                ..Default::default()
            },
        );
        let offline = replay_offline_ideal(&trace, 5, horizon * 2, horizon / 10 + 1);
        assert_eq!(offline.last().unwrap().view_similarity, 0.0);
        assert!(hyrec.final_view_similarity() > 0.05);
        // And the offline staircase with a real period is eventually
        // populated (sanity of the staircase mechanics).
        let stepped = replay_offline_ideal(&trace, 5, horizon / 3 + 1, horizon / 10 + 1);
        assert!(stepped.last().unwrap().view_similarity > 0.0);
    }
}
