//! Ideal-KNN computation and view-similarity evaluation.
//!
//! The paper's *view similarity* metric (Section 5.1) is "the average
//! profile similarity between a user and her neighbors"; its upper bound is
//! obtained "by considering neighbors computed with global knowledge" (the
//! *ideal KNN*). Crucially, both are evaluated against **current** profiles:
//! a neighbour chosen last week is scored with this week's profiles, which
//! is what makes the offline staircase of Figure 3 drift between
//! recomputations.

use hyrec_core::{Cosine, Neighborhood, SharedProfile, Similarity, UserId};
use hyrec_server::offline::{ExhaustiveBackend, OfflineBackend};
use std::collections::HashMap;

/// A user → neighbourhood table paired with helpers to score it.
#[derive(Debug, Clone, Default)]
pub struct KnnSnapshot {
    table: HashMap<UserId, Vec<UserId>>,
}

impl KnnSnapshot {
    /// Builds a snapshot from `(user, neighbourhood)` pairs.
    #[must_use]
    pub fn from_table(table: &[(UserId, Neighborhood)]) -> Self {
        Self {
            table: table
                .iter()
                .map(|(u, hood)| (*u, hood.users().collect()))
                .collect(),
        }
    }

    /// Number of users with an entry.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The stored neighbour ids of `user`.
    #[must_use]
    pub fn neighbors_of(&self, user: UserId) -> Option<&[UserId]> {
        self.table.get(&user).map(Vec::as_slice)
    }

    /// Re-scores the stored neighbour choices against `profiles` (current
    /// state) and returns the mean view similarity over users present in
    /// both the snapshot and the profile map.
    #[must_use]
    pub fn view_similarity_against(&self, profiles: &HashMap<UserId, SharedProfile>) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (user, neighbors) in &self.table {
            let Some(profile) = profiles.get(user) else {
                continue;
            };
            if neighbors.is_empty() {
                count += 1;
                continue;
            }
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in neighbors {
                if let Some(other) = profiles.get(v) {
                    sum += Cosine.score(profile, other);
                    n += 1;
                }
            }
            if n > 0 {
                total += sum / n as f64;
            }
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Per-user view similarity against current profiles.
    #[must_use]
    pub fn per_user_view_similarity(
        &self,
        profiles: &HashMap<UserId, SharedProfile>,
    ) -> HashMap<UserId, f64> {
        let mut out = HashMap::with_capacity(self.table.len());
        for (user, neighbors) in &self.table {
            let Some(profile) = profiles.get(user) else {
                continue;
            };
            if neighbors.is_empty() {
                out.insert(*user, 0.0);
                continue;
            }
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in neighbors {
                if let Some(other) = profiles.get(v) {
                    sum += Cosine.score(profile, other);
                    n += 1;
                }
            }
            out.insert(*user, if n == 0 { 0.0 } else { sum / n as f64 });
        }
        out
    }
}

/// Computes the ideal (global-knowledge) KNN table for the given profiles.
#[must_use]
pub fn ideal_knn(profiles: &HashMap<UserId, SharedProfile>, k: usize) -> KnnSnapshot {
    // Arc bumps, not deep copies: the exhaustive scan borrows the same
    // allocations the caller holds.
    let flat: Vec<(UserId, SharedProfile)> = profiles
        .iter()
        .map(|(u, p)| (*u, SharedProfile::clone(p)))
        .collect();
    let table = ExhaustiveBackend::default().compute(&flat, k);
    KnnSnapshot::from_table(&table)
}

/// Mean ideal view similarity: the upper bound the paper's Figures 3–4
/// normalize against.
#[must_use]
pub fn ideal_view_similarity(profiles: &HashMap<UserId, SharedProfile>, k: usize) -> f64 {
    ideal_knn(profiles, k).view_similarity_against(profiles)
}

/// Convenience: mean cosine view similarity of a live server KNN table
/// against current profiles.
#[must_use]
pub fn server_view_similarity(server: &hyrec_server::HyRecServer) -> f64 {
    let profiles: HashMap<UserId, SharedProfile> =
        server.profiles().snapshot().into_iter().collect();
    let table = server.knn_table().snapshot();
    KnnSnapshot::from_table(&table).view_similarity_against(&profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::Neighbor;
    use hyrec_core::Profile;

    fn profile_map() -> HashMap<UserId, SharedProfile> {
        // Two clusters of three users.
        (0..6u32)
            .map(|u| {
                let base = (u % 2) * 100;
                (
                    UserId(u),
                    SharedProfile::new(Profile::from_liked(
                        (0..5u32).map(|i| base + i).collect::<Vec<_>>(),
                    )),
                )
            })
            .collect()
    }

    #[test]
    fn ideal_knn_scores_one_for_perfect_clusters() {
        let profiles = profile_map();
        let snapshot = ideal_knn(&profiles, 2);
        assert_eq!(snapshot.len(), 6);
        let sim = snapshot.view_similarity_against(&profiles);
        assert!((sim - 1.0).abs() < 1e-9, "got {sim}");
    }

    #[test]
    fn stale_choices_are_rescored_with_current_profiles() {
        let mut profiles = profile_map();
        let table = vec![(
            UserId(0),
            Neighborhood::from_neighbors([Neighbor {
                user: UserId(2),
                similarity: 1.0,
            }]),
        )];
        let snapshot = KnnSnapshot::from_table(&table);
        assert!((snapshot.view_similarity_against(&profiles) - 1.0).abs() < 1e-9);

        // u2's profile drifts away; the stored similarity 1.0 is ignored.
        profiles.insert(
            UserId(2),
            SharedProfile::new(Profile::from_liked([900u32, 901])),
        );
        assert_eq!(snapshot.view_similarity_against(&profiles), 0.0);
    }

    #[test]
    fn per_user_matches_aggregate() {
        let profiles = profile_map();
        let snapshot = ideal_knn(&profiles, 2);
        let per_user = snapshot.per_user_view_similarity(&profiles);
        let mean: f64 = per_user.values().sum::<f64>() / per_user.len() as f64;
        assert!((mean - snapshot.view_similarity_against(&profiles)).abs() < 1e-9);
    }

    #[test]
    fn missing_profiles_are_skipped() {
        let profiles = profile_map();
        let table = vec![(
            UserId(99), // no profile
            Neighborhood::from_neighbors([Neighbor {
                user: UserId(0),
                similarity: 1.0,
            }]),
        )];
        let snapshot = KnnSnapshot::from_table(&table);
        assert_eq!(snapshot.view_similarity_against(&profiles), 0.0);
    }

    #[test]
    fn empty_everything() {
        let snapshot = KnnSnapshot::default();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.view_similarity_against(&HashMap::new()), 0.0);
        assert_eq!(ideal_view_similarity(&HashMap::new(), 3), 0.0);
    }
}
