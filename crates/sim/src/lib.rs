//! # hyrec-sim
//!
//! The measurement harness of the HyRec reproduction: everything Section 5
//! of the paper measures, as reusable experiment drivers.
//!
//! * [`metrics`] — ideal-KNN computation and view-similarity evaluation
//!   (the "ideal KNN" upper bound of Figures 3–4).
//! * [`replay`] — trace replay through the full HyRec loop and through the
//!   offline baselines, with periodic probes (Figures 3, 4, 5).
//! * [`quality`] — the train/test recommendation-quality protocol of
//!   Section 5.1 (Figure 6).
//! * [`cost`] — the EC2 cost model behind Table 3.
//! * [`device`] — device speed and CPU-contention models plus real kernel
//!   measurements (Figures 11, 12, 13).
//! * [`load`] — response-time and concurrency measurement against the real
//!   HTTP stack (Figures 8, 9).
//!
//! ```
//! use hyrec_datasets::{DatasetSpec, TraceGenerator};
//! use hyrec_sim::replay::{self, ReplayConfig};
//!
//! let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.05), 1)
//!     .generate()
//!     .binarize();
//! let result = replay::replay_hyrec(&trace, &ReplayConfig::default());
//! assert!(!result.probes.is_empty());
//! // The gossip feedback loop made neighbourhoods non-trivial.
//! assert!(result.final_view_similarity() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cost;
pub mod device;
pub mod load;
pub mod metrics;
pub mod quality;
pub mod replay;
