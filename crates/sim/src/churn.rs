//! Churn replay: the leased pipeline under browser abandonment.
//!
//! Browsers are the worst workers imaginable: a client may fetch a
//! personalization job and navigate away before posting its `KnnUpdate`.
//! This harness drives a [`ScheduledServer`] over a logical clock with a
//! per-device abandonment model ([`Device::abandon_probability`]) and
//! measures what the job-lifecycle scheduler guarantees:
//!
//! * convergence — `average_view_similarity` under churn lands within a
//!   hair of the zero-churn run (every abandoned job is eventually
//!   recomputed by another browser or by the server-side fallback), and
//! * bounded staleness — no user stays overdue past the configured
//!   deadline budget once the pipeline is warm.

use crate::device::Device;
use hyrec_client::Widget;
use hyrec_core::{ItemId, UserId, Vote};
use hyrec_sched::{SchedConfig, Tick};
use hyrec_server::{HyRecConfig, HyRecServer, ScheduledServer};
use hyrec_wire::KnnUpdate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of a churn replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Users in the population (taste groups of `users / groups`).
    pub users: u32,
    /// Number of taste groups.
    pub groups: u32,
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Browser rounds to simulate (one tick per round).
    pub rounds: u32,
    /// Population-mean abandonment probability; each simulated browser
    /// scales it by its device's churn factor.
    pub abandon: f64,
    /// Lease timeout in ticks.
    pub lease_timeout: Tick,
    /// Re-issues before server-side fallback.
    pub max_reissues: u32,
    /// Recomputation deadline budget in ticks: after warmup, no user may
    /// stay overdue (unserviced votes) longer than this.
    pub deadline_budget: Tick,
    /// RNG seed (sampler and abandonment coin flips).
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            users: 30,
            groups: 3,
            k: 3,
            rounds: 30,
            abandon: 0.3,
            lease_timeout: 2,
            max_reissues: 2,
            deadline_budget: 12,
            seed: 42,
        }
    }
}

/// What a churn replay observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnReport {
    /// Final `average_view_similarity` of the KNN table.
    pub final_view_similarity: f64,
    /// Jobs fetched and never completed by their browser.
    pub abandoned: u64,
    /// Completions validated and applied.
    pub completed: u64,
    /// Leases that expired (scheduler counter).
    pub expired: u64,
    /// Expired jobs re-issued to other browsers.
    pub reissued: u64,
    /// Users recomputed server-side after the ladder was exhausted.
    pub fallbacks: u64,
    /// Completions rejected by validation.
    pub rejected: u64,
    /// Round ticks (after the warmup budget) at which some user exceeded
    /// the deadline budget — the acceptance criterion wants **zero**.
    pub deadline_breaches: u64,
}

/// Replays `config.rounds` browser rounds against a leased pipeline.
///
/// Every round, every user's browser asks `/online/`-style for a job
/// (served as the scheduler's pick), abandons it with its device's
/// probability, completes it otherwise; then the sweeper runs. Votes
/// trickle in throughout, so the staleness queue always has work.
#[must_use]
pub fn replay_churn(config: &ChurnConfig) -> ChurnReport {
    let server = Arc::new(HyRecServer::with_config(
        HyRecConfig::builder()
            .k(config.k)
            .r(5)
            .anonymize_users(false)
            .seed(config.seed)
            .build(),
    ));
    let scheduled = ScheduledServer::new(
        server,
        SchedConfig {
            lease_timeout: config.lease_timeout,
            max_reissues: config.max_reissues,
            ..SchedConfig::default()
        },
    );
    let widget = Widget::new();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);

    // Seed the taste groups through the scheduled ingestion path so the
    // staleness queue starts full, exactly like a live system.
    let group_span = (config.users / config.groups).max(1);
    for u in 0..config.users {
        let base = (u % config.groups) * 1_000;
        for i in 0..8u32 {
            scheduled.record(UserId(u), ItemId(base + i), Vote::Like, 0);
        }
    }

    let device_of = |u: u32| {
        if u.is_multiple_of(2) {
            Device::LAPTOP
        } else {
            Device::SMARTPHONE
        }
    };

    let mut abandoned = 0u64;
    let mut deadline_breaches = 0u64;
    for round in 0..config.rounds {
        let now = Tick::from(round) + 1;
        // Ongoing votes keep the staleness queue meaningful; they stop one
        // deadline budget before the horizon so the tail of the replay
        // measures re-convergence on settled profiles (both the churned
        // and the zero-churn run must land on the same steady state).
        let voting_open = Tick::from(round) + config.deadline_budget < Tick::from(config.rounds);
        for u in 0..config.users {
            if voting_open && round > 0 && (u + round).is_multiple_of(group_span) {
                let base = (u % config.groups) * 1_000;
                scheduled.record(UserId(u), ItemId(base + 8 + round), Vote::Like, now);
            }
            let job = scheduled
                .issue_jobs(&[UserId(u)], now)
                .pop()
                .expect("one job per request");
            let p = device_of(u).abandon_probability(config.abandon);
            if rng.gen_bool(p) {
                abandoned += 1; // navigated away mid-computation
                continue;
            }
            let update: KnnUpdate = widget.run_job(&job).update;
            let _ = scheduled.complete_updates(&[update], now);
        }
        let _ = scheduled.sweep_and_recover(now);

        // Bounded-staleness probe: once the pipeline has been running
        // longer than the budget, nobody may be overdue.
        if Tick::from(round) > config.deadline_budget
            && !scheduled
                .scheduler()
                .overdue_users(now, config.deadline_budget)
                .is_empty()
        {
            deadline_breaches += 1;
        }
    }
    // Final drain: let the ladder finish for jobs abandoned in the last
    // rounds (same cadence, no new work).
    let horizon = Tick::from(config.rounds);
    for extra in 1..=(config.lease_timeout + 1) * Tick::from(config.max_reissues + 2) {
        let _ = scheduled.sweep_and_recover(horizon + extra);
    }

    let stats = scheduled.scheduler().stats();
    ChurnReport {
        final_view_similarity: scheduled.server().average_view_similarity(),
        abandoned,
        completed: stats.completed(),
        expired: stats.expired(),
        reissued: stats.reissued(),
        fallbacks: stats.fallbacks(),
        rejected: stats.rejected_total(),
        deadline_breaches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance run: 30% simulated abandonment. Every stale user is
    /// recomputed within the deadline budget (via re-issue or server-side
    /// fallback), and the converged similarity matches the zero-churn run
    /// within 1%.
    #[test]
    fn thirty_percent_abandonment_converges_within_one_percent_of_zero_churn() {
        let base = ChurnConfig::default();
        let zero = replay_churn(&ChurnConfig {
            abandon: 0.0,
            ..base
        });
        let churned = replay_churn(&ChurnConfig {
            abandon: 0.3,
            ..base
        });

        // The zero-churn run is the healthy baseline: converged to the
        // steady state of the (deliberately drifting) profiles, with no
        // recovery machinery engaged.
        assert!(zero.final_view_similarity > 0.7, "{zero:?}");
        assert_eq!(zero.abandoned, 0);
        assert_eq!(zero.expired, 0);
        assert_eq!(zero.deadline_breaches, 0);

        // Churn really happened…
        assert!(churned.abandoned > 0, "{churned:?}");
        assert!(churned.expired > 0, "{churned:?}");
        assert!(
            churned.reissued + churned.fallbacks > 0,
            "recovery never engaged: {churned:?}"
        );
        // …and the scheduler erased its quality cost: within 1% of the
        // zero-churn similarity, and nobody ever blew the deadline budget.
        let gap = (churned.final_view_similarity - zero.final_view_similarity).abs()
            / zero.final_view_similarity;
        assert!(
            gap < 0.01,
            "churned {:.4} vs zero {:.4} (gap {:.2}%)",
            churned.final_view_similarity,
            zero.final_view_similarity,
            gap * 100.0
        );
        assert_eq!(
            churned.deadline_breaches, 0,
            "users exceeded the deadline budget: {churned:?}"
        );
    }

    #[test]
    fn heavier_churn_still_recovers_through_fallback() {
        let report = replay_churn(&ChurnConfig {
            abandon: 0.6,
            rounds: 40,
            ..ChurnConfig::default()
        });
        assert!(report.abandoned > 0);
        assert!(
            report.fallbacks > 0,
            "60% churn must exhaust ladders sometimes: {report:?}"
        );
        assert!(
            report.final_view_similarity > 0.65,
            "heavy churn broke convergence: {report:?}"
        );
        assert_eq!(report.deadline_breaches, 0, "{report:?}");
    }

    #[test]
    fn devices_split_the_abandonment_burden_unevenly() {
        // Pure smartphone population vs pure laptop population at the same
        // base rate: the phone fleet abandons measurably more.
        let mut laptop_only = 0u64;
        let mut phone_only = 0u64;
        for seed in 0..3u64 {
            let base = ChurnConfig {
                rounds: 15,
                seed,
                ..ChurnConfig::default()
            };
            // The device model is keyed by uid parity, so an all-even or
            // all-odd uid range isolates one device class. Simulate by
            // scaling the base rate with the device's factor directly.
            let laptop = replay_churn(&ChurnConfig {
                abandon: Device::LAPTOP.abandon_probability(0.3),
                ..base
            });
            let phone = replay_churn(&ChurnConfig {
                abandon: Device::SMARTPHONE.abandon_probability(0.3),
                ..base
            });
            laptop_only += laptop.abandoned;
            phone_only += phone.abandoned;
        }
        assert!(
            phone_only > laptop_only,
            "phones must churn more: {phone_only} vs {laptop_only}"
        );
    }
}
