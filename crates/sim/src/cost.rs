//! The EC2 cost model behind Table 3 ("Economic advantage of HyRec").
//!
//! The paper prices the centralized architecture as a reserved front-end
//! instance (~$681/year in 2014) plus a back-end that runs the offline KNN
//! selection: on-demand compute-optimized instances at $0.6/hour, or — when
//! recomputation is frequent enough — a reserved back-end instance, which
//! caps the back-end cost and makes it independent of the period (the ML3
//! rows of Table 3 all show 49.2% for this reason). HyRec only pays for the
//! front-end.

use std::time::Duration;

/// EC2 price book (2014 figures from the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ec2Pricing {
    /// Reserved medium-utilization front-end, $/year.
    pub front_end_reserved_yearly: f64,
    /// On-demand compute-optimized back-end, $/hour.
    pub backend_on_demand_hourly: f64,
    /// Reserved compute-optimized back-end, $/year (the cap).
    pub backend_reserved_yearly: f64,
}

impl Default for Ec2Pricing {
    fn default() -> Self {
        Self {
            front_end_reserved_yearly: 681.0,
            backend_on_demand_hourly: 0.6,
            // Calibrated so the reserved-cap regime reproduces the paper's
            // 49.2% ceiling: backend ≈ front-end × 0.968.
            backend_reserved_yearly: 659.0,
        }
    }
}

/// One row of the Table 3 computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Yearly cost of the centralized front-end (identical for HyRec).
    pub front_end_yearly: f64,
    /// Yearly cost of the offline back-end (on-demand or reserved,
    /// whichever is cheaper).
    pub backend_yearly: f64,
    /// Whether the reserved back-end was the cheaper choice.
    pub backend_reserved: bool,
    /// Number of KNN recomputations per year at the given period.
    pub runs_per_year: f64,
    /// Fraction of the centralized cost HyRec saves
    /// (`backend / (front_end + backend)`).
    pub savings: f64,
}

/// Computes the Table 3 cost reduction for one dataset/period pair.
///
/// `knn_runtime` is the measured wall-clock of one offline KNN pass
/// (Figure 7's y-axis); `period` is how often the back-end re-runs it.
#[must_use]
pub fn cost_reduction(
    pricing: &Ec2Pricing,
    knn_runtime: Duration,
    period: Duration,
) -> CostBreakdown {
    let year = 365.25 * 86_400.0;
    let runs_per_year = year / period.as_secs_f64().max(1.0);
    let hours_per_run = knn_runtime.as_secs_f64() / 3600.0;
    let on_demand_yearly = runs_per_year * hours_per_run * pricing.backend_on_demand_hourly;
    // A back-end busy more than a year's worth of compute needs more than
    // one reserved instance.
    let reserved_instances = (runs_per_year * hours_per_run / (365.25 * 24.0))
        .ceil()
        .max(1.0);
    let reserved_yearly = reserved_instances * pricing.backend_reserved_yearly;

    let (backend_yearly, backend_reserved) = if on_demand_yearly <= reserved_yearly {
        (on_demand_yearly, false)
    } else {
        (reserved_yearly, true)
    };
    let centralized = pricing.front_end_reserved_yearly + backend_yearly;
    CostBreakdown {
        front_end_yearly: pricing.front_end_reserved_yearly,
        backend_yearly,
        backend_reserved,
        runs_per_year,
        savings: backend_yearly / centralized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_recompute_frequency() {
        let pricing = Ec2Pricing::default();
        let runtime = Duration::from_secs(1800); // 30 min per pass
        let s48 = cost_reduction(&pricing, runtime, Duration::from_secs(48 * 3600));
        let s24 = cost_reduction(&pricing, runtime, Duration::from_secs(24 * 3600));
        let s12 = cost_reduction(&pricing, runtime, Duration::from_secs(12 * 3600));
        assert!(s24.savings > s48.savings);
        assert!(s12.savings > s24.savings);
    }

    #[test]
    fn savings_grow_with_runtime() {
        let pricing = Ec2Pricing::default();
        let period = Duration::from_secs(24 * 3600);
        let small = cost_reduction(&pricing, Duration::from_secs(300), period);
        let large = cost_reduction(&pricing, Duration::from_secs(7200), period);
        assert!(large.savings > small.savings);
    }

    #[test]
    fn reserved_cap_reproduces_paper_ceiling() {
        // Heavy workload recomputed often: on-demand would exceed the
        // reserved price, so the cap engages and the savings hit ~49.2%
        // regardless of the period (the ML3 rows of Table 3).
        let pricing = Ec2Pricing::default();
        let runtime = Duration::from_secs(6 * 3600);
        let a = cost_reduction(&pricing, runtime, Duration::from_secs(12 * 3600));
        let b = cost_reduction(&pricing, runtime, Duration::from_secs(24 * 3600));
        assert!(a.backend_reserved);
        assert!(b.backend_reserved);
        assert!(
            (a.savings - b.savings).abs() < 1e-9,
            "cap makes cost period-independent"
        );
        assert!(
            (a.savings - 0.492).abs() < 0.01,
            "expected ~49.2%, got {:.3}",
            a.savings
        );
    }

    #[test]
    fn cheap_workloads_save_little() {
        // Digg-like: tiny profiles, fast KNN pass.
        let pricing = Ec2Pricing::default();
        let b = cost_reduction(
            &pricing,
            Duration::from_secs(120),
            Duration::from_secs(12 * 3600),
        );
        assert!(b.savings < 0.05, "got {:.3}", b.savings);
        assert!(!b.backend_reserved);
    }

    #[test]
    fn breakdown_is_consistent() {
        let pricing = Ec2Pricing::default();
        let b = cost_reduction(
            &pricing,
            Duration::from_secs(3600),
            Duration::from_secs(24 * 3600),
        );
        assert!((b.runs_per_year - 365.25).abs() < 0.5);
        let expected = b.backend_yearly / (b.front_end_yearly + b.backend_yearly);
        assert!((b.savings - expected).abs() < 1e-12);
    }

    #[test]
    fn extreme_throughput_needs_multiple_reserved_instances() {
        let pricing = Ec2Pricing::default();
        // A 30-hour pass every 12 hours cannot fit one machine.
        let b = cost_reduction(
            &pricing,
            Duration::from_secs(30 * 3600),
            Duration::from_secs(12 * 3600),
        );
        assert!(b.backend_reserved);
        assert!(b.backend_yearly > pricing.backend_reserved_yearly * 1.5);
    }
}
