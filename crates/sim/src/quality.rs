//! Recommendation quality — the train/test protocol of Section 5.1 and
//! Figure 6.
//!
//! "We split each dataset into a training and a test set according to time.
//! … For each positive rating (liked item) r in the 20%, the associated
//! user requests a set of n recommendations ℜ. The recommendation-quality
//! metric counts the number of positive ratings for which the ℜ set
//! contains the corresponding item."
//!
//! The request happens *before* the rating is recorded (you recommend, then
//! observe whether the user indeed liked the item), and all four
//! architectures continue learning through the test phase exactly as they
//! would in production.

use hyrec_client::Widget;
use hyrec_core::{KnnTable, ProfileTable};
use hyrec_core::{Profile, UserId, Vote};
use hyrec_datasets::Trace;
use hyrec_server::offline::{ExhaustiveBackend, OfflineBackend};
use hyrec_server::{CRecFrontEnd, HyRecConfig, HyRecServer, OnlineIdeal};
use std::collections::HashMap;

/// Hit counts per list length: `hits[n-1]` = number of positive test
/// ratings whose item appeared in the first `n` recommendations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityCurve {
    /// `hits[i]` is the count at list length `i + 1`.
    pub hits: Vec<u64>,
    /// Number of positive test ratings evaluated.
    pub positives: u64,
}

impl QualityCurve {
    fn new(max_n: usize) -> Self {
        Self {
            hits: vec![0; max_n],
            positives: 0,
        }
    }

    fn credit(&mut self, rank: Option<usize>) {
        self.positives += 1;
        if let Some(rank) = rank {
            for n in rank..self.hits.len() {
                self.hits[n] += 1;
            }
        }
    }

    /// Recall@n (fraction of positives hit at list length `n`).
    #[must_use]
    pub fn recall_at(&self, n: usize) -> f64 {
        if self.positives == 0 || n == 0 || n > self.hits.len() {
            return 0.0;
        }
        self.hits[n - 1] as f64 / self.positives as f64
    }
}

fn rank_of(recs: &[hyrec_core::Recommendation], item: hyrec_core::ItemId) -> Option<usize> {
    recs.iter().position(|r| r.item == item)
}

/// Figure 6, HyRec series: full loop through training, then request-check-
/// record through the test set.
#[must_use]
pub fn quality_hyrec(
    train: &Trace,
    test: &Trace,
    k: usize,
    max_n: usize,
    seed: u64,
) -> QualityCurve {
    let server = HyRecServer::with_config(HyRecConfig::builder().k(k).r(max_n).seed(seed).build());
    let widget = Widget::new();
    let run = |user: UserId| {
        let job = server.build_job(user);
        let out = widget.run_job(&job);
        server.apply_update(&out.update);
        out.recommendations
    };

    for event in train.iter() {
        server.record(event.user, event.item, event.vote);
        let _ = run(event.user);
    }

    let mut curve = QualityCurve::new(max_n);
    for event in test.iter() {
        if event.vote == Vote::Like {
            let recs = run(event.user);
            curve.credit(rank_of(&recs, event.item));
        }
        server.record(event.user, event.item, event.vote);
        let _ = run(event.user);
    }
    curve
}

/// Figure 6, Offline-Ideal series with recompute period `period` seconds:
/// profiles accumulate continuously, the KNN table refreshes periodically,
/// and the front-end serves recommendations from the frozen table.
#[must_use]
pub fn quality_offline(
    train: &Trace,
    test: &Trace,
    k: usize,
    max_n: usize,
    period: u64,
) -> QualityCurve {
    let backend = ExhaustiveBackend::default();
    let profiles = ProfileTable::new();
    let knn = KnnTable::new();
    let mut next_recompute = period;

    let advance = |now: u64, next_recompute: &mut u64| {
        while now >= *next_recompute {
            let table = backend.compute(&profiles.snapshot(), k);
            for (user, hood) in table {
                knn.update(user, hood);
            }
            *next_recompute += period;
        }
    };

    for event in train.iter() {
        advance(event.time.0, &mut next_recompute);
        profiles.record(event.user, event.item, event.vote);
    }

    let mut curve = QualityCurve::new(max_n);
    for event in test.iter() {
        advance(event.time.0, &mut next_recompute);
        if event.vote == Vote::Like {
            let front = CRecFrontEnd::new(&profiles, &knn);
            let recs = front.recommend(event.user, max_n);
            curve.credit(rank_of(&recs, event.item));
        }
        profiles.record(event.user, event.item, event.vote);
    }
    curve
}

/// Figure 6, Online-Ideal series: exact KNN before every recommendation —
/// the quality upper bound (and response-time disaster of Figure 8).
#[must_use]
pub fn quality_online_ideal(train: &Trace, test: &Trace, k: usize, max_n: usize) -> QualityCurve {
    let profiles = ProfileTable::new();
    for event in train.iter() {
        profiles.record(event.user, event.item, event.vote);
    }
    let mut curve = QualityCurve::new(max_n);
    for event in test.iter() {
        if event.vote == Vote::Like {
            let ideal = OnlineIdeal::new(&profiles, hyrec_core::Cosine, k);
            let recs = ideal.recommend(event.user, max_n);
            curve.credit(rank_of(&recs, event.item));
        }
        profiles.record(event.user, event.item, event.vote);
    }
    curve
}

/// Popularity baseline: always recommend the globally most-liked unseen
/// items (no personalization) — a sanity floor for Figure 6.
#[must_use]
pub fn quality_global_popularity(train: &Trace, test: &Trace, max_n: usize) -> QualityCurve {
    let mut popularity: HashMap<hyrec_core::ItemId, u32> = HashMap::new();
    let mut profiles: HashMap<UserId, Profile> = HashMap::new();
    for event in train.iter() {
        if event.vote == Vote::Like {
            *popularity.entry(event.item).or_insert(0) += 1;
        }
        profiles
            .entry(event.user)
            .or_default()
            .record(event.item, event.vote);
    }

    let mut curve = QualityCurve::new(max_n);
    for event in test.iter() {
        if event.vote == Vote::Like {
            let profile = profiles.get(&event.user).cloned().unwrap_or_default();
            let recs = hyrec_core::recommend::rank_with(
                popularity
                    .iter()
                    .filter(|(item, _)| !profile.contains(**item))
                    .map(|(item, count)| (*item, *count))
                    .collect(),
                max_n,
                |item, count| f64::from(count) - f64::from(item.raw()) * 1e-12,
            );
            curve.credit(rank_of(&recs, event.item));
        }
        if event.vote == Vote::Like {
            *popularity.entry(event.item).or_insert(0) += 1;
        }
        profiles
            .entry(event.user)
            .or_default()
            .record(event.item, event.vote);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_datasets::{DatasetSpec, TraceGenerator};

    fn split() -> (Trace, Trace) {
        let trace = TraceGenerator::new(DatasetSpec::ML1.scaled(0.04), 9)
            .generate()
            .binarize();
        trace.split_chronological(0.8)
    }

    #[test]
    fn curves_are_monotone_in_n() {
        let (train, test) = split();
        for curve in [
            quality_hyrec(&train, &test, 5, 10, 1),
            quality_online_ideal(&train, &test, 5, 10),
            quality_global_popularity(&train, &test, 10),
        ] {
            assert!(curve.positives > 0);
            assert!(curve.hits.windows(2).all(|w| w[0] <= w[1]), "{curve:?}");
            assert!(*curve.hits.last().unwrap() <= curve.positives);
        }
    }

    #[test]
    fn online_ideal_dominates_stale_offline() {
        let (train, test) = split();
        let horizon = train.horizon().0.max(1);
        let ideal = quality_online_ideal(&train, &test, 5, 10);
        // Recompute only halfway through training: stale through the test.
        let offline = quality_offline(&train, &test, 5, 10, horizon / 2);
        assert!(
            ideal.hits[9] >= offline.hits[9],
            "ideal {:?} vs offline {:?}",
            ideal.hits,
            offline.hits
        );
    }

    #[test]
    fn hyrec_beats_never_refreshed_offline() {
        let (train, test) = split();
        let horizon = train.horizon().0.max(1);
        let hyrec = quality_hyrec(&train, &test, 5, 10, 2);
        // A period beyond the trace: the KNN table never materializes, the
        // cold-start pathology Section 5.3 describes.
        let offline = quality_offline(&train, &test, 5, 10, horizon * 100);
        assert_eq!(offline.hits[9], 0, "no recompute ever ran");
        assert!(
            hyrec.hits[9] > 0,
            "hyrec should score despite cold-start: {:?}",
            hyrec.hits
        );
    }

    #[test]
    fn recall_is_normalized() {
        let (train, test) = split();
        let curve = quality_global_popularity(&train, &test, 10);
        let r = curve.recall_at(10);
        assert!((0.0..=1.0).contains(&r));
        assert_eq!(curve.recall_at(0), 0.0);
        assert_eq!(curve.recall_at(99), 0.0);
    }

    #[test]
    fn credit_ranks_correctly() {
        let mut curve = QualityCurve::new(3);
        curve.credit(Some(0)); // hit at n>=1
        curve.credit(Some(2)); // hit at n>=3
        curve.credit(None); // miss
        assert_eq!(curve.hits, vec![1, 1, 2]);
        assert_eq!(curve.positives, 3);
    }
}
