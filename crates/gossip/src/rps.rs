//! Random peer sampling (Jelasity et al., "Gossip-based peer sampling").
//!
//! Push-pull shuffle: the initiator picks its *oldest* peer, both sides send
//! a random half of their view plus a fresh self-descriptor, and both merge
//! keeping the youngest descriptors. The emergent overlay approximates a
//! uniform random graph — the substrate the clustering layer draws its
//! random candidates from (and the P2P analogue of HyRec's "k random
//! users" leg).

use crate::view::{PartialView, ViewEntry};
use hyrec_core::UserId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Number of descriptors exchanged per shuffle (half a typical view).
pub fn shuffle_len(view_capacity: usize) -> usize {
    (view_capacity / 2).max(1)
}

/// Draws the descriptors one side sends in a shuffle: a random half of the
/// view plus a fresh self-descriptor.
pub fn shuffle_payload(
    me: UserId,
    view: &PartialView,
    capacity: usize,
    rng: &mut StdRng,
) -> Vec<ViewEntry> {
    let mut entries: Vec<ViewEntry> = view.entries().to_vec();
    entries.shuffle(rng);
    entries.truncate(shuffle_len(capacity));
    entries.push(ViewEntry { peer: me, age: 0 });
    entries
}

/// Applies one completed push-pull shuffle to both endpoints.
///
/// `a_view`/`b_view` are merged with the payload received from the other
/// side; both views age afterwards (one gossip cycle elapsed for these two
/// nodes' entries).
pub fn apply_shuffle(
    a: UserId,
    a_view: &mut PartialView,
    b: UserId,
    b_view: &mut PartialView,
    capacity: usize,
    rng: &mut StdRng,
) {
    let from_a = shuffle_payload(a, a_view, capacity, rng);
    let from_b = shuffle_payload(b, b_view, capacity, rng);
    a_view.merge(a, from_b);
    b_view.merge(b, from_a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_payload_contains_self_fresh() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut view = PartialView::new(6);
        view.merge(
            UserId(0),
            (1..=6).map(|p| ViewEntry {
                peer: UserId(p),
                age: p,
            }),
        );
        let payload = shuffle_payload(UserId(0), &view, 6, &mut rng);
        let me = payload.iter().find(|e| e.peer == UserId(0)).unwrap();
        assert_eq!(me.age, 0);
        assert_eq!(payload.len(), shuffle_len(6) + 1);
    }

    #[test]
    fn apply_shuffle_cross_pollinates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a_view = PartialView::new(4);
        let mut b_view = PartialView::new(4);
        a_view.merge(
            UserId(1),
            [ViewEntry {
                peer: UserId(10),
                age: 0,
            }],
        );
        b_view.merge(
            UserId(2),
            [ViewEntry {
                peer: UserId(20),
                age: 0,
            }],
        );
        apply_shuffle(UserId(1), &mut a_view, UserId(2), &mut b_view, 4, &mut rng);
        // Each side now knows the other.
        assert!(a_view.contains(UserId(2)));
        assert!(b_view.contains(UserId(1)));
    }

    #[test]
    fn repeated_shuffles_spread_knowledge() {
        // A line of nodes where node i initially knows only i+1 becomes
        // well-mixed after enough pairwise shuffles.
        let n = 20u32;
        let capacity = 6;
        let mut rng = StdRng::seed_from_u64(3);
        let mut views: Vec<PartialView> = (0..n)
            .map(|i| {
                let mut v = PartialView::new(capacity);
                v.merge(
                    UserId(i),
                    [ViewEntry {
                        peer: UserId((i + 1) % n),
                        age: 0,
                    }],
                );
                v
            })
            .collect();

        for _ in 0..50 {
            for i in 0..n as usize {
                for v in views.iter_mut() {
                    v.age_all();
                }
                let partner = match views[i].oldest() {
                    Some(e) => e.peer.0 as usize,
                    None => continue,
                };
                if partner == i {
                    continue;
                }
                let (lo, hi) = (i.min(partner), i.max(partner));
                let (left, right) = views.split_at_mut(hi);
                let (a_view, b_view) = (&mut left[lo], &mut right[0]);
                apply_shuffle(
                    UserId(lo as u32),
                    a_view,
                    UserId(hi as u32),
                    b_view,
                    capacity,
                    &mut rng,
                );
            }
        }
        // Every view is full and references a diverse set of peers.
        let mut seen = std::collections::HashSet::new();
        for v in &views {
            assert_eq!(v.len(), capacity);
            for e in v.entries() {
                seen.insert(e.peer);
            }
        }
        assert!(
            seen.len() as u32 >= n - 2,
            "knowledge failed to spread: {}",
            seen.len()
        );
    }
}
