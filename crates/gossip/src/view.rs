//! Partial views: the bounded peer lists gossip protocols maintain.

use hyrec_core::UserId;

/// A peer descriptor in a random-peer-sampling view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The peer.
    pub peer: UserId,
    /// Gossip age in cycles (older descriptors are staler).
    pub age: u32,
}

/// A bounded partial view with age-based replacement (Jelasity-style).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialView {
    entries: Vec<ViewEntry>,
    capacity: usize,
}

impl PartialView {
    /// Creates an empty view bounded to `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Current entries, unordered.
    #[must_use]
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Number of peers in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the view holds no peer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `peer` is present.
    #[must_use]
    pub fn contains(&self, peer: UserId) -> bool {
        self.entries.iter().any(|e| e.peer == peer)
    }

    /// Ages every descriptor by one cycle.
    pub fn age_all(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The oldest peer (the exchange partner choice of the RPS protocol).
    #[must_use]
    pub fn oldest(&self) -> Option<ViewEntry> {
        self.entries.iter().copied().max_by_key(|e| e.age)
    }

    /// Removes and returns the entry for `peer`, if present.
    pub fn remove(&mut self, peer: UserId) -> Option<ViewEntry> {
        let idx = self.entries.iter().position(|e| e.peer == peer)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Merges descriptors: keeps the youngest copy of each peer, never
    /// stores `me`, then truncates to capacity by dropping the oldest.
    pub fn merge(&mut self, me: UserId, incoming: impl IntoIterator<Item = ViewEntry>) {
        for entry in incoming {
            if entry.peer == me {
                continue;
            }
            match self.entries.iter_mut().find(|e| e.peer == entry.peer) {
                Some(existing) => existing.age = existing.age.min(entry.age),
                None => self.entries.push(entry),
            }
        }
        if self.entries.len() > self.capacity {
            self.entries.sort_by_key(|e| e.age); // youngest first
            self.entries.truncate(self.capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(peer: u32, age: u32) -> ViewEntry {
        ViewEntry {
            peer: UserId(peer),
            age,
        }
    }

    #[test]
    fn merge_keeps_youngest_duplicate() {
        let mut view = PartialView::new(4);
        view.merge(UserId(0), [entry(1, 5), entry(1, 2), entry(2, 0)]);
        assert_eq!(view.len(), 2);
        let e1 = view.entries().iter().find(|e| e.peer == UserId(1)).unwrap();
        assert_eq!(e1.age, 2);
    }

    #[test]
    fn merge_never_stores_self() {
        let mut view = PartialView::new(4);
        view.merge(UserId(7), [entry(7, 0), entry(1, 0)]);
        assert!(!view.contains(UserId(7)));
        assert!(view.contains(UserId(1)));
    }

    #[test]
    fn merge_truncates_oldest_beyond_capacity() {
        let mut view = PartialView::new(2);
        view.merge(UserId(0), [entry(1, 9), entry(2, 1), entry(3, 5)]);
        assert_eq!(view.len(), 2);
        assert!(view.contains(UserId(2)));
        assert!(view.contains(UserId(3)));
        assert!(!view.contains(UserId(1)), "oldest must be dropped");
    }

    #[test]
    fn oldest_and_aging() {
        let mut view = PartialView::new(4);
        view.merge(UserId(0), [entry(1, 0), entry(2, 3)]);
        assert_eq!(view.oldest().unwrap().peer, UserId(2));
        view.age_all();
        assert_eq!(view.oldest().unwrap().age, 4);
    }

    #[test]
    fn remove_returns_entry() {
        let mut view = PartialView::new(4);
        view.merge(UserId(0), [entry(1, 0)]);
        assert_eq!(view.remove(UserId(1)).unwrap().peer, UserId(1));
        assert!(view.remove(UserId(1)).is_none());
        assert!(view.is_empty());
    }
}
