//! # hyrec-gossip
//!
//! The **fully decentralized baseline** of Section 2.3 / 5.6: every user
//! machine is a peer in a gossip overlay and computes its own KNN and
//! recommendations with no server at all.
//!
//! Two layered protocols, as in Gossple/WhatsUp (the systems the paper
//! compares against):
//!
//! * [`rps`] — *random peer sampling* (Jelasity et al.): each node keeps a
//!   small partial view refreshed by periodic push-pull shuffles, yielding a
//!   uniform stream of random peers.
//! * [`cluster`] — *similarity clustering* (Voulgaris & van Steen's
//!   Vicinity): each node keeps the `k` most similar peers met so far,
//!   gossiping candidate descriptors (profile included) with neighbours.
//!
//! The crate exists to reproduce two paper results:
//!
//! 1. Convergence "in a few cycles (e.g. 10 to 20 in a 100,000 node
//!    system)" — checked by the tests and the `p2p_vs_hybrid` example.
//! 2. The **bandwidth gap**: "a single user machine transmits around 24 MB
//!    with the P2P approach, and only 8 kB with HyRec" (Digg workload) —
//!    [`network::GossipNetwork`] meters every byte a node sends.
//!
//! ```
//! use hyrec_core::{Profile, UserId};
//! use hyrec_gossip::{GossipConfig, GossipNetwork};
//!
//! let profiles: Vec<(UserId, Profile)> = (0..40u32)
//!     .map(|u| (UserId(u), Profile::from_liked([u % 4, 100 + u % 4, 200 + u % 4])))
//!     .collect();
//! let config = GossipConfig { k: 5, ..GossipConfig::default() };
//! let mut network = GossipNetwork::new(profiles, config);
//! network.run(15);
//! assert!(network.average_view_similarity() > 0.9);
//! assert!(network.total_bytes_sent() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod network;
pub mod rps;
pub mod view;

pub use network::{BandwidthReport, GossipConfig, GossipNetwork};
