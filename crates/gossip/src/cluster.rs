//! The clustering layer (Vicinity / Gossple-style).
//!
//! Each node keeps the `k` peers whose profiles are most similar to its own,
//! *with their profiles* — in the decentralized architecture "each
//! \[user\] maintains her own profile, her local KNN, and profile tables"
//! (Section 2.3). Per cycle a node exchanges its cluster view with one
//! neighbour and re-selects the best `k` among everything it has seen,
//! mirroring Algorithm 1 run peer-to-peer.

use hyrec_core::{Cosine, Profile, Similarity, UserId};

/// A clustering descriptor: peer, profile copy, and cached similarity to
/// the view's owner.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEntry {
    /// The peer this descriptor describes.
    pub peer: UserId,
    /// Snapshot of the peer's profile (travels in gossip messages).
    pub profile: Profile,
    /// Cached similarity to the view owner's profile.
    pub similarity: f64,
    /// Gossip age: 0 when the owner emitted the descriptor, +1 per relay
    /// hop and per cycle held. Fresher (lower-age) snapshots win merges —
    /// without this, stale third-party relays would overwrite fresh
    /// profiles forever.
    pub age: u32,
}

/// The bounded most-similar-peers view of one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterView {
    entries: Vec<ClusterEntry>,
    capacity: usize,
}

impl ClusterView {
    /// Creates an empty view keeping at most `capacity` peers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Current entries, most similar first.
    #[must_use]
    pub fn entries(&self) -> &[ClusterEntry] {
        &self.entries
    }

    /// Number of peers held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean cached similarity — the node's local view similarity.
    #[must_use]
    pub fn view_similarity(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.similarity).sum::<f64>() / self.entries.len() as f64
    }

    /// Merges candidate descriptors: recomputes similarity against
    /// `my_profile`, deduplicates by peer (keeping the *freshest* profile
    /// by descriptor age), and retains the top `capacity` most similar.
    pub fn merge<'a>(
        &mut self,
        me: UserId,
        my_profile: &Profile,
        candidates: impl IntoIterator<Item = (UserId, &'a Profile, u32)>,
    ) {
        for (peer, profile, age) in candidates {
            if peer == me {
                continue;
            }
            match self.entries.iter_mut().find(|e| e.peer == peer) {
                Some(existing) => {
                    if age <= existing.age {
                        existing.profile = profile.clone();
                        existing.similarity = Cosine.score(my_profile, profile);
                        existing.age = age;
                    }
                }
                None => self.entries.push(ClusterEntry {
                    peer,
                    profile: profile.clone(),
                    similarity: Cosine.score(my_profile, profile),
                    age,
                }),
            }
        }
        self.entries.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.entries.truncate(self.capacity);
    }

    /// Ages every stored descriptor by one cycle, so a newer snapshot from
    /// the owner (age 0) or a short relay chain eventually supersedes it.
    pub fn age_all(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Re-scores every entry after the owner's profile changed.
    pub fn rescore(&mut self, my_profile: &Profile) {
        for e in &mut self.entries {
            e.similarity = Cosine.score(my_profile, &e.profile);
        }
        self.entries.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(items: &[u32]) -> Profile {
        Profile::from_liked(items.to_vec())
    }

    #[test]
    fn merge_keeps_most_similar() {
        let me = profile(&[1, 2, 3, 4]);
        let mut view = ClusterView::new(2);
        let close = profile(&[1, 2, 3]);
        let mid = profile(&[1, 9]);
        let far = profile(&[100]);
        view.merge(
            UserId(0),
            &me,
            [
                (UserId(1), &close, 0),
                (UserId(2), &far, 0),
                (UserId(3), &mid, 0),
            ],
        );
        assert_eq!(view.len(), 2);
        assert_eq!(view.entries()[0].peer, UserId(1));
        assert_eq!(view.entries()[1].peer, UserId(3));
    }

    #[test]
    fn merge_excludes_self_and_updates_duplicates() {
        let me = profile(&[1, 2]);
        let mut view = ClusterView::new(3);
        let old = profile(&[9]);
        view.merge(UserId(0), &me, [(UserId(1), &old, 0), (UserId(0), &me, 0)]);
        assert!(!view.entries().iter().any(|e| e.peer == UserId(0)));
        assert_eq!(view.entries()[0].similarity, 0.0);

        let fresh = profile(&[1, 2]);
        view.merge(UserId(0), &me, [(UserId(1), &fresh, 0)]);
        assert_eq!(view.len(), 1);
        assert!((view.entries()[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stale_snapshots_never_overwrite_fresh_ones() {
        let me = profile(&[1, 2]);
        let mut view = ClusterView::new(3);
        let fresh = profile(&[1, 2]);
        view.merge(UserId(0), &me, [(UserId(1), &fresh, 0)]);
        // A relayed, older snapshot (higher age) must be rejected.
        let stale = profile(&[9]);
        view.merge(UserId(0), &me, [(UserId(1), &stale, 3)]);
        assert!((view.entries()[0].similarity - 1.0).abs() < 1e-12);
        // After aging, a newer owner-emitted descriptor (age 0) wins.
        view.age_all();
        view.merge(UserId(0), &me, [(UserId(1), &stale, 0)]);
        assert_eq!(view.entries()[0].similarity, 0.0);
    }

    #[test]
    fn rescore_after_profile_change() {
        let mut me = profile(&[1, 2]);
        let mut view = ClusterView::new(2);
        let other = profile(&[1, 2]);
        view.merge(UserId(0), &me, [(UserId(1), &other, 0)]);
        assert!((view.view_similarity() - 1.0).abs() < 1e-12);

        me = profile(&[50, 51]);
        view.rescore(&me);
        assert_eq!(view.view_similarity(), 0.0);
    }

    #[test]
    fn empty_view_similarity_is_zero() {
        assert_eq!(ClusterView::new(3).view_similarity(), 0.0);
    }
}
