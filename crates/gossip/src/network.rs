//! The simulated P2P network: cycles, churn, and bandwidth metering.

use crate::cluster::ClusterView;
use crate::rps;
use crate::view::{PartialView, ViewEntry};
use hyrec_core::{recommend, Neighbor, Neighborhood, Profile, Recommendation, UserId, Vote};
use hyrec_wire::json::{object, JsonValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How message bytes are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeMode {
    /// Raw JSON bytes (what a plain P2P implementation ships).
    Json,
    /// Gzipped JSON (a generous lower bound for the P2P side).
    Gzip,
}

/// Configuration of the decentralized recommender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// RPS partial-view size.
    pub rps_view_size: usize,
    /// Cluster view size (the `k` of the P2P KNN).
    pub k: usize,
    /// Seconds between gossip cycles ("typically every minute",
    /// Section 5.6).
    pub cycle_seconds: u64,
    /// Byte-counting mode for the bandwidth report.
    pub size_mode: SizeMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            rps_view_size: 10,
            k: 10,
            cycle_seconds: 60,
            size_mode: SizeMode::Json,
            seed: 0x90551,
        }
    }
}

/// Per-node bandwidth accounting summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Total bytes sent by all nodes.
    pub total_bytes: u64,
    /// Mean bytes sent per node.
    pub mean_bytes_per_node: f64,
    /// Maximum bytes sent by any single node.
    pub max_bytes_per_node: u64,
    /// Number of gossip cycles executed.
    pub cycles: u64,
}

struct Node {
    user: UserId,
    profile: Profile,
    online: bool,
    rps_view: PartialView,
    cluster_view: ClusterView,
    bytes_sent: u64,
}

/// A deterministic, single-process simulation of the decentralized
/// recommender of Section 2.3.
///
/// Each [`GossipNetwork::run_cycle`] call makes every online node initiate
/// one RPS shuffle and one clustering exchange, exactly the per-minute
/// behaviour whose cumulative traffic Section 5.6 compares against HyRec.
pub struct GossipNetwork {
    nodes: Vec<Node>,
    index: HashMap<UserId, usize>,
    config: GossipConfig,
    rng: StdRng,
    cycles: u64,
}

impl std::fmt::Debug for GossipNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipNetwork")
            .field("nodes", &self.nodes.len())
            .field("cycles", &self.cycles)
            .field("config", &self.config)
            .finish()
    }
}

impl GossipNetwork {
    /// Builds the network; initial RPS views are seeded with ring
    /// neighbours (standard bootstrap).
    #[must_use]
    pub fn new(profiles: Vec<(UserId, Profile)>, config: GossipConfig) -> Self {
        let n = profiles.len();
        let index: HashMap<UserId, usize> = profiles
            .iter()
            .enumerate()
            .map(|(i, (u, _))| (*u, i))
            .collect();
        let nodes: Vec<Node> = profiles
            .into_iter()
            .enumerate()
            .map(|(i, (user, profile))| {
                let mut rps_view = PartialView::new(config.rps_view_size);
                if n > 1 {
                    for offset in 1..=config.rps_view_size.min(n - 1) {
                        let peer = (i + offset) % n;
                        rps_view.merge(
                            user,
                            [ViewEntry {
                                peer: UserId(peer as u32),
                                age: 0,
                            }],
                        );
                    }
                }
                Node {
                    user,
                    profile,
                    online: true,
                    rps_view,
                    cluster_view: ClusterView::new(config.k),
                    bytes_sent: 0,
                }
            })
            .collect();
        // Ring bootstrap used positional ids; remap to actual user ids.
        let mut network = Self {
            nodes,
            index,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            cycles: 0,
        };
        network.fix_bootstrap_ids();
        network
    }

    /// The ring bootstrap above filled views with *positions*; replace them
    /// with the corresponding user ids.
    fn fix_bootstrap_ids(&mut self) {
        let ids: Vec<UserId> = self.nodes.iter().map(|n| n.user).collect();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let mut fresh = PartialView::new(self.config.rps_view_size);
            let positions: Vec<usize> = node
                .rps_view
                .entries()
                .iter()
                .map(|e| e.peer.0 as usize)
                .collect();
            let me = ids[i];
            fresh.merge(
                me,
                positions
                    .into_iter()
                    .filter(|&p| p < ids.len())
                    .map(|p| ViewEntry {
                        peer: ids[p],
                        age: 0,
                    }),
            );
            node.rps_view = fresh;
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Marks a node online/offline (churn). Offline nodes neither initiate
    /// nor answer exchanges — the deployment weakness HyRec's server-side
    /// KNN storage avoids.
    pub fn set_online(&mut self, user: UserId, online: bool) {
        if let Some(&i) = self.index.get(&user) {
            self.nodes[i].online = online;
        }
    }

    /// Applies a local rating (the node's own profile changes; its cluster
    /// view is re-scored).
    pub fn record(&mut self, user: UserId, item: hyrec_core::ItemId, vote: Vote) {
        if let Some(&i) = self.index.get(&user) {
            self.nodes[i].profile.record(item, vote);
            let profile = self.nodes[i].profile.clone();
            self.nodes[i].cluster_view.rescore(&profile);
        }
    }

    /// Runs `cycles` gossip cycles.
    pub fn run(&mut self, cycles: usize) {
        for _ in 0..cycles {
            self.run_cycle();
        }
    }

    /// Runs one cycle: every online node ages its RPS view, then initiates
    /// one RPS shuffle and one clustering exchange.
    pub fn run_cycle(&mut self) {
        self.cycles += 1;
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        for i in 0..n {
            if !self.nodes[i].online {
                continue;
            }
            self.nodes[i].rps_view.age_all();
            self.nodes[i].cluster_view.age_all();
            self.rps_exchange(i);
            self.cluster_exchange(i);
        }
    }

    fn rps_exchange(&mut self, i: usize) {
        let partner = match self.nodes[i].rps_view.oldest() {
            Some(e) => e.peer,
            None => return,
        };
        let Some(&j) = self.index.get(&partner) else {
            return;
        };
        if j == i {
            return;
        }
        if !self.nodes[j].online {
            // Dead peer: drop it from the view (failure detection).
            self.nodes[i].rps_view.remove(partner);
            return;
        }
        let (a, b) = (self.nodes[i].user, self.nodes[j].user);
        let capacity = self.config.rps_view_size;

        // Split-borrow the two nodes.
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = self.nodes.split_at_mut(hi);
        let (node_a, node_b) = if i < j {
            (&mut left[lo], &mut right[0])
        } else {
            (&mut right[0], &mut left[lo])
        };

        // Meter the payloads both directions before merging.
        let payload_len = rps::shuffle_len(capacity) + 1;
        let bytes = Self::rps_message_bytes(payload_len, self.config.size_mode);
        node_a.bytes_sent += bytes;
        node_b.bytes_sent += bytes;

        rps::apply_shuffle(
            a,
            &mut node_a.rps_view,
            b,
            &mut node_b.rps_view,
            capacity,
            &mut self.rng,
        );
    }

    fn cluster_exchange(&mut self, i: usize) {
        // Partner: a random cluster peer (rotating partners spreads
        // descriptors), else a random RPS peer to bootstrap (Vicinity).
        let cluster_entries = self.nodes[i].cluster_view.entries();
        let partner = if cluster_entries.is_empty() {
            let entries = self.nodes[i].rps_view.entries();
            if entries.is_empty() {
                None
            } else {
                Some(entries[self.rng.gen_range(0..entries.len())].peer)
            }
        } else {
            Some(cluster_entries[self.rng.gen_range(0..cluster_entries.len())].peer)
        };
        let Some(partner) = partner else { return };
        let Some(&j) = self.index.get(&partner) else {
            return;
        };
        if j == i || !self.nodes[j].online {
            return;
        }

        // Payloads: own descriptor + own cluster view, both directions.
        let payload_a: Vec<(UserId, Profile, u32)> = descriptor_payload(&self.nodes[i]);
        let payload_b: Vec<(UserId, Profile, u32)> = descriptor_payload(&self.nodes[j]);

        let bytes_a = Self::cluster_message_bytes(&payload_a, self.config.size_mode);
        let bytes_b = Self::cluster_message_bytes(&payload_b, self.config.size_mode);
        self.nodes[i].bytes_sent += bytes_a;
        self.nodes[j].bytes_sent += bytes_b;

        // Merge: each side considers the other's payload.
        let me_i = self.nodes[i].user;
        let my_profile_i = self.nodes[i].profile.clone();
        self.nodes[i].cluster_view.merge(
            me_i,
            &my_profile_i,
            payload_b.iter().map(|(u, p, age)| (*u, p, *age)),
        );
        let me_j = self.nodes[j].user;
        let my_profile_j = self.nodes[j].profile.clone();
        self.nodes[j].cluster_view.merge(
            me_j,
            &my_profile_j,
            payload_a.iter().map(|(u, p, age)| (*u, p, *age)),
        );

        // Vicinity's random leg: the initiator also pulls profiles from a
        // couple of RPS peers so the cluster view can escape local optima.
        // Each pull is one descriptor of traffic *sent by the polled peer*.
        let rps_peers: Vec<UserId> = self.nodes[i]
            .rps_view
            .entries()
            .iter()
            .map(|e| e.peer)
            .collect();
        let mut pulled: Vec<(UserId, Profile, u32)> = Vec::new();
        for _ in 0..2.min(rps_peers.len()) {
            let peer = rps_peers[self.rng.gen_range(0..rps_peers.len())];
            let Some(&p) = self.index.get(&peer) else {
                continue;
            };
            if p == i || !self.nodes[p].online {
                continue;
            }
            let descriptor = vec![(self.nodes[p].user, self.nodes[p].profile.clone(), 0u32)];
            self.nodes[p].bytes_sent +=
                Self::cluster_message_bytes(&descriptor, self.config.size_mode);
            pulled.extend(descriptor);
        }
        if !pulled.is_empty() {
            self.nodes[i].cluster_view.merge(
                me_i,
                &my_profile_i,
                pulled.iter().map(|(u, p, age)| (*u, p, *age)),
            );
        }
    }

    fn rps_message_bytes(descriptors: usize, mode: SizeMode) -> u64 {
        // uid (u32 as decimal) + age: ~16 bytes JSON per descriptor.
        let doc: JsonValue = (0..descriptors)
            .map(|i| {
                object([
                    ("uid", JsonValue::from(i as u32 * 7919)),
                    ("age", JsonValue::from(2u32)),
                ])
            })
            .collect();
        finish_size(doc, mode)
    }

    fn cluster_message_bytes(payload: &[(UserId, Profile, u32)], mode: SizeMode) -> u64 {
        let doc: JsonValue = payload
            .iter()
            .map(|(u, p, age)| {
                object([
                    ("uid", JsonValue::from(u.raw())),
                    ("age", JsonValue::from(*age)),
                    ("liked", p.liked().map(|i| i.raw()).collect::<JsonValue>()),
                ])
            })
            .collect();
        finish_size(doc, mode)
    }

    /// The node's current KNN approximation (its cluster view).
    #[must_use]
    pub fn knn_of(&self, user: UserId) -> Option<Neighborhood> {
        let &i = self.index.get(&user)?;
        Some(Neighborhood::from_neighbors(
            self.nodes[i]
                .cluster_view
                .entries()
                .iter()
                .map(|e| Neighbor {
                    user: e.peer,
                    similarity: e.similarity,
                }),
        ))
    }

    /// Local recommendation (Algorithm 2 over the node's own cluster view —
    /// no network interaction needed, Section 2.3).
    #[must_use]
    pub fn recommend(&self, user: UserId, r: usize) -> Vec<Recommendation> {
        let Some(&i) = self.index.get(&user) else {
            return Vec::new();
        };
        let node = &self.nodes[i];
        recommend::most_popular(
            &node.profile,
            node.cluster_view.entries().iter().map(|e| &e.profile),
            r,
        )
    }

    /// Mean view similarity across all nodes (the P2P analogue of the KNN
    /// table's average view similarity).
    #[must_use]
    pub fn average_view_similarity(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.cluster_view.view_similarity())
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Total bytes sent by all nodes so far.
    #[must_use]
    pub fn total_bytes_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Bytes sent by one node.
    #[must_use]
    pub fn bytes_sent_by(&self, user: UserId) -> Option<u64> {
        self.index.get(&user).map(|&i| self.nodes[i].bytes_sent)
    }

    /// Full bandwidth report (the Section 5.6 numbers).
    #[must_use]
    pub fn bandwidth_report(&self) -> BandwidthReport {
        let total: u64 = self.total_bytes_sent();
        BandwidthReport {
            total_bytes: total,
            mean_bytes_per_node: if self.nodes.is_empty() {
                0.0
            } else {
                total as f64 / self.nodes.len() as f64
            },
            max_bytes_per_node: self.nodes.iter().map(|n| n.bytes_sent).max().unwrap_or(0),
            cycles: self.cycles,
        }
    }
}

fn descriptor_payload(node: &Node) -> Vec<(UserId, Profile, u32)> {
    let mut payload = Vec::with_capacity(node.cluster_view.len() + 1);
    // Own descriptor is always fresh (age 0); relayed snapshots gain a hop.
    payload.push((node.user, node.profile.clone(), 0));
    payload.extend(
        node.cluster_view
            .entries()
            .iter()
            .map(|e| (e.peer, e.profile.clone(), e.age.saturating_add(1))),
    );
    payload
}

fn finish_size(doc: JsonValue, mode: SizeMode) -> u64 {
    let raw = doc.to_bytes();
    match mode {
        SizeMode::Json => raw.len() as u64,
        SizeMode::Gzip => hyrec_wire::gzip::compress(&raw).len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::ItemId;

    fn clustered_network(clusters: u32, per_cluster: u32) -> GossipNetwork {
        let profiles: Vec<(UserId, Profile)> = (0..clusters * per_cluster)
            .map(|u| {
                let c = u % clusters;
                (
                    UserId(u),
                    Profile::from_liked((0..6u32).map(|i| c * 100 + i).collect::<Vec<_>>()),
                )
            })
            .collect();
        GossipNetwork::new(
            profiles,
            GossipConfig {
                k: 5,
                ..GossipConfig::default()
            },
        )
    }

    #[test]
    fn converges_to_clusters_within_twenty_cycles() {
        let mut network = clustered_network(4, 15);
        network.run(20);
        assert!(
            network.average_view_similarity() > 0.9,
            "avg view similarity {:.3}",
            network.average_view_similarity()
        );
        // Spot-check a node's KNN is in-cluster.
        let hood = network.knn_of(UserId(0)).unwrap();
        for n in hood.iter() {
            assert_eq!(n.user.0 % 4, 0, "out-of-cluster neighbour {}", n.user);
        }
    }

    #[test]
    fn bandwidth_grows_with_cycles() {
        let mut network = clustered_network(2, 10);
        network.run(5);
        let early = network.total_bytes_sent();
        network.run(5);
        let later = network.total_bytes_sent();
        assert!(later > early);
        let report = network.bandwidth_report();
        assert_eq!(report.cycles, 10);
        assert!(report.mean_bytes_per_node > 0.0);
        assert!(report.max_bytes_per_node >= report.mean_bytes_per_node as u64);
    }

    #[test]
    fn offline_nodes_do_not_gossip() {
        let mut network = clustered_network(2, 10);
        for u in 0..20u32 {
            network.set_online(UserId(u), false);
        }
        network.run(5);
        assert_eq!(network.total_bytes_sent(), 0);
        assert_eq!(network.average_view_similarity(), 0.0);
    }

    #[test]
    fn churn_halves_do_not_block_convergence() {
        let mut network = clustered_network(2, 16);
        // A third of each cluster goes offline.
        for u in (0..32u32).step_by(3) {
            network.set_online(UserId(u), false);
        }
        network.run(25);
        // Online nodes still converge among themselves.
        let hood = network.knn_of(UserId(1)).unwrap();
        assert!(!hood.is_empty());
        assert!(hood.view_similarity() > 0.5);
    }

    #[test]
    fn local_recommendation_uses_cluster_profiles() {
        // Varied (non-identical) profiles within each cluster: users like
        // overlapping 6-subsets of their cluster's 10 items, so views never
        // saturate at similarity 1.0 and keep churning realistically.
        let profiles: Vec<(UserId, Profile)> = (0..20u32)
            .map(|u| {
                let c = u % 2;
                let liked: Vec<u32> = (0..6u32).map(|o| c * 100 + (u / 2 + o) % 10).collect();
                (UserId(u), Profile::from_liked(liked))
            })
            .collect();
        let mut network = GossipNetwork::new(
            profiles,
            GossipConfig {
                k: 5,
                ..GossipConfig::default()
            },
        );
        network.run(15);
        // Give one cluster-0 peer an item nobody else has.
        network.record(UserId(2), ItemId(999), Vote::Like);
        // Profiles propagate via gossip snapshots, so freshness lags by a
        // few cycles (the paper's P2P staleness): give it time to spread.
        network.run(12);
        // The fresh snapshot reaches *some* same-cluster node's view, whose
        // local Algorithm 2 then surfaces the novel item.
        let reached = (0..20u32).filter(|&u| u != 2).any(|u| {
            network
                .recommend(UserId(u), 10)
                .iter()
                .any(|r| r.item == ItemId(999))
        });
        assert!(reached, "novel item failed to propagate to any node");
    }

    #[test]
    fn record_rescores_cluster_view() {
        let mut network = clustered_network(2, 10);
        network.run(10);
        let before = network.knn_of(UserId(0)).unwrap().view_similarity();
        // Wipe u0's taste: similarity to its old cluster collapses.
        for i in 0..6u32 {
            network.record(UserId(0), ItemId(i * 100), Vote::Dislike);
        }
        for i in 0..6u32 {
            network.record(UserId(0), ItemId(5000 + i), Vote::Like);
        }
        let after = network.knn_of(UserId(0)).unwrap().view_similarity();
        assert!(after < before);
    }

    #[test]
    fn tiny_networks_are_safe() {
        let mut network = GossipNetwork::new(Vec::new(), GossipConfig::default());
        network.run(3);
        assert!(network.is_empty());
        let mut network =
            GossipNetwork::new(vec![(UserId(1), Profile::new())], GossipConfig::default());
        network.run(3);
        assert_eq!(network.len(), 1);
        assert_eq!(network.total_bytes_sent(), 0);
    }
}
