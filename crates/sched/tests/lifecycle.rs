//! Property tests over the lease lifecycle: however browsers race, retry,
//! or resurface after churn, each user's recomputation round is applied
//! **exactly once** per refresh epoch.

use hyrec_core::UserId;
use hyrec_sched::{RejectReason, SchedConfig, Scheduler};
use proptest::prelude::*;

fn neighbors() -> Vec<(UserId, f64)> {
    vec![(UserId(1000), 0.5)]
}

/// One user, a chain of issues where every lease but the last is allowed
/// to expire (abandoned browser → re-issue), then *every* lease's
/// completion arrives `dup + 1` times in arbitrary order. Exactly one
/// application must survive: the live lease's first completion.
/// Everything else is a NotLeased / StaleEpoch / Duplicate reject.
fn check_reissued_chain(abandoned: usize, dup: usize, shuffle_seed: u64) -> Result<(), String> {
    let timeout = 10u64;
    let sched = Scheduler::new(SchedConfig {
        lease_timeout: timeout,
        max_reissues: 10, // keep the whole chain on the re-issue rungs
        ..SchedConfig::default()
    });

    // Issue + abandon `abandoned` leases; each sweep expires the previous
    // one and the next issue re-grants the same user's job.
    let mut now = 0u64;
    let mut grants = vec![sched.issue(UserId(7), now)];
    for _ in 0..abandoned {
        now = grants.last().unwrap().deadline + 1;
        sched.sweep(now);
        // Another browser (any uid) asks; churn recovery hands it the
        // abandoned job.
        let regrant = sched.issue(UserId(500), now);
        if !regrant.reissue || regrant.user != UserId(7) {
            return Err(format!("expected a re-issue of user 7, got {regrant:?}"));
        }
        grants.push(regrant);
    }

    // Now every historical completion arrives, each `dup + 1` times, in a
    // deterministic pseudo-shuffled order.
    let mut arrivals: Vec<usize> = (0..grants.len())
        .flat_map(|g| std::iter::repeat_n(g, dup + 1))
        .collect();
    let n = arrivals.len();
    for i in 0..n {
        let j = (shuffle_seed as usize)
            .wrapping_mul(31)
            .wrapping_add(i * 17)
            % n;
        arrivals.swap(i, j);
    }

    let mut applied = 0usize;
    for &g in &arrivals {
        let grant = grants[g];
        now += 1;
        match sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &neighbors(),
            now,
            |_| true,
        ) {
            Ok(()) => applied += 1,
            Err(RejectReason::NotLeased | RejectReason::StaleEpoch | RejectReason::Duplicate) => {}
            Err(other) => return Err(format!("unexpected reject {other:?}")),
        }
    }

    if applied != 1 {
        return Err(format!("{applied} completions applied, expected exactly 1"));
    }
    if sched.stats().completed() != 1 {
        return Err("completed counter disagrees".into());
    }
    if sched.outstanding_leases() != 0 {
        return Err("a lease leaked".into());
    }
    if sched.stats().rejected_total() != (n - 1) as u64 {
        return Err(format!(
            "rejected {} of {n} arrivals, expected {}",
            sched.stats().rejected_total(),
            n - 1
        ));
    }
    Ok(())
}

/// Concurrent same-epoch leases (several browsers asked for the same user
/// before any finished): however many complete, only the first
/// application survives; the rest go stale or duplicate.
fn check_sibling_leases(siblings: usize, completions: usize, pick_seed: u64) -> Result<(), String> {
    let sched = Scheduler::new(SchedConfig::default());
    let grants: Vec<_> = (0..siblings).map(|_| sched.issue(UserId(3), 0)).collect();
    let mut applied = 0;
    for i in 0..completions {
        let grant = grants[(pick_seed as usize + i * 7) % grants.len()];
        let outcome = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &neighbors(),
            1 + i as u64,
            |_| true,
        );
        if outcome.is_ok() {
            applied += 1;
        }
    }
    if applied != 1 || sched.stats().completed() != 1 {
        return Err(format!("{applied} applications, expected exactly 1"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reissued_chain_applies_exactly_once(
        abandoned in 1usize..5,
        dup in 1usize..3,
        shuffle_seed in 0u64..1024,
    ) {
        let outcome = check_reissued_chain(abandoned, dup, shuffle_seed);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    #[test]
    fn sibling_leases_apply_exactly_once(
        siblings in 2usize..6,
        completions in 2usize..12,
        pick_seed in 0u64..1024,
    ) {
        let outcome = check_sibling_leases(siblings, completions, pick_seed);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}
