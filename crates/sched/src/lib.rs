//! Job-lifecycle scheduling for HyRec's browser workers.
//!
//! HyRec's workers are *browsers*: a client that fetches a personalization
//! job from `/online/` may navigate away before ever posting its
//! `KnnUpdate` back to `/neighbors/`. The seed pipeline handed out jobs
//! statelessly and applied whatever came back; this crate turns that
//! request/response pair into a managed distributed work loop:
//!
//! * **Leases** — every issued job carries a lease id, the user's current
//!   refresh *epoch*, and a deadline. A completion must present a live
//!   lease at the current epoch to be applied.
//! * **Churn recovery** — leases that outlive their deadline re-enqueue the
//!   user on an escalation ladder: the job is re-issued to the next
//!   requesting browser up to [`SchedConfig::max_reissues`] times, after
//!   which the user is surrendered to the caller for server-side
//!   (centralized, CRec-style) recomputation.
//! * **Staleness-driven priority** — votes recorded since the last KNN
//!   refresh plus wall-clock age decide who gets recomputed first, so a
//!   request for `uid=A` may be answered with the job of a *staler* user B
//!   (freshness-driven scheduling in the spirit of Agarwal et al.'s
//!   item-item models). The requesting browser computes B's neighbourhood;
//!   its own entry keeps aging until it wins a pick.
//! * **Update validation** — stale-epoch, non-leased, duplicate,
//!   NaN/out-of-range-similarity and unknown-neighbor completions are
//!   rejected *before* they reach the KNN table, with per-reason counters
//!   in [`SchedStats`].
//!
//! The scheduler is pure bookkeeping over a logical clock (`u64` ticks —
//! milliseconds under the HTTP front-end, simulated seconds in the churn
//! replay) and knows nothing about HTTP or the wire format;
//! `hyrec_server::ScheduledServer` wires it to job building, update
//! application and the fallback compute path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
mod stats;

pub use scheduler::{
    JobGrant, RejectReason, SchedConfig, Scheduler, SweepReport, Tick, UserSnapshot,
    DEFAULT_SIMILARITY_TOLERANCE,
};
pub use stats::{SchedStats, SchedStatsSnapshot};
