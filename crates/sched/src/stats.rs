//! Scheduler observability: lifecycle and per-reason reject counters.

use crate::scheduler::RejectReason;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters tracking the job lifecycle and every reject reason.
///
/// Shared by reference from the scheduler; cheap to read at any time (the
/// `/stats/` route serializes a [`SchedStatsSnapshot`] per request).
#[derive(Debug, Default)]
pub struct SchedStats {
    issued: AtomicU64,
    reissued: AtomicU64,
    completed: AtomicU64,
    expired: AtomicU64,
    fallbacks: AtomicU64,
    rejected_not_leased: AtomicU64,
    rejected_stale_epoch: AtomicU64,
    rejected_duplicate: AtomicU64,
    rejected_wrong_user: AtomicU64,
    rejected_nan_similarity: AtomicU64,
    rejected_out_of_range_similarity: AtomicU64,
    rejected_unknown_neighbor: AtomicU64,
}

macro_rules! counter {
    ($(#[$doc:meta])* $name:ident, $inc:ident) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        }

        pub(crate) fn $inc(&self) {
            self.$name.fetch_add(1, Ordering::Relaxed);
        }
    };
}

impl SchedStats {
    counter!(
        /// Leases issued (including re-issues).
        issued,
        inc_issued
    );
    counter!(
        /// Expired jobs handed to another browser (escalation ladder).
        reissued,
        inc_reissued
    );
    counter!(
        /// Completions validated and applied.
        completed,
        inc_completed
    );
    counter!(
        /// Leases that outlived their deadline (abandoned browsers).
        expired,
        inc_expired
    );
    counter!(
        /// Users surrendered to server-side fallback compute.
        fallbacks,
        inc_fallbacks
    );
    counter!(
        /// Completions presenting no (or an unknown / expired) lease.
        rejected_not_leased,
        inc_rejected_not_leased
    );
    counter!(
        /// Completions whose lease was superseded by a newer epoch.
        rejected_stale_epoch,
        inc_rejected_stale_epoch
    );
    counter!(
        /// Completions for a lease that was already consumed.
        rejected_duplicate,
        inc_rejected_duplicate
    );
    counter!(
        /// Completions whose uid does not match the leased user.
        rejected_wrong_user,
        inc_rejected_wrong_user
    );
    counter!(
        /// Completions carrying a NaN similarity.
        rejected_nan_similarity,
        inc_rejected_nan_similarity
    );
    counter!(
        /// Completions carrying a similarity outside `[0, 1]`.
        rejected_out_of_range_similarity,
        inc_rejected_out_of_range_similarity
    );
    counter!(
        /// Completions naming a neighbour the server does not know.
        rejected_unknown_neighbor,
        inc_rejected_unknown_neighbor
    );

    /// Sum over every reject reason.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_not_leased()
            + self.rejected_stale_epoch()
            + self.rejected_duplicate()
            + self.rejected_wrong_user()
            + self.rejected_nan_similarity()
            + self.rejected_out_of_range_similarity()
            + self.rejected_unknown_neighbor()
    }

    pub(crate) fn inc_reject(&self, reason: RejectReason) {
        match reason {
            RejectReason::NotLeased => self.inc_rejected_not_leased(),
            RejectReason::StaleEpoch => self.inc_rejected_stale_epoch(),
            RejectReason::Duplicate => self.inc_rejected_duplicate(),
            RejectReason::WrongUser => self.inc_rejected_wrong_user(),
            RejectReason::NanSimilarity => self.inc_rejected_nan_similarity(),
            RejectReason::OutOfRangeSimilarity => self.inc_rejected_out_of_range_similarity(),
            RejectReason::UnknownNeighbor => self.inc_rejected_unknown_neighbor(),
        }
    }

    /// A consistent-enough point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> SchedStatsSnapshot {
        SchedStatsSnapshot {
            issued: self.issued(),
            reissued: self.reissued(),
            completed: self.completed(),
            expired: self.expired(),
            fallbacks: self.fallbacks(),
            rejected_not_leased: self.rejected_not_leased(),
            rejected_stale_epoch: self.rejected_stale_epoch(),
            rejected_duplicate: self.rejected_duplicate(),
            rejected_wrong_user: self.rejected_wrong_user(),
            rejected_nan_similarity: self.rejected_nan_similarity(),
            rejected_out_of_range_similarity: self.rejected_out_of_range_similarity(),
            rejected_unknown_neighbor: self.rejected_unknown_neighbor(),
        }
    }
}

/// Plain-data snapshot of [`SchedStats`] (the `/stats/` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field names mirror the documented SchedStats accessors
pub struct SchedStatsSnapshot {
    pub issued: u64,
    pub reissued: u64,
    pub completed: u64,
    pub expired: u64,
    pub fallbacks: u64,
    pub rejected_not_leased: u64,
    pub rejected_stale_epoch: u64,
    pub rejected_duplicate: u64,
    pub rejected_wrong_user: u64,
    pub rejected_nan_similarity: u64,
    pub rejected_out_of_range_similarity: u64,
    pub rejected_unknown_neighbor: u64,
}

impl SchedStatsSnapshot {
    /// Sum over every reject reason.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_not_leased
            + self.rejected_stale_epoch
            + self.rejected_duplicate
            + self.rejected_wrong_user
            + self.rejected_nan_similarity
            + self.rejected_out_of_range_similarity
            + self.rejected_unknown_neighbor
    }

    /// Serializes the snapshot as a compact JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"issued\":{},\"reissued\":{},\"completed\":{},\"expired\":{},\
             \"fallbacks\":{},\"rejected\":{{\"not_leased\":{},\"stale_epoch\":{},\
             \"duplicate\":{},\"wrong_user\":{},\"nan_similarity\":{},\
             \"out_of_range_similarity\":{},\"unknown_neighbor\":{},\"total\":{}}}}}",
            self.issued,
            self.reissued,
            self.completed,
            self.expired,
            self.fallbacks,
            self.rejected_not_leased,
            self.rejected_stale_epoch,
            self.rejected_duplicate,
            self.rejected_wrong_user,
            self.rejected_nan_similarity,
            self.rejected_out_of_range_similarity,
            self.rejected_unknown_neighbor,
            self.rejected_total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = SchedStats::default();
        stats.inc_issued();
        stats.inc_issued();
        stats.inc_completed();
        stats.inc_reject(RejectReason::StaleEpoch);
        stats.inc_reject(RejectReason::NanSimilarity);
        let snap = stats.snapshot();
        assert_eq!(snap.issued, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.rejected_stale_epoch, 1);
        assert_eq!(snap.rejected_nan_similarity, 1);
        assert_eq!(snap.rejected_total(), 2);
        assert_eq!(stats.rejected_total(), 2);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let stats = SchedStats::default();
        stats.inc_issued();
        stats.inc_reject(RejectReason::Duplicate);
        let json = stats.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"issued\":1"));
        assert!(json.contains("\"duplicate\":1"));
        assert!(json.contains("\"total\":1"));
    }
}
