//! The lease table, staleness queue and validation core.

use crate::stats::SchedStats;
use hyrec_core::{FastHashMap, UserId};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Logical time. The scheduler never reads a clock: every entry point
/// takes `now` explicitly, so the HTTP front-end can feed monotonic
/// milliseconds while the churn replay feeds simulated ticks.
pub type Tick = u64;

/// Default slack above `1.0` tolerated in completion similarities
/// (floating point: the widget's cosine can land at `1.0 + ulp`). The
/// single definition every validation site — scheduler and HTTP routers —
/// derives from.
pub const DEFAULT_SIMILARITY_TOLERANCE: f64 = 1e-6;

/// Scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Ticks until an outstanding lease expires and its user re-enters the
    /// queue (the browser is presumed to have navigated away).
    pub lease_timeout: Tick,
    /// How many times an expired job is re-issued to another browser
    /// before the user is surrendered to server-side fallback compute.
    pub max_reissues: u32,
    /// Priority weight of one vote recorded since the last KNN refresh.
    pub vote_weight: f64,
    /// Priority weight of one tick of age since the last KNN refresh.
    pub age_weight: f64,
    /// Slack above `1.0` tolerated in completion similarities (floating
    /// point; the widget's cosine can land at `1.0 + ulp`).
    pub similarity_tolerance: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            lease_timeout: 30_000, // 30 s at millisecond ticks
            max_reissues: 2,
            vote_weight: 1.0,
            age_weight: 1e-4,
            similarity_tolerance: DEFAULT_SIMILARITY_TOLERANCE,
        }
    }
}

/// A granted job lease: who to compute for and under which credentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobGrant {
    /// The scheduler's pick — not necessarily the requesting user.
    pub user: UserId,
    /// Lease id the completion must present (`0` is never issued; it is
    /// the wire's "unleased" sentinel).
    pub lease: u64,
    /// The user's refresh epoch at issue time; completions at an older
    /// epoch are rejected.
    pub epoch: u64,
    /// Tick at which the lease expires.
    pub deadline: Tick,
    /// Whether this grant re-issues a job abandoned by another browser.
    pub reissue: bool,
}

/// Why a completion was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No live lease with that id (never issued, expired, or `0`).
    NotLeased,
    /// The lease was superseded: the user refreshed (or was re-issued)
    /// under a newer epoch since this job was handed out.
    StaleEpoch,
    /// The lease was already consumed by an earlier completion.
    Duplicate,
    /// The completion's uid does not match the leased user.
    WrongUser,
    /// A neighbour similarity is NaN.
    NanSimilarity,
    /// A neighbour similarity is negative or above `1.0`.
    OutOfRangeSimilarity,
    /// A neighbour id the server does not know (and cannot resolve).
    UnknownNeighbor,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            Self::NotLeased => "not_leased",
            Self::StaleEpoch => "stale_epoch",
            Self::Duplicate => "duplicate",
            Self::WrongUser => "wrong_user",
            Self::NanSimilarity => "nan_similarity",
            Self::OutOfRangeSimilarity => "out_of_range_similarity",
            Self::UnknownNeighbor => "unknown_neighbor",
        };
        f.write_str(text)
    }
}

/// What one [`Scheduler::sweep`] pass found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Leases that expired during this pass.
    pub expired: usize,
    /// Users currently waiting to be re-issued to the next browser.
    pub reissue_backlog: usize,
    /// Users waiting in the fallback pen (escalation ladder exhausted);
    /// collect them with [`Scheduler::take_fallback`].
    pub fallback_ready: usize,
}

/// Point-in-time copy of a user's lifecycle state
/// ([`Scheduler::user_snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the UserState docs below
pub struct UserSnapshot {
    pub epoch: u64,
    pub votes: u64,
    pub last_refresh: Tick,
    pub attempts: u32,
    pub outstanding: u32,
    pub in_reissue: bool,
    pub in_fallback: bool,
}

/// Per-user lifecycle state.
#[derive(Debug)]
struct UserState {
    /// Refresh epoch: bumped on every applied refresh and on every
    /// re-issue, invalidating completions of superseded leases.
    epoch: u64,
    /// Votes recorded since the last applied KNN refresh.
    votes: u64,
    /// Tick of the last applied refresh (registration tick before any).
    last_refresh: Tick,
    /// Consecutive lease expiries since the last refresh — the rung of the
    /// escalation ladder this user stands on.
    attempts: u32,
    /// Live leases for this user.
    outstanding: u32,
    /// Version of this user's live staleness-queue entry (lazy heap
    /// invalidation: entries with an older version are discarded on pop).
    queue_version: u64,
    /// Whether the user sits in the re-issue backlog.
    in_reissue: bool,
    /// Whether the user sits in the fallback pen.
    in_fallback: bool,
}

impl UserState {
    fn new(now: Tick) -> Self {
        Self {
            epoch: 1,
            votes: 0,
            last_refresh: now,
            attempts: 0,
            outstanding: 0,
            queue_version: 0,
            in_reissue: false,
            in_fallback: false,
        }
    }
}

/// One staleness-queue entry. `key` is time-shifted priority: comparing
/// `vote_weight·votes + age_weight·(now − last_refresh)` between two users
/// at any common `now` is equivalent to comparing
/// `vote_weight·votes − age_weight·last_refresh`, which is constant — so
/// entries need no re-scoring as time passes.
#[derive(Debug)]
struct QueueEntry {
    key: f64,
    version: u64,
    user: UserId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by user id for determinism across runs.
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.user.raw().cmp(&other.user.raw()))
    }
}

/// One outstanding lease. Expiry is driven by the `(deadline, lease)`
/// heap, not stored here: a completion that lands after its deadline but
/// before the sweep notices still counts (the work *did* come back), and
/// exactly-once application is guaranteed by the epoch check regardless.
#[derive(Debug)]
struct LeaseEntry {
    user: UserId,
    epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    next_lease: u64,
    users: FastHashMap<UserId, UserState>,
    /// Outstanding leases by id.
    leases: FastHashMap<u64, LeaseEntry>,
    /// Recently consumed lease ids → completion tick (duplicate
    /// detection); pruned against the lease timeout so it stays bounded.
    completed: FastHashMap<u64, Tick>,
    /// Staleness priority queue (max-heap over `QueueEntry::key`).
    queue: BinaryHeap<QueueEntry>,
    /// Expired users awaiting re-issue to the next requesting browser,
    /// with the tick they entered the backlog (waiting longer than one
    /// lease timeout promotes them straight to fallback — recomputation
    /// latency stays bounded even if request traffic dries up).
    reissue: VecDeque<(UserId, Tick)>,
    /// Users whose escalation ladder is exhausted.
    fallback: Vec<UserId>,
    /// Expiry index: min-heap of `(deadline, lease id)`.
    expiry: BinaryHeap<Reverse<(Tick, u64)>>,
}

/// The job-lifecycle scheduler. See the crate docs for the model.
///
/// All methods take `&self`; state lives behind one mutex (held for
/// bookkeeping only — never across job building, widget compute or table
/// writes).
#[derive(Debug)]
pub struct Scheduler {
    config: SchedConfig,
    inner: Mutex<Inner>,
    stats: SchedStats,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(SchedConfig::default())
    }
}

impl Scheduler {
    /// Creates a scheduler with the given parameters.
    #[must_use]
    pub fn new(config: SchedConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                next_lease: 1,
                ..Inner::default()
            }),
            stats: SchedStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Lifecycle and reject counters.
    #[must_use]
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Records that `user` voted at `now`: their staleness priority rises
    /// by one vote weight.
    pub fn note_vote(&self, user: UserId, now: Tick) {
        self.note_votes(std::slice::from_ref(&user), now);
    }

    /// Batched [`Self::note_vote`]: one lock acquisition for a coalesced
    /// `/rate/` burst.
    pub fn note_votes(&self, users: &[UserId], now: Tick) {
        if users.is_empty() {
            return;
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        for &user in users {
            let state = inner
                .users
                .entry(user)
                .or_insert_with(|| UserState::new(now));
            state.votes += 1;
            Self::requeue(&self.config, state, user, &mut inner.queue);
        }
    }

    /// Issues one job lease for a request nominally asking for `requested`.
    ///
    /// The pick order is the crate's scheduling policy:
    /// 1. the re-issue backlog (churn recovery beats everything),
    /// 2. the staleness-queue top, when it is strictly more urgent than
    ///    the requester and has no job in flight,
    /// 3. the requester itself.
    pub fn issue(&self, requested: UserId, now: Tick) -> JobGrant {
        self.issue_many(std::slice::from_ref(&requested), now)
            .pop()
            .expect("one request in, one grant out")
    }

    /// Issues a lease for an *anonymous* request — one whose nominal uid
    /// the caller refuses to register (e.g. an unknown browser-supplied
    /// id, which must not mint permanent scheduler state or fallback
    /// obligations). Serves the re-issue backlog or the staleness-queue
    /// top; returns `None` when no registered user needs work.
    #[must_use]
    pub fn issue_anonymous(&self, now: Tick) -> Option<JobGrant> {
        self.issue_mixed(&[None], now)
            .pop()
            .expect("one slot in, one slot out")
    }

    /// Batched mixed issue under one lock: `Some(uid)` slots behave like
    /// [`Self::issue_many`], `None` slots like [`Self::issue_anonymous`]
    /// (and may come back `None` when no registered user needs work).
    #[must_use]
    pub fn issue_mixed(&self, requested: &[Option<UserId>], now: Tick) -> Vec<Option<JobGrant>> {
        if requested.is_empty() {
            return Vec::new();
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        self.sweep_locked(inner, now);
        requested
            .iter()
            .map(|&slot| match slot {
                Some(uid) => Some(self.issue_one_locked(inner, uid, now)),
                None => {
                    if let Some(grant) = self.pop_reissue_locked(inner, now) {
                        return Some(grant);
                    }
                    // No user id exists to self-serve: only a strictly
                    // positive-priority registered user is picked.
                    let pick = self.pop_queue_pick_locked(inner, None, now)?;
                    Some(self.grant_locked(inner, pick, now, false))
                }
            })
            .collect()
    }

    /// Batched [`Self::issue`]: grants for a coalesced `/online/` batch
    /// under one lock acquisition, in request order.
    #[must_use]
    pub fn issue_many(&self, requested: &[UserId], now: Tick) -> Vec<JobGrant> {
        if requested.is_empty() {
            return Vec::new();
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        self.sweep_locked(inner, now);
        requested
            .iter()
            .map(|&uid| self.issue_one_locked(inner, uid, now))
            .collect()
    }

    /// Rung 1: churn recovery. Pops the oldest abandoned user (skimming
    /// entries whose flag was cleared by a late completion) and re-grants
    /// under a bumped epoch, so the vanished browser's completion — if it
    /// ever arrives — is recognizably stale.
    fn pop_reissue_locked(&self, inner: &mut Inner, now: Tick) -> Option<JobGrant> {
        while let Some((user, _)) = inner.reissue.pop_front() {
            let Some(state) = inner.users.get_mut(&user) else {
                continue;
            };
            if !state.in_reissue {
                continue;
            }
            state.in_reissue = false;
            state.epoch += 1;
            self.stats.inc_reissued();
            return Some(self.grant_locked(inner, user, now, true));
        }
        None
    }

    fn issue_one_locked(&self, inner: &mut Inner, requested: UserId, now: Tick) -> JobGrant {
        if let Some(grant) = self.pop_reissue_locked(inner, now) {
            return grant;
        }

        // Make sure the requester exists (cold start registers here).
        inner
            .users
            .entry(requested)
            .or_insert_with(|| UserState::new(now));

        // Rung 2: the staleness queue, when its top is strictly more
        // urgent than the requester.
        let pick = self
            .pop_queue_pick_locked(inner, Some(requested), now)
            .unwrap_or(requested);
        self.grant_locked(inner, pick, now, false)
    }

    /// Pops the staleness-queue top if it should be served *instead of*
    /// `requested` (`None` = anonymous request: any strictly
    /// positive-priority eligible user wins). Stale heap entries are
    /// discarded; valid entries of currently ineligible users (job in
    /// flight, queued for re-issue or fallback) are stashed and restored.
    fn pop_queue_pick_locked(
        &self,
        inner: &mut Inner,
        requested: Option<UserId>,
        now: Tick,
    ) -> Option<UserId> {
        let requested_priority = requested
            .and_then(|uid| inner.users.get(&uid))
            .map_or(0.0, |s| self.priority_at(s, now));
        let mut stash = Vec::new();
        let mut pick = None;
        while let Some(top) = inner.queue.peek() {
            let user = top.user;
            let version = top.version;
            let Some(state) = inner.users.get(&user) else {
                inner.queue.pop();
                continue;
            };
            if version != state.queue_version {
                inner.queue.pop(); // superseded entry
                continue;
            }
            if Some(user) == requested {
                // The requester *is* the most urgent user; serve them via
                // rung 3 and leave their entry for the refresh to clear.
                break;
            }
            if state.outstanding > 0 || state.in_reissue || state.in_fallback {
                stash.push(inner.queue.pop().expect("peeked entry exists"));
                continue;
            }
            if self.priority_at(state, now) > requested_priority {
                inner.queue.pop();
                pick = Some(user);
            }
            break;
        }
        inner.queue.extend(stash);
        pick
    }

    fn grant_locked(&self, inner: &mut Inner, user: UserId, now: Tick, reissue: bool) -> JobGrant {
        let lease = inner.next_lease;
        inner.next_lease += 1;
        let deadline = now + self.config.lease_timeout;
        let state = inner.users.get_mut(&user).expect("pick is registered");
        state.outstanding += 1;
        let epoch = state.epoch;
        inner.leases.insert(lease, LeaseEntry { user, epoch });
        inner.expiry.push(Reverse((deadline, lease)));
        self.stats.inc_issued();
        JobGrant {
            user,
            lease,
            epoch,
            deadline,
            reissue,
        }
    }

    /// Validates a completion and, on success, consumes its lease and
    /// resets the user's staleness.
    ///
    /// `known` answers whether a reported neighbour id is resolvable by
    /// the server (under pseudonymization this means "the pseudonym
    /// resolves", not "the raw id exists").
    ///
    /// The *caller* applies the update to the KNN table iff this returns
    /// `Ok` — validation happens strictly before `apply_updates`.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] (also counted in [`SchedStats`]) when
    /// the completion must not be applied. Payload rejects (NaN / range /
    /// unknown neighbour) leave the lease live, so the job is still
    /// recoverable through expiry if the worker never sends a valid one.
    ///
    /// Lease-state checks run strictly **before** any payload inspection:
    /// the neighbour-resolvability probe must never fire for a request
    /// without a live lease, or unauthenticated clients could use the
    /// `unknown_neighbor`-vs-`not_leased` distinction as an oracle to
    /// enumerate live pseudonyms (exactly what anonymization epochs hide).
    pub fn complete<F>(
        &self,
        uid: UserId,
        lease: u64,
        epoch: u64,
        neighbors: &[(UserId, f64)],
        now: Tick,
        mut known: F,
    ) -> Result<(), RejectReason>
    where
        F: FnMut(UserId) -> bool,
    {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let verdict = (|| {
            if lease == 0 {
                return Err(RejectReason::NotLeased);
            }
            if inner.completed.contains_key(&lease) {
                return Err(RejectReason::Duplicate);
            }
            let Some(entry) = inner.leases.get(&lease) else {
                return Err(RejectReason::NotLeased);
            };
            if entry.user != uid {
                return Err(RejectReason::WrongUser);
            }
            let current_epoch = inner.users.get(&uid).map_or(0, |s| s.epoch);
            if epoch != entry.epoch || entry.epoch != current_epoch {
                return Err(RejectReason::StaleEpoch);
            }
            // Payload validation last, under a proven-live lease. A
            // malformed payload does not consume the lease (the browser
            // may retry; expiry re-issues otherwise).
            for &(neighbor, similarity) in neighbors {
                if similarity.is_nan() {
                    return Err(RejectReason::NanSimilarity);
                }
                if !(0.0..=1.0 + self.config.similarity_tolerance).contains(&similarity) {
                    return Err(RejectReason::OutOfRangeSimilarity);
                }
                if !known(neighbor) {
                    return Err(RejectReason::UnknownNeighbor);
                }
            }
            Ok(())
        })();
        match verdict {
            Ok(()) => {
                inner.leases.remove(&lease);
                inner.completed.insert(lease, now);
                let config = self.config;
                let state = inner.users.get_mut(&uid).expect("leased user exists");
                state.outstanding = state.outstanding.saturating_sub(1);
                state.votes = 0;
                state.attempts = 0;
                state.last_refresh = now;
                state.epoch += 1; // any sibling lease is now stale
                state.in_reissue = false;
                state.in_fallback = false;
                Self::requeue(&config, state, uid, &mut inner.queue);
                self.stats.inc_completed();
                Ok(())
            }
            Err(reason) => {
                self.stats.inc_reject(reason);
                Err(reason)
            }
        }
    }

    /// Expires overdue leases, climbing each user one rung up the
    /// escalation ladder (re-issue backlog, then the fallback pen).
    pub fn sweep(&self, now: Tick) -> SweepReport {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let expired = self.sweep_locked(inner, now);
        SweepReport {
            expired,
            reissue_backlog: inner.reissue.len(),
            fallback_ready: inner.fallback.len(),
        }
    }

    fn sweep_locked(&self, inner: &mut Inner, now: Tick) -> usize {
        let mut expired = 0;
        while let Some(&Reverse((deadline, lease))) = inner.expiry.peek() {
            if deadline > now {
                break;
            }
            inner.expiry.pop();
            // Completed (or superseded) leases were already removed from
            // the table; only live entries expire.
            let Some(entry) = inner.leases.remove(&lease) else {
                continue;
            };
            expired += 1;
            self.stats.inc_expired();
            let max_reissues = self.config.max_reissues;
            let user = entry.user;
            let Some(state) = inner.users.get_mut(&user) else {
                continue;
            };
            state.outstanding = state.outstanding.saturating_sub(1);
            // A superseded lease (the user refreshed, or was re-issued,
            // under a newer epoch since this one was granted) expires
            // without climbing the ladder: the work it covered is already
            // done or already being recovered. Only current-epoch expiries
            // mean a user is actually stranded.
            if entry.epoch != state.epoch {
                continue;
            }
            // One abandonment event climbs one rung: sibling leases (two
            // tabs fetching the same user, same epoch) expiring in one
            // sweep must not burn several re-issues at once, so the
            // attempt counter moves only when a recovery is enqueued.
            if state.in_reissue || state.in_fallback {
                continue;
            }
            state.attempts += 1;
            if state.attempts > max_reissues {
                state.in_fallback = true;
                inner.fallback.push(user);
            } else {
                state.in_reissue = true;
                inner.reissue.push_back((user, now));
            }
        }
        // Liveness: a backlog entry that no browser showed up to adopt
        // within one lease timeout is promoted straight to fallback, so
        // recomputation latency stays bounded even when traffic dries up.
        while let Some(&(user, queued_at)) = inner.reissue.front() {
            if queued_at + self.config.lease_timeout > now {
                break;
            }
            inner.reissue.pop_front();
            let Some(state) = inner.users.get_mut(&user) else {
                continue;
            };
            if !state.in_reissue {
                continue;
            }
            state.in_reissue = false;
            state.in_fallback = true;
            inner.fallback.push(user);
        }
        // Keep the duplicate-detection set bounded: a completion older than
        // a few lease lifetimes can no longer collide with a live retry.
        if inner.completed.len() > 4096 {
            let horizon = now.saturating_sub(4 * self.config.lease_timeout);
            inner.completed.retain(|_, &mut t| t >= horizon);
        }
        // Compact the staleness heap when superseded entries dominate:
        // every vote/refresh pushes a fresh entry and only invalidates the
        // old one lazily, so a vote-heavy workload would otherwise grow
        // the heap with total votes ever recorded.
        if inner.queue.len() > 64 && inner.queue.len() > 2 * inner.users.len() {
            let users = &inner.users;
            let live: Vec<QueueEntry> = std::mem::take(&mut inner.queue)
                .into_iter()
                .filter(|entry| {
                    users
                        .get(&entry.user)
                        .is_some_and(|s| s.queue_version == entry.version)
                })
                .collect();
            inner.queue = BinaryHeap::from(live);
        }
        expired
    }

    /// Drains the fallback pen: users whose escalation ladder is exhausted
    /// and who must now be recomputed server-side. The caller performs the
    /// compute and reports back through [`Self::mark_refreshed`].
    #[must_use]
    pub fn take_fallback(&self) -> Vec<UserId> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let drained: Vec<UserId> = inner.fallback.drain(..).collect();
        let mut taken = Vec::with_capacity(drained.len());
        for user in drained {
            let Some(state) = inner.users.get_mut(&user) else {
                continue;
            };
            // A late valid completion may have refreshed the user while
            // they sat in the pen; skip those.
            if state.in_fallback {
                state.in_fallback = false;
                self.stats.inc_fallbacks();
                taken.push(user);
            }
        }
        taken
    }

    /// Records an out-of-band refresh (server-side fallback compute):
    /// resets the user's staleness and bumps their epoch so any straggler
    /// browser completion is recognizably stale.
    pub fn mark_refreshed(&self, user: UserId, now: Tick) {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let config = self.config;
        let state = inner
            .users
            .entry(user)
            .or_insert_with(|| UserState::new(now));
        state.votes = 0;
        state.attempts = 0;
        state.last_refresh = now;
        state.epoch += 1;
        state.in_reissue = false;
        state.in_fallback = false;
        Self::requeue(&config, state, user, &mut inner.queue);
    }

    /// Users who still owe a recomputation `budget` ticks after their
    /// first unserviced vote — the churn replay's acceptance probe.
    #[must_use]
    pub fn overdue_users(&self, now: Tick, budget: Tick) -> Vec<UserId> {
        let inner = self.inner.lock();
        let mut overdue: Vec<UserId> = inner
            .users
            .iter()
            .filter(|(_, s)| s.votes > 0 && now.saturating_sub(s.last_refresh) > budget)
            .map(|(&u, _)| u)
            .collect();
        overdue.sort_unstable_by_key(|user| user.raw());
        overdue
    }

    /// Point-in-time copy of one user's lifecycle state (observability
    /// and test diagnostics).
    #[must_use]
    pub fn user_snapshot(&self, user: UserId) -> Option<UserSnapshot> {
        let inner = self.inner.lock();
        inner.users.get(&user).map(|s| UserSnapshot {
            epoch: s.epoch,
            votes: s.votes,
            last_refresh: s.last_refresh,
            attempts: s.attempts,
            outstanding: s.outstanding,
            in_reissue: s.in_reissue,
            in_fallback: s.in_fallback,
        })
    }

    /// Number of live (unexpired, unconsumed) leases.
    #[must_use]
    pub fn outstanding_leases(&self) -> usize {
        self.inner.lock().leases.len()
    }

    /// Number of users known to the scheduler.
    #[must_use]
    pub fn user_count(&self) -> usize {
        self.inner.lock().users.len()
    }

    fn priority_at(&self, state: &UserState, now: Tick) -> f64 {
        self.config.vote_weight * state.votes as f64
            + self.config.age_weight * now.saturating_sub(state.last_refresh) as f64
    }

    /// Pushes a fresh queue entry for `user`, superseding any live one.
    fn requeue(
        config: &SchedConfig,
        state: &mut UserState,
        user: UserId,
        queue: &mut BinaryHeap<QueueEntry>,
    ) {
        state.queue_version += 1;
        queue.push(QueueEntry {
            key: config.vote_weight * state.votes as f64
                - config.age_weight * state.last_refresh as f64,
            version: state.queue_version,
            user,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SchedConfig {
        SchedConfig {
            lease_timeout: 10,
            max_reissues: 2,
            vote_weight: 1.0,
            age_weight: 0.01,
            similarity_tolerance: 1e-6,
        }
    }

    fn ok_neighbors() -> Vec<(UserId, f64)> {
        vec![(UserId(7), 0.5), (UserId(8), 0.25)]
    }

    #[test]
    fn issue_then_complete_consumes_the_lease_once() {
        let sched = Scheduler::new(config());
        let grant = sched.issue(UserId(1), 0);
        assert_eq!(grant.user, UserId(1));
        assert!(grant.lease > 0);
        assert!(!grant.reissue);
        assert_eq!(sched.outstanding_leases(), 1);

        let ok = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &ok_neighbors(),
            1,
            |_| true,
        );
        assert_eq!(ok, Ok(()));
        assert_eq!(sched.outstanding_leases(), 0);

        // The duplicate is rejected and counted.
        let dup = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &ok_neighbors(),
            2,
            |_| true,
        );
        assert_eq!(dup, Err(RejectReason::Duplicate));
        assert_eq!(sched.stats().completed(), 1);
        assert_eq!(sched.stats().rejected_duplicate(), 1);
    }

    #[test]
    fn unleased_and_unknown_leases_are_rejected() {
        let sched = Scheduler::new(config());
        let no_lease = sched.complete(UserId(1), 0, 1, &ok_neighbors(), 0, |_| true);
        assert_eq!(no_lease, Err(RejectReason::NotLeased));
        let unknown = sched.complete(UserId(1), 999, 1, &ok_neighbors(), 0, |_| true);
        assert_eq!(unknown, Err(RejectReason::NotLeased));
        assert_eq!(sched.stats().rejected_not_leased(), 2);
    }

    #[test]
    fn lease_checks_run_before_any_payload_probe() {
        // The resolvability oracle: without a live lease, a completion is
        // rejected as NotLeased no matter how interesting its payload —
        // the `known` predicate must never run (an attacker could
        // otherwise enumerate live pseudonyms via the reject reason).
        let sched = Scheduler::new(config());
        let mut probed = false;
        let outcome = sched.complete(UserId(1), 777, 1, &[(UserId(2), 0.5)], 0, |_| {
            probed = true;
            false
        });
        assert_eq!(outcome, Err(RejectReason::NotLeased));
        assert!(!probed, "payload probed without a live lease");
    }

    #[test]
    fn payload_rejects_leave_the_lease_live() {
        let sched = Scheduler::new(config());
        let grant = sched.issue(UserId(1), 0);

        let nan = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &[(UserId(2), f64::NAN)],
            1,
            |_| true,
        );
        assert_eq!(nan, Err(RejectReason::NanSimilarity));
        let negative = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &[(UserId(2), -0.1)],
            1,
            |_| true,
        );
        assert_eq!(negative, Err(RejectReason::OutOfRangeSimilarity));
        let too_big = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &[(UserId(2), 1.5)],
            1,
            |_| true,
        );
        assert_eq!(too_big, Err(RejectReason::OutOfRangeSimilarity));
        let stranger = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &[(UserId(2), 0.5)],
            1,
            |_| false,
        );
        assert_eq!(stranger, Err(RejectReason::UnknownNeighbor));

        // The lease survived all four rejects and is still completable.
        let ok = sched.complete(
            grant.user,
            grant.lease,
            grant.epoch,
            &ok_neighbors(),
            2,
            |_| true,
        );
        assert_eq!(ok, Ok(()));
        assert_eq!(sched.stats().rejected_total(), 4);
    }

    #[test]
    fn wrong_user_is_rejected() {
        let sched = Scheduler::new(config());
        let grant = sched.issue(UserId(1), 0);
        let wrong = sched.complete(
            UserId(2),
            grant.lease,
            grant.epoch,
            &ok_neighbors(),
            1,
            |_| true,
        );
        assert_eq!(wrong, Err(RejectReason::WrongUser));
    }

    #[test]
    fn expiry_reissues_then_falls_back() {
        let sched = Scheduler::new(config());
        let first = sched.issue(UserId(1), 0);

        // Deadline passes; the sweep expires the lease and queues a
        // re-issue.
        let report = sched.sweep(first.deadline + 1);
        assert_eq!(report.expired, 1);
        assert_eq!(report.reissue_backlog, 1);

        // Any next request is answered with the abandoned user's job,
        // under a bumped epoch.
        let second = sched.issue(UserId(99), first.deadline + 2);
        assert_eq!(second.user, UserId(1));
        assert!(second.reissue);
        assert!(second.epoch > first.epoch);

        // The vanished browser's late completion is recognizably stale.
        let late = sched.complete(
            first.user,
            first.lease,
            first.epoch,
            &ok_neighbors(),
            first.deadline + 3,
            |_| true,
        );
        assert_eq!(late, Err(RejectReason::NotLeased));

        // Second rung: the abandoned job is re-issued once more.
        let now = second.deadline + 1;
        sched.sweep(now);
        let third = sched.issue(UserId(99), now);
        assert!(third.reissue);
        assert_eq!(third.user, UserId(1));

        // Third expiry exhausts the ladder (max_reissues = 2): the user
        // lands in the fallback pen instead of the re-issue backlog.
        let report = sched.sweep(third.deadline + 1);
        assert_eq!(report.fallback_ready, 1);
        assert_eq!(report.reissue_backlog, 0);
        let fallback = sched.take_fallback();
        assert_eq!(fallback, vec![UserId(1)]);
        assert_eq!(sched.stats().fallbacks(), 1);
        // The pen drains exactly once.
        assert!(sched.take_fallback().is_empty());

        // Server-side compute reports back; the user is fresh again.
        sched.mark_refreshed(UserId(1), third.deadline + 2);
        assert!(!sched
            .overdue_users(third.deadline + 3, 0)
            .contains(&UserId(1)));
    }

    #[test]
    fn sibling_expiries_burn_one_rung_not_several() {
        // Two tabs fetch the same user, both are abandoned, both expire in
        // one sweep: that is ONE abandonment event, one rung — not two.
        let sched = Scheduler::new(config());
        let a = sched.issue(UserId(1), 0);
        let _b = sched.issue(UserId(1), 0);
        let report = sched.sweep(a.deadline + 1);
        assert_eq!(report.expired, 2);
        assert_eq!(report.reissue_backlog, 1);
        assert_eq!(report.fallback_ready, 0);
        let snapshot = sched.user_snapshot(UserId(1)).unwrap();
        assert_eq!(snapshot.attempts, 1, "siblings must not stack attempts");
    }

    #[test]
    fn superseded_lease_expiry_does_not_climb_the_ladder() {
        let sched = Scheduler::new(config());
        // Two sibling leases; the first completes (epoch bump), the second
        // is abandoned. Its expiry must NOT re-enqueue the user — their
        // neighbourhood was just refreshed.
        let a = sched.issue(UserId(1), 0);
        let b = sched.issue(UserId(1), 0);
        sched
            .complete(a.user, a.lease, a.epoch, &ok_neighbors(), 1, |_| true)
            .unwrap();
        let report = sched.sweep(b.deadline + 1);
        assert_eq!(report.expired, 1, "the abandoned sibling still expires");
        assert_eq!(report.reissue_backlog, 0, "no spurious recovery");
        assert_eq!(report.fallback_ready, 0);
        // And the next request is a plain grant, not a churn re-issue.
        // (The *staleness queue* may still pick user 1 — they are the
        // oldest-refreshed user — but that is priority, not recovery.)
        let next = sched.issue(UserId(2), b.deadline + 2);
        assert!(!next.reissue);
        assert_eq!(sched.stats().reissued(), 0);
    }

    #[test]
    fn sibling_lease_goes_stale_after_first_completion() {
        let sched = Scheduler::new(config());
        // Two browsers request the same user concurrently.
        let a = sched.issue(UserId(5), 0);
        let b = sched.issue(UserId(5), 0);
        assert_eq!(a.epoch, b.epoch);

        let first = sched.complete(a.user, a.lease, a.epoch, &ok_neighbors(), 1, |_| true);
        assert_eq!(first, Ok(()));
        // The sibling's epoch is now stale: exactly-once application.
        let second = sched.complete(b.user, b.lease, b.epoch, &ok_neighbors(), 2, |_| true);
        assert_eq!(second, Err(RejectReason::StaleEpoch));
        assert_eq!(sched.stats().completed(), 1);
    }

    #[test]
    fn staleness_priority_serves_the_most_starved_user() {
        let sched = Scheduler::new(config());
        // Register three users at t=0 by issuing + completing once.
        for u in 1..=3u32 {
            let g = sched.issue(UserId(u), 0);
            sched
                .complete(g.user, g.lease, g.epoch, &ok_neighbors(), 0, |_| true)
                .unwrap();
        }
        // User 2 accumulates votes; users 1 and 3 stay quiet.
        sched.note_vote(UserId(2), 5);
        sched.note_vote(UserId(2), 6);

        // User 3 requests a job — but user 2 is more urgent, so the
        // scheduler hands user 2's job to user 3's browser.
        let grant = sched.issue(UserId(3), 10);
        assert_eq!(grant.user, UserId(2));

        // While user 2's job is in flight, the next request self-serves.
        let grant = sched.issue(UserId(3), 11);
        assert_eq!(grant.user, UserId(3));
    }

    #[test]
    fn age_breaks_ties_between_voteless_users() {
        let sched = Scheduler::new(SchedConfig {
            age_weight: 1.0,
            ..config()
        });
        let g = sched.issue(UserId(1), 0);
        sched
            .complete(g.user, g.lease, g.epoch, &ok_neighbors(), 0, |_| true)
            .unwrap();
        let g = sched.issue(UserId(2), 50);
        sched
            .complete(g.user, g.lease, g.epoch, &ok_neighbors(), 50, |_| true)
            .unwrap();
        // Both voteless; user 1 is older. A request from a *fresh* user 3
        // (priority 0 at registration) is answered with user 1's job.
        let grant = sched.issue(UserId(3), 100);
        assert_eq!(grant.user, UserId(1));
    }

    #[test]
    fn overdue_users_tracks_unserviced_votes() {
        let sched = Scheduler::new(config());
        sched.note_vote(UserId(1), 0);
        sched.note_vote(UserId(2), 90);
        assert_eq!(sched.overdue_users(100, 50), vec![UserId(1)]);
        // Completing user 1 clears them.
        let g = sched.issue(UserId(1), 100);
        assert_eq!(g.user, UserId(1));
        sched
            .complete(g.user, g.lease, g.epoch, &ok_neighbors(), 101, |_| true)
            .unwrap();
        assert!(sched.overdue_users(150, 60).is_empty());
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let sched = Scheduler::new(config());
        assert!(sched.issue_many(&[], 0).is_empty());
        sched.note_votes(&[], 0);
        assert_eq!(sched.user_count(), 0);
        assert_eq!(sched.stats().issued(), 0);
    }
}
