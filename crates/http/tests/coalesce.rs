//! Coalescing equivalence: traffic served through the reactor front-end's
//! gather-and-batch path must be **byte-identical** to the scalar
//! `build_job` + encode pipeline.
//!
//! The populations here disable the sampler's random leg
//! (`random_candidates = 0`), which makes every personalization job a pure
//! function of table state — so concurrent arrival order (which the OS
//! scheduler controls) cannot change any response, and each client's body
//! can be checked against a twin server driven scalarly.

use hyrec_core::{ItemId, Neighbor, Neighborhood, UserId, Vote};
use hyrec_http::api;
use hyrec_http::{BatchPolicy, HttpClient, ReactorServer};
use hyrec_server::{HyRecConfig, HyRecServer, JobEncoder};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const USERS: u32 = 48;
const K: usize = 4;

/// A deterministic population: dense profiles in five taste groups and a
/// warm ring-shaped KNN table. No RNG is consumed building jobs.
fn populated_server() -> Arc<HyRecServer> {
    let server = HyRecServer::with_config(
        HyRecConfig::builder()
            .k(K)
            .r(5)
            .random_candidates(0)
            .anonymize_users(false)
            .seed(77)
            .build(),
    );
    for u in 0..USERS {
        for i in 0..10u32 {
            server.record(UserId(u), ItemId((u % 5) * 100 + i), Vote::Like);
        }
    }
    for u in 0..USERS {
        let hood = Neighborhood::from_neighbors((1..=K as u32).map(|d| Neighbor {
            user: UserId((u + d) % USERS),
            similarity: 0.5,
        }));
        server.knn_table().update(UserId(u), hood);
    }
    Arc::new(server)
}

fn spawn_reactor(server: &Arc<HyRecServer>) -> (hyrec_http::reactor::ReactorHandle, HttpClient) {
    let (handle, client, _) = spawn_sharded(server, 1);
    (handle, client)
}

/// Spins up the HyRec API on a `reactors`-sharded reactor front-end.
fn spawn_sharded(
    server: &Arc<HyRecServer>,
    reactors: usize,
) -> (
    hyrec_http::reactor::ReactorHandle,
    HttpClient,
    std::net::SocketAddr,
) {
    let policy = BatchPolicy {
        max_batch: 32,
        gather_window: Duration::from_millis(2),
    };
    let router = api::hyrec_router_with(Arc::clone(server), Arc::new(JobEncoder::new()), policy);
    let http = ReactorServer::bind_sharded("127.0.0.1:0", reactors, 2).expect("bind reactor");
    let addr = http.local_addr();
    let handle = http.serve(router);
    (handle, HttpClient::new(addr), addr)
}

#[test]
fn concurrent_online_bodies_match_sequential_scalar_path() {
    let live = populated_server();
    let twin = populated_server();
    let (handle, client) = spawn_reactor(&live);

    // Expected bodies from the scalar pipeline: build_job + encode per
    // user, on the twin.
    let twin_encoder = JobEncoder::new();
    let expected: Vec<Vec<u8>> = (0..USERS)
        .map(|u| twin_encoder.encode(&twin.build_job(UserId(u))))
        .collect();

    let mut joins = Vec::new();
    for u in 0..USERS {
        let expected_body = expected[u as usize].clone();
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let response = client.get(&format!("/online/?uid={u}")).expect("online");
            assert_eq!(response.status, 200);
            assert_eq!(
                response.body, expected_body,
                "coalesced body diverged for uid {u}"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Every request went through the batch route, and the server really
    // did coalesce (fewer flushes than requests is expected but not
    // guaranteed under scheduling; the hard assertions are above).
    let stats = handle.stats();
    assert_eq!(stats.batched_requests(), u64::from(USERS));
    assert!(stats.batches() >= 1);
    assert_eq!(live.requests_served(), u64::from(USERS));
    handle.stop();
}

#[test]
fn interleaved_rate_and_online_traffic_matches_scalar_path() {
    let live = populated_server();
    let twin = populated_server();
    let (handle, client) = spawn_reactor(&live);

    // Phase 1 — a concurrent burst of votes: one new like and one flip per
    // user. Each user touches only their own profile, so cross-user arrival
    // order is immaterial and the twin can ingest scalarly.
    let mut joins = Vec::new();
    for u in 0..USERS {
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let fresh = client
                .get(&format!("/rate/?uid={u}&item={}&like=1", 1000 + u))
                .expect("rate like");
            assert_eq!(fresh.status, 200);
            assert!(
                String::from_utf8_lossy(&fresh.body).contains("\"changed\":true"),
                "new like must change the profile"
            );
            let flip = client
                .get(&format!("/rate/?uid={u}&item={}&like=0", (u % 5) * 100))
                .expect("rate flip");
            assert_eq!(flip.status, 200);
            assert!(String::from_utf8_lossy(&flip.body).contains("\"changed\":true"));
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for u in 0..USERS {
        assert!(twin.record(UserId(u), ItemId(1000 + u), Vote::Like));
        assert!(twin.record(UserId(u), ItemId((u % 5) * 100), Vote::Dislike));
    }

    // Phase 2 — a concurrent burst of job requests against the mutated
    // tables, checked byte-for-byte against the twin's scalar pipeline.
    let twin_encoder = JobEncoder::new();
    let expected: Vec<Vec<u8>> = (0..USERS)
        .map(|u| twin_encoder.encode(&twin.build_job(UserId(u))))
        .collect();
    let mut joins = Vec::new();
    for u in 0..USERS {
        let expected_body = expected[u as usize].clone();
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let response = client.get(&format!("/online/?uid={u}")).expect("online");
            assert_eq!(response.status, 200);
            assert_eq!(
                response.body, expected_body,
                "post-ingest body diverged for uid {u}"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // The coalesced ingest produced identical profile state.
    for u in 0..USERS {
        assert_eq!(
            live.profile_of(UserId(u)),
            twin.profile_of(UserId(u)),
            "profile diverged for uid {u}"
        );
    }
    handle.stop();
}

#[test]
fn concurrent_knn_posts_match_scalar_apply() {
    use hyrec_client::Widget;

    let live = populated_server();
    let twin = populated_server();
    let (handle, client) = spawn_reactor(&live);

    // Widgets compute deterministic updates from twin-built jobs, then
    // report them back concurrently through the coalesced POST /neighbors/.
    let widget = Widget::new();
    let updates: Vec<_> = (0..USERS)
        .map(|u| widget.run_job(&twin.build_job(UserId(u))).update)
        .collect();

    let mut joins = Vec::new();
    for update in updates.clone() {
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let response = client
                .post("/neighbors/", &update.encode())
                .expect("post update");
            assert_eq!(response.status, 200);
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for update in &updates {
        twin.apply_update(update);
    }
    for u in 0..USERS {
        assert_eq!(
            live.knn_of(UserId(u)),
            twin.knn_of(UserId(u)),
            "knn diverged for uid {u}"
        );
    }
    assert_eq!(live.updates_applied(), twin.updates_applied());
    handle.stop();
}

#[test]
fn pipelined_keep_alive_bodies_match_scalar_path_in_order() {
    // The keep-alive acceptance check: each "browser" holds one persistent
    // connection and pipelines several /online/ calls back-to-back. The
    // batched responses must come back on the right connection, in request
    // order, byte-identical (modulo the Connection header) to the scalar
    // pipeline — and the pipelined bursts must actually reach the batch
    // layer as ready-made batches.
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const PIPELINE: u32 = 3;
    let live = populated_server();
    let twin = populated_server();
    let (handle, client) = spawn_reactor(&live);
    let addr = {
        // Recover the address from a throwaway request (spawn_reactor only
        // hands back a client).
        drop(client);
        handle.addr()
    };

    let twin_encoder = JobEncoder::new();
    let expected: Vec<Vec<u8>> = (0..USERS)
        .map(|u| twin_encoder.encode(&twin.build_job(UserId(u))))
        .collect();

    let mut joins = Vec::new();
    for conn_index in 0..USERS / PIPELINE {
        let uids: Vec<u32> = (0..PIPELINE).map(|i| conn_index * PIPELINE + i).collect();
        let expected: Vec<Vec<u8>> = uids.iter().map(|&u| expected[u as usize].clone()).collect();
        joins.push(thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut wire = Vec::new();
            for &u in &uids {
                wire.extend_from_slice(
                    format!("GET /online/?uid={u} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
                );
            }
            stream.write_all(&wire).expect("pipeline requests");

            let mut buf = Vec::new();
            let mut chunk = [0u8; 16 * 1024];
            let mut received = 0usize;
            while received < uids.len() {
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-pipeline");
                buf.extend_from_slice(&chunk[..n]);
                while let Some((response, consumed)) =
                    hyrec_http::Response::try_parse(&buf).expect("parse")
                {
                    buf.drain(..consumed);
                    assert_eq!(response.status, 200);
                    assert_eq!(
                        response.body, expected[received],
                        "pipelined body diverged for uid {} (position {received})",
                        uids[received]
                    );
                    assert_eq!(response.header("connection"), Some("keep-alive"));
                    received += 1;
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(stats.batched_requests(), u64::from(USERS));
    assert_eq!(stats.connections(), u64::from(USERS / PIPELINE));
    // Every connection pipelined PIPELINE requests in one write, so the
    // gather layer must have seen far fewer batches than requests.
    assert!(
        stats.batches() <= u64::from(USERS / PIPELINE),
        "pipelining failed to widen batching: {} batches for {} requests",
        stats.batches(),
        USERS
    );
    handle.stop();
}

#[test]
fn sharded_online_bodies_match_single_reactor_byte_for_byte() {
    // The multi-reactor acceptance check: the same deterministic
    // population served through four event loops must produce responses
    // byte-identical to the single-reactor path (and, transitively, to the
    // scalar build_job + encode pipeline).
    let single_population = populated_server();
    let sharded_population = populated_server();
    let (single_handle, single_client) = spawn_reactor(&single_population);
    let (sharded_handle, sharded_client, _) = spawn_sharded(&sharded_population, 4);

    let mut joins = Vec::new();
    for u in 0..USERS {
        let single_client = single_client.clone();
        let sharded_client = sharded_client.clone();
        joins.push(thread::spawn(move || {
            let single = single_client
                .get(&format!("/online/?uid={u}"))
                .expect("1-reactor online");
            let sharded = sharded_client
                .get(&format!("/online/?uid={u}"))
                .expect("4-reactor online");
            assert_eq!(single.status, 200);
            assert_eq!(sharded.status, 200);
            assert_eq!(
                sharded.body, single.body,
                "sharded body diverged from the 1-reactor path for uid {u}"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let stats = sharded_handle.stats();
    assert_eq!(stats.batched_requests(), u64::from(USERS));
    assert_eq!(stats.shards().len(), 4);
    assert_eq!(
        stats.shards().iter().map(|s| s.requests()).sum::<u64>(),
        stats.requests(),
        "per-shard request counts must sum to the aggregate"
    );
    single_handle.stop();
    sharded_handle.stop();
}

#[test]
fn sharded_interleaved_rate_and_online_traffic_matches_scalar_path() {
    // The interleaved ingest + query replay of the 1-reactor suite, driven
    // against 4 shards: coalesced /rate/ ingest arriving on different
    // event loops must leave the tables byte-identical to scalar ingest,
    // and the follow-up /online/ bodies must match the scalar pipeline.
    let live = populated_server();
    let twin = populated_server();
    let (handle, client, _) = spawn_sharded(&live, 4);

    let mut joins = Vec::new();
    for u in 0..USERS {
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let fresh = client
                .get(&format!("/rate/?uid={u}&item={}&like=1", 1000 + u))
                .expect("rate like");
            assert_eq!(fresh.status, 200);
            let flip = client
                .get(&format!("/rate/?uid={u}&item={}&like=0", (u % 5) * 100))
                .expect("rate flip");
            assert_eq!(flip.status, 200);
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for u in 0..USERS {
        assert!(twin.record(UserId(u), ItemId(1000 + u), Vote::Like));
        assert!(twin.record(UserId(u), ItemId((u % 5) * 100), Vote::Dislike));
    }

    let twin_encoder = JobEncoder::new();
    let expected: Vec<Vec<u8>> = (0..USERS)
        .map(|u| twin_encoder.encode(&twin.build_job(UserId(u))))
        .collect();
    let mut joins = Vec::new();
    for u in 0..USERS {
        let expected_body = expected[u as usize].clone();
        let client = client.clone();
        joins.push(thread::spawn(move || {
            let response = client.get(&format!("/online/?uid={u}")).expect("online");
            assert_eq!(response.status, 200);
            assert_eq!(
                response.body, expected_body,
                "post-ingest sharded body diverged for uid {u}"
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    for u in 0..USERS {
        assert_eq!(
            live.profile_of(UserId(u)),
            twin.profile_of(UserId(u)),
            "profile diverged for uid {u}"
        );
    }
    handle.stop();
}

#[test]
fn sharded_pipelined_keep_alive_bodies_stay_in_order_per_connection() {
    // The pipelined keep-alive replay against 4 shards: each "browser"
    // pipelines several /online/ calls on one persistent connection, which
    // lives on exactly one shard — responses must come back on the right
    // connection, in request order, byte-identical to the scalar pipeline,
    // even while other connections exercise other shards concurrently.
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const PIPELINE: u32 = 3;
    let live = populated_server();
    let twin = populated_server();
    let (handle, client, addr) = spawn_sharded(&live, 4);
    drop(client);

    let twin_encoder = JobEncoder::new();
    let expected: Vec<Vec<u8>> = (0..USERS)
        .map(|u| twin_encoder.encode(&twin.build_job(UserId(u))))
        .collect();

    let mut joins = Vec::new();
    for conn_index in 0..USERS / PIPELINE {
        let uids: Vec<u32> = (0..PIPELINE).map(|i| conn_index * PIPELINE + i).collect();
        let expected: Vec<Vec<u8>> = uids.iter().map(|&u| expected[u as usize].clone()).collect();
        joins.push(thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut wire = Vec::new();
            for &u in &uids {
                wire.extend_from_slice(
                    format!("GET /online/?uid={u} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
                );
            }
            stream.write_all(&wire).expect("pipeline requests");

            let mut buf = Vec::new();
            let mut chunk = [0u8; 16 * 1024];
            let mut received = 0usize;
            while received < uids.len() {
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-pipeline");
                buf.extend_from_slice(&chunk[..n]);
                while let Some((response, consumed)) =
                    hyrec_http::Response::try_parse(&buf).expect("parse")
                {
                    buf.drain(..consumed);
                    assert_eq!(response.status, 200);
                    assert_eq!(
                        response.body, expected[received],
                        "pipelined body diverged for uid {} (position {received})",
                        uids[received]
                    );
                    received += 1;
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(stats.batched_requests(), u64::from(USERS));
    assert_eq!(stats.connections(), u64::from(USERS / PIPELINE));
    assert_eq!(
        stats.shards().iter().map(|s| s.connections()).sum::<u64>(),
        stats.connections()
    );
    handle.stop();
}

#[test]
fn trailing_slash_forms_are_equivalent_over_the_reactor() {
    let live = populated_server();
    let twin = populated_server();
    let (handle, client) = spawn_reactor(&live);
    let twin_encoder = JobEncoder::new();
    let expected = twin_encoder.encode(&twin.build_job(UserId(3)));
    let response = client.get("/online?uid=3").expect("bare path");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected);
    handle.stop();
}
