//! Property tests for pipelined/partial-read request framing — the
//! invariant the reactor's rolling read buffer depends on: however the
//! network fragments a byte stream of back-to-back requests,
//! `Request::try_parse` yields exactly those requests, in order, with no
//! bytes lost or invented — plus the end-to-end sharded form: pipelined
//! bursts split across a live multi-reactor server never reorder within a
//! connection.

use hyrec_http::{BatchPolicy, ReactorServer, Request, Response, Router};
use proptest::prelude::*;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// A generated request: method selector, path segment, query id, body.
type Spec = (bool, u8, u16, Vec<u8>);

/// Renders a spec as wire bytes. POSTs carry a `Content-Length` body;
/// GETs carry a query instead.
fn render(spec: &Spec) -> Vec<u8> {
    let (is_post, path_seg, qid, body) = spec;
    if *is_post {
        let mut wire = format!(
            "POST /seg{path_seg}/ HTTP/1.1\r\nhost: hyrec\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body);
        wire
    } else {
        format!("GET /seg{path_seg}/?qid={qid} HTTP/1.1\r\nhost: hyrec\r\n\r\n").into_bytes()
    }
}

/// Feeds `stream` into a rolling buffer in chunks split at the given
/// boundaries, draining complete frames exactly the way the reactor does.
/// Returns the parsed requests and the total bytes consumed.
fn frame_chunked(stream: &[u8], cuts: &[usize]) -> (Vec<Request>, usize) {
    let mut buf: Vec<u8> = Vec::new();
    let mut parsed = Vec::new();
    let mut consumed_total = 0usize;
    let feed = |buf: &mut Vec<u8>, parsed: &mut Vec<Request>, total: &mut usize| {
        while let Some((request, consumed)) =
            Request::try_parse(buf).expect("generated requests are well-formed")
        {
            buf.drain(..consumed);
            *total += consumed;
            parsed.push(request);
        }
    };
    let mut offset = 0usize;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut <= offset {
            continue;
        }
        buf.extend_from_slice(&stream[offset..cut]);
        offset = cut;
        feed(&mut buf, &mut parsed, &mut consumed_total);
    }
    if offset < stream.len() {
        buf.extend_from_slice(&stream[offset..]);
        feed(&mut buf, &mut parsed, &mut consumed_total);
    }
    assert!(buf.is_empty(), "unconsumed leftover bytes: {}", buf.len());
    (parsed, consumed_total)
}

/// One 4-shard reactor shared by every proptest case (spinning a server
/// per case would dominate the run). Never stopped: the handle lives for
/// the test process, and process exit tears the threads down.
fn sharded_echo_addr() -> SocketAddr {
    static SERVER: OnceLock<(hyrec_http::reactor::ReactorHandle, SocketAddr)> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let mut router = Router::new();
            // A coalescable route: bursts may gather across shards, so the
            // reorder queue and cross-shard completion fan-out are on the
            // hot path of this property.
            router.route(
                "GET",
                "/b/",
                BatchPolicy {
                    max_batch: 8,
                    gather_window: Duration::from_millis(1),
                },
                |requests: &[Request], out: &mut Vec<Response>| {
                    out.extend(requests.iter().map(|r| {
                        let qid = r.query_param("qid").unwrap_or("?");
                        Response::ok("text/plain", format!("q{qid}").into_bytes())
                    }));
                },
            );
            // And a scalar route for mixed-traffic bursts.
            router.get("/s/", |r: &Request| {
                let qid = r.query_param("qid").unwrap_or("?");
                Response::ok("text/plain", format!("q{qid}").into_bytes())
            });
            let server =
                ReactorServer::bind_sharded("127.0.0.1:0", 4, 1).expect("bind sharded reactor");
            let addr = server.local_addr();
            (server.serve(router), addr)
        })
        .1
}

/// Pipelines `qids` on one fresh connection, split into chunks at the
/// given raw cut points, then asserts the responses come back complete and
/// strictly in request order. Plain asserts (not `prop_assert`): this runs
/// on spawned threads, and a panic fails the owning case just the same.
fn drive_pipelined_connection(addr: SocketAddr, qids: &[u16], raw_cuts: &[u16], batched: bool) {
    let path = if batched { "/b/" } else { "/s/" };
    let mut wire = Vec::new();
    for qid in qids {
        wire.extend_from_slice(
            format!("GET {path}?qid={qid} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
        );
    }
    let mut cuts: Vec<usize> = raw_cuts
        .iter()
        .map(|&c| c as usize % (wire.len() + 1))
        .collect();
    cuts.push(wire.len());
    cuts.sort_unstable();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut offset = 0usize;
    for cut in cuts {
        if cut > offset {
            stream.write_all(&wire[offset..cut]).expect("write chunk");
            offset = cut;
        }
    }

    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut received = 0usize;
    while received < qids.len() {
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed mid-pipeline");
        buf.extend_from_slice(&chunk[..n]);
        while let Some((response, consumed)) = Response::try_parse(&buf).expect("parse") {
            buf.drain(..consumed);
            assert_eq!(response.status, 200);
            assert_eq!(
                response.body,
                format!("q{}", qids[received]).into_bytes(),
                "response {received} out of order for burst {qids:?}"
            );
            received += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // 2–8 back-to-back requests split at arbitrary byte boundaries parse
    // to the same requests, in order, consuming every byte exactly once.
    #[test]
    fn pipelined_requests_survive_arbitrary_splits(
        specs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..200)),
            2..8usize,
        ),
        raw_cuts in proptest::collection::vec(any::<u16>(), 0..12usize),
    ) {
        let mut stream = Vec::new();
        for spec in &specs {
            stream.extend_from_slice(&render(spec));
        }
        // Map the raw cut points into (sorted) positions within the stream.
        let mut cuts: Vec<usize> = raw_cuts
            .iter()
            .map(|&c| c as usize % (stream.len() + 1))
            .collect();
        cuts.sort_unstable();

        let (parsed, consumed) = frame_chunked(&stream, &cuts);

        prop_assert_eq!(parsed.len(), specs.len());
        prop_assert_eq!(consumed, stream.len());
        for (request, spec) in parsed.iter().zip(&specs) {
            let (is_post, path_seg, qid, body) = spec;
            prop_assert_eq!(&request.path, &format!("/seg{}/", path_seg));
            if *is_post {
                prop_assert_eq!(&request.method, "POST");
                prop_assert_eq!(&request.body, body);
            } else {
                prop_assert_eq!(&request.method, "GET");
                let qid_text = qid.to_string();
                prop_assert_eq!(request.query_param("qid"), Some(qid_text.as_str()));
                prop_assert!(request.body.is_empty());
            }
            prop_assert!(request.wants_keep_alive());
        }
    }

    // Pipelined bursts landing on a live 4-shard reactor — several
    // connections at once (spread across event loops by the accept
    // sharding), each burst split at arbitrary byte boundaries, mixing
    // batched and scalar routes — must never reorder responses *within* a
    // connection: per-connection sequence numbers and the reorder queue
    // hold regardless of which shard a connection landed on or which
    // shard flushed the gather.
    #[test]
    fn sharded_pipelined_bursts_never_reorder_within_a_connection(
        conns in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u16>(), 1..6usize),
                proptest::collection::vec(any::<u16>(), 0..6usize),
                any::<bool>(),
            ),
            2..5usize,
        ),
    ) {
        let addr = sharded_echo_addr();
        let joins: Vec<_> = conns
            .into_iter()
            .map(|(qids, raw_cuts, batched)| {
                std::thread::spawn(move || {
                    drive_pipelined_connection(addr, &qids, &raw_cuts, batched);
                })
            })
            .collect();
        for join in joins {
            join.join().expect("pipelined connection thread panicked");
        }
    }

    // Byte-at-a-time delivery — the worst fragmentation the kernel can
    // produce — frames identically to one-shot delivery.
    #[test]
    fn byte_at_a_time_equals_one_shot(
        specs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40)),
            2..5usize,
        ),
    ) {
        let mut stream = Vec::new();
        for spec in &specs {
            stream.extend_from_slice(&render(spec));
        }
        let every_byte: Vec<usize> = (1..=stream.len()).collect();
        let (trickled, _) = frame_chunked(&stream, &every_byte);
        let (one_shot, _) = frame_chunked(&stream, &[stream.len()]);
        prop_assert_eq!(trickled, one_shot);
    }
}
