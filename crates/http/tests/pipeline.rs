//! Property tests for pipelined/partial-read request framing — the
//! invariant the reactor's rolling read buffer depends on: however the
//! network fragments a byte stream of back-to-back requests,
//! `Request::try_parse` yields exactly those requests, in order, with no
//! bytes lost or invented.

use hyrec_http::Request;
use proptest::prelude::*;

/// A generated request: method selector, path segment, query id, body.
type Spec = (bool, u8, u16, Vec<u8>);

/// Renders a spec as wire bytes. POSTs carry a `Content-Length` body;
/// GETs carry a query instead.
fn render(spec: &Spec) -> Vec<u8> {
    let (is_post, path_seg, qid, body) = spec;
    if *is_post {
        let mut wire = format!(
            "POST /seg{path_seg}/ HTTP/1.1\r\nhost: hyrec\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body);
        wire
    } else {
        format!("GET /seg{path_seg}/?qid={qid} HTTP/1.1\r\nhost: hyrec\r\n\r\n").into_bytes()
    }
}

/// Feeds `stream` into a rolling buffer in chunks split at the given
/// boundaries, draining complete frames exactly the way the reactor does.
/// Returns the parsed requests and the total bytes consumed.
fn frame_chunked(stream: &[u8], cuts: &[usize]) -> (Vec<Request>, usize) {
    let mut buf: Vec<u8> = Vec::new();
    let mut parsed = Vec::new();
    let mut consumed_total = 0usize;
    let feed = |buf: &mut Vec<u8>, parsed: &mut Vec<Request>, total: &mut usize| {
        while let Some((request, consumed)) =
            Request::try_parse(buf).expect("generated requests are well-formed")
        {
            buf.drain(..consumed);
            *total += consumed;
            parsed.push(request);
        }
    };
    let mut offset = 0usize;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut <= offset {
            continue;
        }
        buf.extend_from_slice(&stream[offset..cut]);
        offset = cut;
        feed(&mut buf, &mut parsed, &mut consumed_total);
    }
    if offset < stream.len() {
        buf.extend_from_slice(&stream[offset..]);
        feed(&mut buf, &mut parsed, &mut consumed_total);
    }
    assert!(buf.is_empty(), "unconsumed leftover bytes: {}", buf.len());
    (parsed, consumed_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // 2–8 back-to-back requests split at arbitrary byte boundaries parse
    // to the same requests, in order, consuming every byte exactly once.
    #[test]
    fn pipelined_requests_survive_arbitrary_splits(
        specs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..200)),
            2..8usize,
        ),
        raw_cuts in proptest::collection::vec(any::<u16>(), 0..12usize),
    ) {
        let mut stream = Vec::new();
        for spec in &specs {
            stream.extend_from_slice(&render(spec));
        }
        // Map the raw cut points into (sorted) positions within the stream.
        let mut cuts: Vec<usize> = raw_cuts
            .iter()
            .map(|&c| c as usize % (stream.len() + 1))
            .collect();
        cuts.sort_unstable();

        let (parsed, consumed) = frame_chunked(&stream, &cuts);

        prop_assert_eq!(parsed.len(), specs.len());
        prop_assert_eq!(consumed, stream.len());
        for (request, spec) in parsed.iter().zip(&specs) {
            let (is_post, path_seg, qid, body) = spec;
            prop_assert_eq!(&request.path, &format!("/seg{}/", path_seg));
            if *is_post {
                prop_assert_eq!(&request.method, "POST");
                prop_assert_eq!(&request.body, body);
            } else {
                prop_assert_eq!(&request.method, "GET");
                let qid_text = qid.to_string();
                prop_assert_eq!(request.query_param("qid"), Some(qid_text.as_str()));
                prop_assert!(request.body.is_empty());
            }
            prop_assert!(request.wants_keep_alive());
        }
    }

    // Byte-at-a-time delivery — the worst fragmentation the kernel can
    // produce — frames identically to one-shot delivery.
    #[test]
    fn byte_at_a_time_equals_one_shot(
        specs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40)),
            2..5usize,
        ),
    ) {
        let mut stream = Vec::new();
        for spec in &specs {
            stream.extend_from_slice(&render(spec));
        }
        let every_byte: Vec<usize> = (1..=stream.len()).collect();
        let (trickled, _) = frame_chunked(&stream, &every_byte);
        let (one_shot, _) = frame_chunked(&stream, &[stream.len()]);
        prop_assert_eq!(trickled, one_shot);
    }
}
