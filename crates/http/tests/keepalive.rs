//! Connection-lifetime integration tests for the reactor front-end: idle
//! reaping, the max-requests-per-connection budget, and client reconnect
//! behaviour over real sockets.

use hyrec_http::{HttpClient, ReactorServer, Request, Response, Router};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ping_router() -> Router {
    let mut router = Router::new();
    router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
    router.get("/echo", |req: &Request| {
        let msg = req.query_param("msg").unwrap_or("").to_owned();
        Response::ok("text/plain", msg.into_bytes())
    });
    router
}

/// Reads exactly one `Content-Length`-delimited response off a raw socket.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Response {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((response, consumed)) = Response::try_parse(buf).expect("valid response") {
            buf.drain(..consumed);
            return response;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before a full response arrived");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn slow_client_is_reaped_by_the_idle_sweep() {
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_idle_timeout(Duration::from_millis(200));
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    // A client that sends half a request and stalls must be hung up on —
    // dead browsers cannot pin buffers.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /ping HT").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let started = Instant::now();
    let mut chunk = [0u8; 64];
    let n = stream.read(&mut chunk).expect("reaped connections EOF");
    assert_eq!(n, 0, "expected EOF, got {n} bytes");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(150),
        "reaped suspiciously early ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "idle reaping too slow ({elapsed:?})"
    );

    // An *active* connection with the same timeout keeps working.
    let client = HttpClient::new(addr);
    assert_eq!(client.get("/ping").unwrap().status, 200);
    handle.stop();
}

#[test]
fn idle_keep_alive_connection_is_reaped_between_requests() {
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_idle_timeout(Duration::from_millis(200));
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let response = read_response(&mut stream, &mut buf);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("keep-alive"));

    // Go quiet past the idle timeout: the server hangs up.
    let mut chunk = [0u8; 64];
    let n = stream.read(&mut chunk).expect("reaped connections EOF");
    assert_eq!(n, 0, "idle keep-alive connection was not reaped");
    handle.stop();
}

#[test]
fn max_requests_budget_stamps_close_and_ends_the_connection() {
    const BUDGET: u64 = 10;
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_max_requests_per_conn(BUDGET);
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    for request_number in 1..=BUDGET {
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let response = read_response(&mut stream, &mut buf);
        assert_eq!(response.status, 200);
        let expected = if request_number < BUDGET {
            "keep-alive"
        } else {
            // The budget's last response warns the client off.
            "close"
        };
        assert_eq!(
            response.header("connection"),
            Some(expected),
            "request {request_number} of {BUDGET}"
        );
    }
    // The 11th request on a 10-max connection is never served: the server
    // has hung up, so the write may succeed (into the kernel buffer) but
    // the read sees EOF/reset, and a well-behaved client reconnects.
    let _ = stream.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n");
    let mut chunk = [0u8; 64];
    let n = stream.read(&mut chunk).unwrap_or(0);
    assert_eq!(n, 0, "connection outlived its request budget");
    assert_eq!(handle.request_count(), BUDGET);
    handle.stop();
}

#[test]
fn pipelining_past_the_budget_truncates_at_the_budget() {
    // Write 4 pipelined requests at a 2-max server: exactly 2 are served
    // (the second stamped close), the rest discarded.
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_max_requests_per_conn(2);
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut wire = Vec::new();
    for i in 0..4 {
        wire.extend_from_slice(
            format!("GET /echo?msg=m{i} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
        );
    }
    stream.write_all(&wire).unwrap();

    let mut buf = Vec::new();
    let first = read_response(&mut stream, &mut buf);
    assert_eq!(first.body, b"m0");
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = read_response(&mut stream, &mut buf);
    assert_eq!(second.body, b"m1");
    assert_eq!(second.header("connection"), Some("close"));
    // Nothing further arrives; the connection ends.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "bytes after the close response");
    assert_eq!(handle.request_count(), 2);
    handle.stop();
}

#[test]
fn deep_pipeline_with_half_close_answers_every_request() {
    // 150 pipelined requests — far past the reactor's internal pipeline
    // cap — followed by shutdown(SHUT_WR). Every buffered request must
    // still be answered, in order, as the pipeline drains; only then does
    // the connection close.
    const DEPTH: usize = 150;
    let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut wire = Vec::new();
    for i in 0..DEPTH {
        wire.extend_from_slice(
            format!("GET /echo?msg=m{i} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
        );
    }
    stream.write_all(&wire).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let mut buf = Vec::new();
    for i in 0..DEPTH {
        let response = read_response(&mut stream, &mut buf);
        assert_eq!(response.status, 200);
        assert_eq!(response.body, format!("m{i}").into_bytes(), "position {i}");
        let expected = if i + 1 < DEPTH { "keep-alive" } else { "close" };
        assert_eq!(
            response.header("connection"),
            Some(expected),
            "position {i}"
        );
    }
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty());
    assert_eq!(handle.request_count(), DEPTH as u64);
    handle.stop();
}

#[test]
fn vanished_reader_with_staged_bytes_is_reaped() {
    // A browser that requests a large body and never reads it: once the
    // socket buffers fill, the staged response stops draining, and the
    // idle sweep must reap the connection instead of pinning the write
    // buffer forever.
    let big = vec![b'x'; 8 * 1024 * 1024];
    let mut router = Router::new();
    router.get("/big", move |_| Response::ok("text/plain", big.clone()));
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_idle_timeout(Duration::from_millis(300));
    let addr = server.local_addr();
    let handle = server.serve(router);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /big HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    // Read nothing while the idle timeout elapses several times over.
    std::thread::sleep(Duration::from_millis(1500));
    // The server must have hung up mid-body: draining the socket now
    // yields strictly less than the full response (or an error once the
    // reset is observed).
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut drained = Vec::new();
    let _ = stream.read_to_end(&mut drained);
    assert!(
        drained.len() < 8 * 1024 * 1024,
        "full body delivered ({} bytes): the stalled writer was never reaped",
        drained.len()
    );
    handle.stop();
}

#[test]
fn stop_racing_a_connect_fails_fast_instead_of_hanging() {
    // Regression: `ReactorHandle::stop()` used to deregister the listener
    // from epoll but keep the fd open for the whole drain, so a connect
    // racing the stop was *accepted by the kernel* into a queue nobody
    // would ever serve — the client hung until its own timeout. The fix
    // closes the listener the moment draining starts: racing connects are
    // refused (or reset) promptly, while in-flight work still completes.
    let mut router = Router::new();
    router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
    router.get("/slow", |_| {
        std::thread::sleep(Duration::from_millis(1200));
        Response::ok("text/plain", b"slow".to_vec())
    });
    let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(router);

    // Occupy the (only) worker so the drain has something to wait for.
    let slow_client = std::thread::spawn(move || {
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(10));
        let response = client.get("/slow").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"slow");
    });
    std::thread::sleep(Duration::from_millis(300));

    let stopped = Arc::new(AtomicBool::new(false));
    let stopper = {
        let stopped = Arc::clone(&stopped);
        std::thread::spawn(move || {
            handle.stop();
            stopped.store(true, Ordering::SeqCst);
        })
    };
    // Give the drain a moment to begin (the slow handler pins it open for
    // roughly another 900 ms).
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        !stopped.load(Ordering::SeqCst),
        "drain finished early; the race window never existed"
    );

    // A connect racing the drain must resolve promptly — refused outright,
    // or (if it slipped into the queue before the close) reset on first
    // read — never parked until a client-side timeout.
    let started = Instant::now();
    match TcpStream::connect(addr) {
        Err(_) => {} // refused: the listener is really gone
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let _ = stream.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n");
            let mut chunk = [0u8; 64];
            let n = stream.read(&mut chunk).unwrap_or(0);
            assert_eq!(n, 0, "a draining server served a racing connection");
        }
    }
    let observed = started.elapsed();
    assert!(
        observed < Duration::from_millis(500),
        "racing connect took {observed:?} to resolve (listener left open during drain?)"
    );
    assert!(
        !stopped.load(Ordering::SeqCst),
        "stop() returned before the in-flight request drained"
    );

    stopper.join().unwrap();
    slow_client.join().unwrap();
}

#[test]
fn client_reconnects_transparently_across_server_close() {
    // A keep-alive client outliving its connection budget must reconnect
    // automatically — the browser-refresh pattern.
    let server = ReactorServer::bind("127.0.0.1:0", 1)
        .unwrap()
        .with_max_requests_per_conn(3);
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let client = HttpClient::new(addr);
    for round in 0..10 {
        let response = client
            .get(&format!("/echo?msg=r{round}"))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(response.status, 200);
        assert_eq!(response.body, format!("r{round}").into_bytes());
    }
    assert_eq!(handle.request_count(), 10);
    // 3-request budget → ceil(10/3) = 4 connections.
    assert_eq!(handle.stats().connections(), 4);
    handle.stop();
}

#[test]
fn explicit_connection_close_is_honoured() {
    let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    // HTTP/1.1 with `Connection: close`: served, stamped close, hung up.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let response = read_response(&mut stream, &mut buf);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty());

    // HTTP/1.0 without keep-alive defaults to close.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /ping HTTP/1.0\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let response = read_response(&mut stream, &mut buf);
    assert_eq!(response.header("connection"), Some("close"));
    handle.stop();
}

#[test]
fn close_mode_client_opens_a_connection_per_request() {
    let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(ping_router());

    let client = HttpClient::new(addr).with_keep_alive(false);
    for _ in 0..5 {
        assert_eq!(client.get("/ping").unwrap().status, 200);
    }
    let keep = HttpClient::new(addr);
    for _ in 0..5 {
        assert_eq!(keep.get("/ping").unwrap().status, 200);
    }
    // 5 close-mode connections + 1 keep-alive connection.
    assert_eq!(handle.stats().connections(), 6);
    assert_eq!(handle.request_count(), 10);
    handle.stop();
}
