//! Live-socket tests for the scheduled API surface: leases threaded
//! through `/online/` and both `/neighbors/` forms, identical validation
//! on the query and message forms, strict `/rate/` parsing (scalar and
//! coalesced), and the `/stats/` observability route.

use hyrec_client::Widget;
use hyrec_core::{ItemId, UserId, Vote};
use hyrec_http::api::{hyrec_router, hyrec_scheduled_router};
use hyrec_http::{BatchPolicy, HttpClient, HttpServer, ReactorServer};
use hyrec_sched::SchedConfig;
use hyrec_server::{HyRecServer, JobEncoder, ScheduledServer};
use hyrec_wire::{KnnUpdate, PersonalizationJob};
use std::sync::Arc;
use std::time::Duration;

fn populated_server(seed: u64) -> Arc<HyRecServer> {
    let server = Arc::new(
        HyRecServer::builder()
            .k(3)
            .r(5)
            .anonymize_users(false)
            .seed(seed)
            .build(),
    );
    for u in 0..12u32 {
        for i in 0..5u32 {
            server.record(UserId(u), ItemId(u % 3 * 100 + i), Vote::Like);
        }
    }
    server
}

fn spawn_scheduled_reactor() -> (
    hyrec_http::reactor::ReactorHandle,
    HttpClient,
    Arc<ScheduledServer>,
) {
    let scheduled = Arc::new(ScheduledServer::new(
        populated_server(5),
        SchedConfig::default(),
    ));
    let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let handle = server.serve(hyrec_scheduled_router(
        Arc::clone(&scheduled),
        Arc::new(JobEncoder::new()),
        BatchPolicy::default(),
        Some(stats),
    ));
    (handle, HttpClient::new(addr), scheduled)
}

#[test]
fn leased_round_trip_and_duplicate_rejection_over_live_sockets() {
    let (handle, client, scheduled) = spawn_scheduled_reactor();

    // 1. The job carries lease credentials on the wire.
    let response = client.get("/online/?uid=1").unwrap();
    assert_eq!(response.status, 200);
    let job = PersonalizationJob::decode(&response.body).unwrap();
    assert!(job.lease > 0, "scheduled /online/ must lease its jobs");
    assert!(job.epoch > 0);

    // 2. The widget echoes them; the completion applies exactly once.
    let update = Widget::new().run_job(&job).update;
    assert_eq!(update.lease, job.lease);
    let response = client.post("/neighbors/", &update.encode()).unwrap();
    assert_eq!(response.status, 200);
    assert!(scheduled.server().knn_of(job.uid).is_some());

    // 3. A replayed (duplicate) completion is a 409 naming the reason.
    let response = client.post("/neighbors/", &update.encode()).unwrap();
    assert_eq!(response.status, 409);
    let body = String::from_utf8_lossy(&response.body).to_string();
    assert!(body.contains("\"reject\":\"duplicate\""), "body: {body}");

    // 4. An unleased completion is a 409 too (the scheduled pipeline
    //    accepts no anonymous work).
    let unleased = KnnUpdate {
        lease: 0,
        epoch: 0,
        ..update
    };
    let response = client.post("/neighbors/", &unleased.encode()).unwrap();
    assert_eq!(response.status, 409);
    assert!(String::from_utf8_lossy(&response.body).contains("not_leased"));

    // 5. /stats/ reports the whole story, scheduler and reactor halves.
    let response = client.get("/stats/").unwrap();
    assert_eq!(response.status, 200);
    let body = String::from_utf8_lossy(&response.body).to_string();
    assert!(body.contains("\"sched\":{\"issued\":1"), "body: {body}");
    assert!(body.contains("\"completed\":1"), "body: {body}");
    assert!(body.contains("\"duplicate\":1"), "body: {body}");
    assert!(body.contains("\"not_leased\":1"), "body: {body}");
    assert!(body.contains("\"reactor\":{\"requests\":"), "body: {body}");
    handle.stop();
}

#[test]
fn get_form_presents_lease_credentials() {
    let (handle, client, scheduled) = spawn_scheduled_reactor();
    let job = PersonalizationJob::decode(&client.get("/online/?uid=2").unwrap().body).unwrap();

    // The Table 1 query form with the lease attached applies…
    let path = format!(
        "/neighbors/?uid={}&lease={}&epoch={}&id0=5&sim0=0.75",
        job.uid.raw(),
        job.lease,
        job.epoch
    );
    let response = client.get(&path).unwrap();
    assert_eq!(response.status, 200, "leased GET form must apply");
    let hood = scheduled.server().knn_of(job.uid).unwrap();
    assert_eq!(hood.best().unwrap().user, UserId(5));

    // …and without credentials the same form is a 409.
    let response = client.get("/neighbors/?uid=3&id0=5&sim0=0.5").unwrap();
    assert_eq!(response.status, 409);

    // Malformed payloads stay a 400 on the scheduled router too (the
    // scheduler's own validation, surfaced with the reject reason). The
    // lease must be live — payload probing without one is just a 409, so
    // unauthenticated clients learn nothing about ids.
    let job = PersonalizationJob::decode(&client.get("/online/?uid=3").unwrap().body).unwrap();
    let bad = format!(
        "/neighbors/?uid={}&lease={}&epoch={}&id0=5&sim0=9.5",
        job.uid.raw(),
        job.lease,
        job.epoch
    );
    let response = client.get(&bad).unwrap();
    assert_eq!(response.status, 400);
    assert!(String::from_utf8_lossy(&response.body).contains("out_of_range_similarity"));
    // …and the lease survived the payload reject: a valid retry applies.
    let good = format!(
        "/neighbors/?uid={}&lease={}&epoch={}&id0=5&sim0=0.5",
        job.uid.raw(),
        job.lease,
        job.epoch
    );
    assert_eq!(client.get(&good).unwrap().status, 200);

    // A stale epoch (superseded by the completions above) is recognized.
    let replay = client.get(&path).unwrap();
    assert_eq!(replay.status, 409);
    assert_eq!(scheduled.scheduler().stats().completed(), 2);
    handle.stop();
}

#[test]
fn unknown_uids_get_unleased_cold_start_jobs_and_mint_no_state() {
    let (handle, client, scheduled) = spawn_scheduled_reactor();
    let users_before = scheduled.scheduler().user_count();

    // A browser-invented uid: cold-start job per the paper, but unleased —
    // no lease-table entry, no scheduler registration, and abandoning it
    // can never buy a server-side fallback compute.
    let response = client.get("/online/?uid=4000000000").unwrap();
    assert_eq!(response.status, 200);
    let job = PersonalizationJob::decode(&response.body).unwrap();
    assert_eq!(job.uid, UserId(4_000_000_000));
    assert_eq!((job.lease, job.epoch), (0, 0), "phantom uid must not lease");
    assert!(job.profile.is_empty(), "cold start");
    assert_eq!(scheduled.scheduler().user_count(), users_before);
    assert_eq!(scheduled.scheduler().outstanding_leases(), 0);

    // One recorded vote makes the user real: the next fetch is leased.
    let response = client.get("/rate/?uid=4000000000&item=5&like=1").unwrap();
    assert_eq!(response.status, 200);
    let job =
        PersonalizationJob::decode(&client.get("/online/?uid=4000000000").unwrap().body).unwrap();
    assert!(job.lease > 0, "voted user must lease");
    handle.stop();
}

#[test]
fn scheduler_pick_overrides_the_requested_uid() {
    let (handle, client, scheduled) = spawn_scheduled_reactor();
    // User 7 votes a lot; user 2 asks next. With default weights the
    // staleness queue outranks the fresh requester, so user 2's browser is
    // handed user 7's job.
    for _ in 0..3 {
        let response = client.get("/rate/?uid=7&item=901&like=1").unwrap();
        assert_eq!(response.status, 200);
        let response = client.get("/rate/?uid=7&item=901&like=0").unwrap();
        assert_eq!(response.status, 200);
    }
    let job = PersonalizationJob::decode(&client.get("/online/?uid=2").unwrap().body).unwrap();
    assert_eq!(job.uid, UserId(7), "staleness pick must override");
    assert!(scheduled.scheduler().outstanding_leases() >= 1);
    handle.stop();
}

/// Satellite: `GET /neighbors/` query-form and `POST /neighbors/` body
/// must validate identically on the *plain* router — NaN, negative and
/// `> 1` similarities and malformed id/sim pairs are a 400 and are never
/// applied.
#[test]
fn neighbors_validation_is_identical_across_forms() {
    let hyrec = populated_server(9);
    let server = HttpServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));
    let client = HttpClient::new(addr);

    let bad_update = |sim: f64| KnnUpdate {
        uid: UserId(4),
        lease: 0,
        epoch: 0,
        neighbors: vec![hyrec_core::Neighbor {
            user: UserId(5),
            similarity: sim,
        }],
    };

    // Query form.
    for query in [
        "/neighbors/?uid=4&id0=5&sim0=NaN",
        "/neighbors/?uid=4&id0=5&sim0=-0.25",
        "/neighbors/?uid=4&id0=5&sim0=1.5",
        "/neighbors/?uid=4&id0=5&sim0=inf",
        "/neighbors/?uid=4&id0=5&sim0=0.5&sim1=0.5", // sim without id
        "/neighbors/?uid=4&id0=+5&sim0=0.5",         // sloppy id
        "/neighbors/?uid=4&id0=5&id1=6&sim1=0.9",    // gapped sim run
        "/neighbors/?uid=4&id0=5&id2=6&sim0=0.5",    // gapped id run
    ] {
        let response = client.get(query).unwrap();
        assert_eq!(response.status, 400, "{query} must be rejected");
    }

    // Body form: the same out-of-range payloads, same verdict. (NaN is
    // unrepresentable in JSON, so its body-form twin dies in decoding —
    // also a 400.)
    for sim in [-0.25, 1.5, f64::INFINITY] {
        let response = client
            .post("/neighbors/", &bad_update(sim).encode())
            .unwrap();
        assert_eq!(response.status, 400, "sim {sim} must be rejected");
    }

    // Nothing was applied by any of the rejected forms.
    assert!(hyrec.knn_of(UserId(4)).is_none());
    assert_eq!(hyrec.updates_applied(), 0);

    // The valid twin passes on both forms.
    assert_eq!(
        client
            .get("/neighbors/?uid=4&id0=5&sim0=0.75")
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client
            .post("/neighbors/", &bad_update(0.75).encode())
            .unwrap()
            .status,
        200
    );
    assert_eq!(hyrec.updates_applied(), 2);
    handle.stop();
}

/// Satellite: `/rate/` must 400 on any `like` that is not exactly `0` or
/// `1`, and strict ids — no lenient coercion.
#[test]
fn rate_is_strict_about_votes() {
    let hyrec = populated_server(13);
    let server = HttpServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));
    let client = HttpClient::new(addr);

    for query in [
        "/rate/?uid=1&item=2&like=2",
        "/rate/?uid=1&item=2&like=-1",
        "/rate/?uid=1&item=2&like=01",
        "/rate/?uid=1&item=2&like=true",
        "/rate/?uid=1&item=2&like=",
        "/rate/?uid=1&item=2",
        "/rate/?uid=+1&item=2&like=1",
        "/rate/?uid=1&item=2x&like=1",
    ] {
        let response = client.get(query).unwrap();
        assert_eq!(response.status, 400, "{query} must be rejected");
    }
    // No profile side effects from any rejected vote.
    assert!(!hyrec.profile_of(UserId(1)).unwrap().likes(ItemId(2)));
    assert_eq!(
        client.get("/rate/?uid=1&item=2&like=1").unwrap().status,
        200
    );
    assert!(hyrec.profile_of(UserId(1)).unwrap().likes(ItemId(2)));
    handle.stop();
}

/// Satellite: a bad vote inside a coalesced burst fails only its own
/// request — the valid votes in the same gathered batch all land.
#[test]
fn bad_vote_in_coalesced_burst_fails_alone() {
    let hyrec = populated_server(21);
    let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));

    // A barrier-aligned burst inside one gather window: 7 valid votes and
    // one malformed one.
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let threads: Vec<_> = (0..8u32)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let client = HttpClient::new(addr).with_timeout(Duration::from_secs(10));
                let path = if i == 3 {
                    format!("/rate/?uid={i}&item=700&like=7")
                } else {
                    format!("/rate/?uid={i}&item=700&like=1")
                };
                barrier.wait();
                (i, client.get(&path).unwrap().status)
            })
        })
        .collect();
    for thread in threads {
        let (i, status) = thread.join().unwrap();
        if i == 3 {
            assert_eq!(status, 400, "the bad vote must fail");
        } else {
            assert_eq!(status, 200, "vote {i} must not be poisoned by the bad one");
        }
    }
    for i in 0..8u32 {
        let likes = hyrec
            .profile_of(UserId(i))
            .is_some_and(|p| p.likes(ItemId(700)));
        assert_eq!(likes, i != 3, "vote {i} application state");
    }
    handle.stop();
}

/// The scheduled pipeline under a real coalescing reactor with churn:
/// half the fetched jobs are abandoned; the sweeper re-issues and
/// eventually recovers every user server-side.
#[test]
fn scheduled_reactor_recovers_abandoned_browsers() {
    let scheduled = Arc::new(ScheduledServer::new(
        populated_server(33),
        SchedConfig {
            lease_timeout: 50, // ms
            max_reissues: 1,
            ..SchedConfig::default()
        },
    ));
    let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let handle = server.serve(hyrec_scheduled_router(
        Arc::clone(&scheduled),
        Arc::new(JobEncoder::new()),
        BatchPolicy::default(),
        Some(stats),
    ));
    let sweeper = scheduled.spawn_sweeper(Duration::from_millis(10));
    let client = HttpClient::new(addr);
    let widget = Widget::new();

    for round in 0..6u32 {
        for u in 0..12u32 {
            let response = client.get(&format!("/online/?uid={u}")).unwrap();
            assert_eq!(response.status, 200);
            if (round + u) % 2 == 0 {
                continue; // browser navigates away
            }
            let job = PersonalizationJob::decode(&response.body).unwrap();
            let update = widget.run_job(&job).update;
            // 200 or 409 (superseded by the sweeper) are both legitimate.
            let status = client.post("/neighbors/", &update.encode()).unwrap().status;
            assert!(status == 200 || status == 409, "unexpected status {status}");
        }
    }

    // Every abandoned lease drains through re-issue or fallback: wait for
    // live leases, the re-issue backlog and the fallback pen to all empty.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (report, _) = scheduled.sweep_and_recover(scheduled.now_ms());
        if report.reissue_backlog == 0
            && report.fallback_ready == 0
            && scheduled.scheduler().outstanding_leases() == 0
        {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "leases never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    sweeper.stop();

    let stats = scheduled.scheduler().stats();
    assert!(stats.expired() > 0, "churn must expire leases");
    assert!(stats.completed() > 0);
    assert!(
        stats.reissued() + stats.fallbacks() > 0,
        "recovery must have fired"
    );
    // Every user ends with a neighbourhood despite 50% abandonment.
    for u in 0..12u32 {
        assert!(
            scheduled.server().knn_of(UserId(u)).is_some(),
            "u{u} lost to churn"
        );
    }
    handle.stop();
}
