//! A fixed-size thread pool shared by both front-ends.
//!
//! Deliberately simple: a bounded crew of workers pulling closures off a
//! shared channel. Behind the blocking [`crate::server::HttpServer`] a job
//! is a whole keep-alive *connection* (the pool bounds concurrent
//! connections — the mechanism behind the response-time knee in Figure 9);
//! behind the [`crate::reactor::ReactorServer`] a job is one request or
//! one coalesced batch, so persistent connections never pin a worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool.
///
/// ```
/// use hyrec_http::threadpool::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || { counter.fetch_add(1, Ordering::SeqCst); });
/// }
/// pool.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 100);
/// ```
pub struct ThreadPool {
    workers: Vec<thread::JoinHandle<()>>,
    sender: Option<mpsc::Sender<Job>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || loop {
                    let job = {
                        // Recover rather than propagate poisoning: the
                        // receiver is only *held* across `recv`, which
                        // cannot leave it mid-mutation, and a dead worker
                        // here would silently shrink the crew forever.
                        let guard = match receiver.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.recv()
                    };
                    match job {
                        // A panicking job must cost only itself, never the
                        // worker: the front-ends size their pools assuming
                        // every member stays alive (one bad handler taking
                        // a worker down would wedge a 1-worker reactor).
                        Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                        Err(_) => break, // channel closed: shut down
                    }
                })
            })
            .collect();
        Self {
            workers,
            sender: Some(sender),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; it runs as soon as a worker is free.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ThreadPool::join`].
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool already joined")
            .send(Box::new(job))
            .expect("workers are alive while sender exists");
    }

    /// Closes the queue and waits for all submitted jobs to finish.
    pub fn join(mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn concurrency_is_bounded_by_size() {
        let pool = ThreadPool::new(2);
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            pool.execute(move || {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(5));
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        // A 1-worker pool: if the panicking job killed its worker, the
        // follow-up jobs would never run and join() would still return
        // (channel closed) with the counter short.
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 0..6 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                if round % 2 == 0 {
                    panic!("job {round} blew up");
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn drop_waits_for_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
