//! The epoll reactor front-end: one event-loop thread multiplexing every
//! connection, a small worker pool doing the request work, and a
//! coalescing layer gathering concurrent requests to batch routes.
//!
//! The thread-per-connection [`crate::server::HttpServer`] holds one OS
//! thread hostage per in-flight connection — fine for hundreds of browsers,
//! fatal for the millions HyRec targets (Section 4's premise is that the
//! front-end stays *cheap* as the population grows). The reactor replaces
//! it with:
//!
//! * **Nonblocking accept + per-connection state machines.** Each
//!   connection owns a read accumulation buffer and a staged write buffer;
//!   both are recycled through a buffer pool when the connection closes, so
//!   steady-state serving allocates nothing per connection.
//! * **A readiness loop** over raw `epoll` (see [`crate::sys`]; no external
//!   dependencies), level-triggered, with a wakeup `eventfd` for response
//!   completions coming back from the workers.
//! * **Request coalescing.** Requests resolving to a
//!   [batch route](crate::router::Router::get_batched) are *gathered*
//!   rather than dispatched: a batch flushes to the worker pool when it
//!   reaches the route's `max_batch`, when its oldest request has waited
//!   the route's `gather_window`, or as soon as the pipeline goes idle —
//!   so a lightly-loaded server answers immediately while a saturated one
//!   funnels whole bursts of `GET /online/` into single
//!   `HyRecServer::build_jobs` calls.
//!
//! Shutdown drains: pending batches are flushed, in-flight work completes,
//! staged responses are written out, then the loop exits and the pool
//! joins.

use crate::request::Request;
use crate::response::Response;
use crate::router::{BatchRoute, Resolution, Router};
use crate::sys::{Epoll, EpollEvent, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::threadpool::ThreadPool;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Epoll token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token of the completion-wakeup eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Read chunk size for the nonblocking read loop.
const READ_CHUNK: usize = 16 * 1024;
/// Hard cap on a connection's accumulated request bytes (headers + body
/// caps plus framing slack; `Request::try_parse` rejects earlier in
/// practice).
const MAX_CONN_BUF: usize = 17 * 1024 * 1024;
/// Connections idle in the reading state longer than this are dropped.
const READ_IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// How long a draining shutdown waits before abandoning in-flight work.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Buffers recycled through the pool are capped at this many.
const BUFFER_POOL_CAP: usize = 1024;
/// Buffers that grew beyond this are dropped instead of recycled, so a
/// burst of large requests/responses cannot pin gigabytes in the pool.
const BUFFER_RECYCLE_MAX: usize = 64 * 1024;
/// How long the listener stays deregistered after an accept failure like
/// EMFILE (level-triggered readiness would otherwise busy-spin the loop).
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);
/// Accept-queue depth requested from the kernel (clamped by
/// `net.core.somaxconn`).
const ACCEPT_BACKLOG: i32 = 4096;

/// Serving statistics, shared between the reactor thread and its handle.
#[derive(Debug, Default)]
pub struct ReactorStats {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
}

impl ReactorStats {
    /// Number of complete requests parsed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of coalesced batches flushed to batch routes.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of requests served through batch routes (so
    /// `batched_requests / batches` is the achieved mean batch size).
    #[must_use]
    pub fn batched_requests(&self) -> u64 {
        self.batched_requests.load(Ordering::Relaxed)
    }
}

/// An epoll-based nonblocking HTTP/1.1 server (`Connection: close`
/// semantics, one request per connection — same protocol surface as
/// [`crate::server::HttpServer`], different concurrency architecture).
pub struct ReactorServer {
    listener: TcpListener,
    workers: usize,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("addr", &self.local_addr)
            .field("workers", &self.workers)
            .finish()
    }
}

/// Handle for observing and stopping a running reactor.
#[derive(Debug)]
pub struct ReactorHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    stats: Arc<ReactorStats>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// Address the server is bound to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of complete requests parsed so far.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.stats.requests()
    }

    /// Serving statistics (batch counts expose achieved coalescing).
    #[must_use]
    pub fn stats(&self) -> &ReactorStats {
        &self.stats
    }

    /// Signals shutdown and waits for the reactor to drain and exit.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

impl ReactorServer {
    /// Binds to `addr` (`127.0.0.1:0` for an ephemeral port) with `workers`
    /// request-processing threads behind the event loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, workers: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // std listens with backlog 128; a reactor shares one thread between
        // accepts and I/O, so connection bursts need real queue depth.
        crate::sys::widen_backlog(listener.as_raw_fd(), ACCEPT_BACKLOG)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            workers: workers.max(1),
            local_addr,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts the event loop on a background thread; returns a handle for
    /// shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the epoll instance or wakeup eventfd cannot be created
    /// (resource exhaustion at startup).
    #[must_use]
    pub fn serve(self, router: Router) -> ReactorHandle {
        let shutdown = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new().expect("create eventfd"));
        let stats = Arc::new(ReactorStats::default());
        let addr = self.local_addr;
        let reactor = Reactor::new(
            self.listener,
            self.workers,
            router,
            Arc::clone(&shutdown),
            Arc::clone(&waker),
            Arc::clone(&stats),
        );
        let thread = thread::spawn(move || reactor.run());
        ReactorHandle {
            addr,
            shutdown,
            waker,
            stats,
            thread: Some(thread),
        }
    }
}

/// Per-connection lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// A parsed request is with the workers (or gathered in a pending
    /// batch); no epoll interest.
    Busy,
    /// A staged response is being written out.
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Read accumulation buffer (recycled through the buffer pool).
    buf: Vec<u8>,
    /// Staged response bytes (recycled through the buffer pool).
    out: Vec<u8>,
    written: usize,
    since: Instant,
}

/// Connection storage with generation-tagged slots: a token names a
/// (slot, generation) pair so completions for closed-and-recycled
/// connections are recognized as stale and dropped.
struct Slab {
    slots: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(conn);
                index
            }
            None => {
                self.slots.push(Some(conn));
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        token_of(index, self.generations[index])
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (index, generation) = parts_of(token);
        if self.generations.get(index) == Some(&generation) {
            self.slots.get_mut(index).and_then(Option::as_mut)
        } else {
            None
        }
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let (index, generation) = parts_of(token);
        if self.generations.get(index) != Some(&generation) {
            return None;
        }
        let conn = self.slots.get_mut(index).and_then(Option::take);
        if conn.is_some() {
            self.generations[index] = self.generations[index].wrapping_add(1);
            self.free.push(index);
        }
        conn
    }

    fn live_tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(index, _)| token_of(index, self.generations[index]))
            .collect()
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

fn token_of(index: usize, generation: u32) -> u64 {
    (index as u64) | (u64::from(generation) << 32)
}

fn parts_of(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// A batch being gathered for one batch route.
struct PendingBatch {
    entries: Vec<(u64, Request)>,
    oldest: Instant,
}

struct Reactor {
    listener: TcpListener,
    workers: usize,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    stats: Arc<ReactorStats>,
    completions: Arc<Mutex<Vec<(u64, Response)>>>,
    in_flight: Arc<AtomicUsize>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        workers: usize,
        router: Router,
        shutdown: Arc<AtomicBool>,
        waker: Arc<Waker>,
        stats: Arc<ReactorStats>,
    ) -> Self {
        Self {
            listener,
            workers,
            router: Arc::new(router),
            shutdown,
            waker,
            stats,
            completions: Arc::new(Mutex::new(Vec::new())),
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run(self) {
        let Ok(epoll) = Epoll::new() else { return };
        if self.listener.set_nonblocking(true).is_err() {
            return;
        }
        if epoll
            .add(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
            .is_err()
        {
            return;
        }
        let _ = epoll.add(self.waker.raw_fd(), EPOLLIN, WAKER_TOKEN);

        let pool = ThreadPool::new(self.workers);
        let mut slab = Slab::new();
        let mut buffer_pool: Vec<Vec<u8>> = Vec::new();
        let mut pending: Vec<Option<PendingBatch>> =
            (0..self.router.batch_route_count()).map(|_| None).collect();
        let mut events = vec![EpollEvent::zeroed(); 1024];
        let mut accepting = true;
        // While Some, the listener is deregistered (accept failed with
        // e.g. EMFILE); re-armed once the deadline passes so a full fd
        // table degrades to brief accept pauses instead of a busy spin.
        let mut accept_paused_until: Option<Instant> = None;
        let mut last_sweep = Instant::now();
        let mut drain_started: Option<Instant> = None;

        loop {
            if let Some(deadline) = accept_paused_until {
                if accepting && Instant::now() >= deadline {
                    accept_paused_until = None;
                    let _ = epoll.add(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN);
                }
            }
            let mut timeout = self.wait_timeout(&pending, drain_started.is_some());
            if accept_paused_until.is_some() {
                timeout = timeout.min(i32::try_from(ACCEPT_BACKOFF.as_millis()).unwrap_or(50));
            }
            let ready = epoll.wait(&mut events, Some(timeout)).unwrap_or(0);

            for event in &events[..ready] {
                match event.token() {
                    LISTENER_TOKEN => {
                        if accepting && !self.accept_ready(&epoll, &mut slab, &mut buffer_pool) {
                            // Resource exhaustion: back off the listener.
                            let _ = epoll.delete(self.listener.as_raw_fd());
                            accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                        }
                    }
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(
                        &epoll,
                        &mut slab,
                        &mut buffer_pool,
                        &mut pending,
                        &pool,
                        token,
                        event.readiness(),
                    ),
                }
            }

            // Responses computed by the workers since the last pass.
            let done: Vec<(u64, Response)> =
                std::mem::take(&mut *self.completions.lock().expect("completions poisoned"));
            for (token, response) in done {
                self.stage_response(&epoll, &mut slab, &mut buffer_pool, token, &response);
            }

            // Flush gathered batches: full batches flushed at push time;
            // here we flush expired windows, everything on an idle
            // pipeline, and everything when draining.
            let idle_pipeline = self.in_flight.load(Ordering::Acquire) == 0;
            let now = Instant::now();
            for index in 0..pending.len() {
                let due = pending[index].as_ref().is_some_and(|batch| {
                    idle_pipeline
                        || drain_started.is_some()
                        || now.duration_since(batch.oldest)
                            >= self.router.batch_route(index).policy().gather_window
                });
                if due {
                    self.flush_batch(&mut pending, index, &pool);
                }
            }

            // Periodic sweep of connections stuck mid-request.
            if now.duration_since(last_sweep) >= Duration::from_secs(1) {
                last_sweep = now;
                for token in slab.live_tokens() {
                    let expired = slab.get_mut(token).is_some_and(|conn| {
                        matches!(conn.state, ConnState::Reading)
                            && now.duration_since(conn.since) > READ_IDLE_TIMEOUT
                    });
                    if expired {
                        self.close_conn(&epoll, &mut slab, &mut buffer_pool, token);
                    }
                }
            }

            // Shutdown: stop accepting, drop half-read connections, then
            // drain in-flight work and staged writes before exiting.
            if self.shutdown.load(Ordering::SeqCst) && drain_started.is_none() {
                drain_started = Some(now);
                accepting = false;
                let _ = epoll.delete(self.listener.as_raw_fd());
                for token in slab.live_tokens() {
                    let reading = slab
                        .get_mut(token)
                        .is_some_and(|conn| matches!(conn.state, ConnState::Reading));
                    if reading {
                        self.close_conn(&epoll, &mut slab, &mut buffer_pool, token);
                    }
                }
            }
            if let Some(started) = drain_started {
                let drained = pending.iter().all(Option::is_none)
                    && self.in_flight.load(Ordering::Acquire) == 0
                    && self
                        .completions
                        .lock()
                        .expect("completions poisoned")
                        .is_empty()
                    && slab.is_empty();
                if drained || now.duration_since(started) > DRAIN_DEADLINE {
                    break;
                }
            }
        }
        pool.join();
    }

    /// Epoll timeout: tight when a gather window is pending, long when
    /// idle, short while draining.
    fn wait_timeout(&self, pending: &[Option<PendingBatch>], draining: bool) -> i32 {
        if draining {
            return 10;
        }
        let mut timeout: i32 = 1_000;
        let now = Instant::now();
        for (index, batch) in pending.iter().enumerate() {
            if let Some(batch) = batch {
                let window = self.router.batch_route(index).policy().gather_window;
                let elapsed = now.duration_since(batch.oldest);
                let remaining = window.saturating_sub(elapsed);
                // Round up so we never spin on a sub-millisecond remainder.
                let ms = i32::try_from(remaining.as_millis())
                    .unwrap_or(i32::MAX)
                    .max(1);
                timeout = timeout.min(ms);
            }
        }
        timeout
    }

    /// Drains the accept queue. Returns `false` when accepting failed in a
    /// way that warrants backing the listener off (fd exhaustion and
    /// friends — with level-triggered readiness, leaving the listener
    /// registered would spin the loop at 100% CPU).
    fn accept_ready(&self, epoll: &Epoll, slab: &mut Slab, buffer_pool: &mut Vec<Vec<u8>>) -> bool {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn {
                        stream,
                        state: ConnState::Reading,
                        buf: buffer_pool.pop().unwrap_or_default(),
                        out: buffer_pool.pop().unwrap_or_default(),
                        written: 0,
                        since: Instant::now(),
                    };
                    let token = slab.insert(conn);
                    let fd = slab
                        .get_mut(token)
                        .expect("just inserted")
                        .stream
                        .as_raw_fd();
                    if epoll.add(fd, EPOLLIN, token).is_err() {
                        let _ = slab.remove(token);
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return true,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                // Per-connection handshake failures are transient; retry.
                Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(_) => return false,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn conn_ready(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        pending: &mut [Option<PendingBatch>],
        pool: &ThreadPool,
        token: u64,
        readiness: u32,
    ) {
        let Some(conn) = slab.get_mut(token) else {
            return; // Stale token: connection already recycled.
        };
        let state = conn.state;
        if readiness & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(epoll, slab, buffer_pool, token);
            return;
        }
        match state {
            ConnState::Reading if readiness & EPOLLIN != 0 => {
                self.read_ready(epoll, slab, buffer_pool, pending, pool, token);
            }
            ConnState::Writing if readiness & EPOLLOUT != 0 => {
                self.write_ready(epoll, slab, buffer_pool, token);
            }
            _ => {}
        }
    }

    /// Pulls everything currently readable, then tries to frame a request.
    fn read_ready(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        pending: &mut [Option<PendingBatch>],
        pool: &ThreadPool,
        token: u64,
    ) {
        let outcome = {
            let conn = slab.get_mut(token).expect("caller validated token");
            pull_and_frame(conn)
        };
        match outcome {
            ReadOutcome::Partial => {}
            ReadOutcome::Closed => self.close_conn(epoll, slab, buffer_pool, token),
            ReadOutcome::Reject(reason) => {
                self.finish_with(
                    epoll,
                    slab,
                    buffer_pool,
                    token,
                    &Response::bad_request(&reason),
                );
            }
            ReadOutcome::Complete(request) => {
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = slab.get_mut(token) {
                    conn.state = ConnState::Busy;
                    let fd = conn.stream.as_raw_fd();
                    let _ = epoll.modify(fd, 0, token);
                }
                self.dispatch(epoll, slab, buffer_pool, pending, pool, token, request);
            }
        }
    }

    /// Routes a parsed request: batch routes gather, scalar routes go to
    /// the pool, and routing misses answer immediately.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        pending: &mut [Option<PendingBatch>],
        pool: &ThreadPool,
        token: u64,
        request: Request,
    ) {
        match self.router.resolve(&request) {
            Resolution::Batched(index) => {
                let batch = pending[index].get_or_insert_with(|| PendingBatch {
                    entries: Vec::new(),
                    oldest: Instant::now(),
                });
                batch.entries.push((token, request));
                if batch.entries.len() >= self.router.batch_route(index).policy().max_batch {
                    self.flush_batch(pending, index, pool);
                }
            }
            Resolution::Scalar(handler) => {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                let completions = Arc::clone(&self.completions);
                let waker = Arc::clone(&self.waker);
                let in_flight = Arc::clone(&self.in_flight);
                pool.execute(move || {
                    let response = catch_unwind(AssertUnwindSafe(|| handler(&request)))
                        .unwrap_or_else(|_| Response::error(500, "handler panicked"));
                    completions
                        .lock()
                        .expect("completions poisoned")
                        .push((token, response));
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    waker.wake();
                });
            }
            Resolution::MethodNotAllowed => {
                self.finish_with(
                    epoll,
                    slab,
                    buffer_pool,
                    token,
                    &Response::error(405, "method not allowed"),
                );
            }
            Resolution::NotFound => {
                self.finish_with(epoll, slab, buffer_pool, token, &Response::not_found());
            }
        }
    }

    /// Hands a gathered batch to the worker pool as one handler call.
    fn flush_batch(&self, pending: &mut [Option<PendingBatch>], index: usize, pool: &ThreadPool) {
        let Some(batch) = pending[index].take() else {
            return;
        };
        let (tokens, requests): (Vec<u64>, Vec<Request>) = batch.entries.into_iter().unzip();
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .batched_requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let route: Arc<BatchRoute> = Arc::clone(self.router.batch_route(index));
        let completions = Arc::clone(&self.completions);
        let waker = Arc::clone(&self.waker);
        let in_flight = Arc::clone(&self.in_flight);
        pool.execute(move || {
            let responses =
                catch_unwind(AssertUnwindSafe(|| route.run(&requests))).unwrap_or_else(|_| {
                    (0..tokens.len())
                        .map(|_| Response::error(500, "batch handler panicked"))
                        .collect()
                });
            let mut queue = completions.lock().expect("completions poisoned");
            for (token, response) in tokens.into_iter().zip(responses) {
                queue.push((token, response));
            }
            drop(queue);
            in_flight.fetch_sub(1, Ordering::AcqRel);
            waker.wake();
        });
    }

    /// Stages a worker-produced response onto its (still live) connection.
    fn stage_response(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
        response: &Response,
    ) {
        if slab.get_mut(token).is_none() {
            return; // Connection died while the response was computed.
        }
        self.finish_with(epoll, slab, buffer_pool, token, response);
    }

    /// Serializes `response` into the connection's write buffer and starts
    /// (and usually completes) the write.
    fn finish_with(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
        response: &Response,
    ) {
        let Some(conn) = slab.get_mut(token) else {
            return;
        };
        conn.out.clear();
        response.write_into(&mut conn.out);
        conn.written = 0;
        conn.state = ConnState::Writing;
        conn.since = Instant::now();
        self.write_ready(epoll, slab, buffer_pool, token);
    }

    /// Writes as much of the staged response as the socket accepts;
    /// closes on completion, re-arms `EPOLLOUT` on short writes.
    fn write_ready(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        let outcome = {
            let Some(conn) = slab.get_mut(token) else {
                return;
            };
            push_staged(conn)
        };
        match outcome {
            WriteOutcome::Blocked(fd) => {
                let _ = epoll.modify(fd, EPOLLOUT, token);
            }
            WriteOutcome::Done | WriteOutcome::Failed => {
                self.close_conn(epoll, slab, buffer_pool, token);
            }
        }
    }

    /// Tears a connection down and recycles its buffers.
    #[allow(clippy::unused_self)]
    fn close_conn(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        if let Some(mut conn) = slab.remove(token) {
            let _ = epoll.delete(conn.stream.as_raw_fd());
            for mut buf in [std::mem::take(&mut conn.buf), std::mem::take(&mut conn.out)] {
                if buffer_pool.len() < BUFFER_POOL_CAP && buf.capacity() <= BUFFER_RECYCLE_MAX {
                    buf.clear();
                    buffer_pool.push(buf);
                }
            }
        }
    }
}

/// Result of draining a readable socket into its accumulation buffer.
enum ReadOutcome {
    /// No complete request yet; keep the connection in `Reading`.
    Partial,
    /// Peer closed or the socket failed; drop the connection.
    Closed,
    /// The buffer can never become a valid request; answer 400.
    Reject(String),
    /// A full request was framed.
    Complete(Request),
}

/// Reads everything currently available, then attempts to frame a request.
fn pull_and_frame(conn: &mut Conn) -> ReadOutcome {
    let mut chunk = [0u8; READ_CHUNK];
    let mut eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer half-closed its write side. A complete request may
                // already be buffered (shutdown-after-send is a legal
                // `Connection: close` client pattern) — fall through to
                // framing instead of dropping it.
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                // Progress resets the idle clock: the sweep drops stalled
                // connections, not slow-but-active ones.
                conn.since = Instant::now();
                if conn.buf.len() > MAX_CONN_BUF {
                    return ReadOutcome::Reject("request too large".to_owned());
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    match Request::try_parse(&conn.buf) {
        // EOF with an incomplete frame can never complete: drop it.
        Ok(None) if eof => ReadOutcome::Closed,
        Ok(None) => ReadOutcome::Partial,
        Ok(Some((request, _consumed))) => ReadOutcome::Complete(request),
        Err(reason) => ReadOutcome::Reject(reason),
    }
}

/// Result of pushing staged response bytes to the socket.
enum WriteOutcome {
    /// Everything written; close the connection (`Connection: close`).
    Done,
    /// Socket buffer full; re-arm `EPOLLOUT` on this fd.
    Blocked(std::os::fd::RawFd),
    /// The socket failed; drop the connection.
    Failed,
}

/// Writes staged bytes until done or the socket stops accepting.
fn push_staged(conn: &mut Conn) -> WriteOutcome {
    loop {
        if conn.written >= conn.out.len() {
            return WriteOutcome::Done;
        }
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return WriteOutcome::Failed,
            Ok(n) => conn.written += n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                return WriteOutcome::Blocked(conn.stream.as_raw_fd());
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return WriteOutcome::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::router::BatchPolicy;

    fn ping_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
        router.get("/echo", |req: &Request| {
            let msg = req.query_param("msg").unwrap_or("").to_owned();
            Response::ok("text/plain", msg.into_bytes())
        });
        router
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let client = HttpClient::new(addr);
        let response = client.get("/ping").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"pong");

        let response = client.get("/echo?msg=hello").unwrap();
        assert_eq!(response.body, b"hello");

        let response = client.get("/missing").unwrap();
        assert_eq!(response.status, 404);

        assert!(handle.request_count() >= 3);
        handle.stop();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut joins = Vec::new();
        for _ in 0..32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get("/ping").unwrap();
                assert_eq!(response.status, 200);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(handle.request_count() >= 32);
        handle.stop();
    }

    #[test]
    fn batch_route_coalesces_concurrent_requests() {
        // Deterministic gathering: two slow scalar requests occupy both
        // workers, so the batch route's requests pile up (the pipeline is
        // never idle and the gather window is far away) and flush together
        // once the workers free up.
        let mut router = Router::new();
        router.get("/slow", |_| {
            thread::sleep(Duration::from_millis(500));
            Response::ok("text/plain", b"slow".to_vec())
        });
        router.get_batched(
            "/batch/",
            BatchPolicy {
                max_batch: 64,
                gather_window: Duration::from_secs(10),
            },
            |requests| {
                requests
                    .iter()
                    .map(|r| {
                        let uid = r.query_param("uid").unwrap_or("?");
                        Response::ok("text/plain", format!("u{uid}").into_bytes())
                    })
                    .collect()
            },
        );
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let mut joins = Vec::new();
        for _ in 0..2 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                assert_eq!(client.get("/slow").unwrap().status, 200);
            }));
        }
        // Give the slow requests time to reach the workers.
        thread::sleep(Duration::from_millis(100));
        for uid in 0..24u32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get(&format!("/batch/?uid={uid}")).unwrap();
                assert_eq!(response.status, 200);
                assert_eq!(response.body, format!("u{uid}").into_bytes());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.batched_requests(), 24);
        assert!(stats.batches() >= 1);
        // The 24 requests gathered while the workers were busy; even
        // allowing stragglers, they must have coalesced into far fewer
        // flushes than requests.
        assert!(
            stats.batches() <= 4,
            "coalescing regressed: {} batches for 24 requests",
            stats.batches()
        );
        handle.stop();
    }

    #[test]
    fn half_closed_client_still_gets_a_response() {
        // shutdown(SHUT_WR) after sending is a legal Connection: close
        // client pattern; the buffered request must still be served.
        use std::io::{Read as _, Write as _};
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
        assert!(response.ends_with("pong"), "got: {response}");
        handle.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read as _, Write as _};
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
        handle.stop();
    }

    #[test]
    fn wrong_method_and_missing_route_status_codes() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        let client = HttpClient::new(addr);
        assert_eq!(client.post("/ping", b"x").unwrap().status, 405);
        assert_eq!(client.get("/nope").unwrap().status, 404);
        handle.stop();
    }

    #[test]
    fn stop_terminates_event_loop() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        handle.stop();
        let client = HttpClient::new(addr);
        assert!(client.get("/ping").is_err());
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        // Open a connection and send nothing.
        let _idle = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown hung on an idle connection"
        );
    }

    #[test]
    fn large_response_survives_partial_writes() {
        // A body far beyond any socket buffer exercises the EPOLLOUT path.
        let big = vec![b'x'; 8 * 1024 * 1024];
        let expected = big.clone();
        let mut router = Router::new();
        router.get("/big", move |_| Response::ok("text/plain", big.clone()));
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
        let response = client.get("/big").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected);
        handle.stop();
    }
}
