//! The epoll reactor front-end: N event-loop threads ("shards"), each
//! multiplexing its own subset of the connections, over one **shared**
//! worker pool, router, and request-coalescing gather layer.
//!
//! The thread-per-connection [`crate::server::HttpServer`] holds one OS
//! thread hostage per in-flight connection — fine for hundreds of browsers,
//! fatal for the millions HyRec targets (Section 4's premise is that the
//! front-end stays *cheap* as the population grows). The reactor replaces
//! it with:
//!
//! * **Persistent, pipelined connections.** Each connection owns a rolling
//!   read buffer that may hold several back-to-back requests at once and a
//!   staged write buffer; both are recycled through a buffer pool when the
//!   connection closes. Requests are numbered per connection and responses
//!   flush strictly in request order (a reorder queue holds completions
//!   that finish early), so browsers holding one socket across many
//!   Table 1 calls — and pipelining them — are served correctly and
//!   cheaply: no per-request TCP connect/accept at all.
//! * **Connection lifetime management.** Each response's `Connection`
//!   header is derived per request ([`Request::wants_keep_alive`] ∧
//!   requests-served < [`ReactorServer::with_max_requests_per_conn`] ∧ not
//!   shutting down); an idle sweep reaps connections that have sat quiet
//!   longer than [`ReactorServer::with_idle_timeout`] so dead browsers do
//!   not pin buffers.
//! * **Multi-reactor accept sharding.** One event loop saturates a core
//!   before the workers do, so [`ReactorServer::bind_sharded`] spins one
//!   epoll loop per shard. With kernel support each shard owns a private
//!   `SO_REUSEPORT` listener and the kernel hashes incoming connections
//!   across them ([`AcceptSharding::ReusePort`]); without it, shard 0
//!   doubles as the accept thread and hands accepted sockets off
//!   round-robin to the other shards' inboxes
//!   ([`AcceptSharding::HandOff`]). A connection lives on exactly one
//!   shard for its whole lifetime either way, so the per-connection
//!   ordering machinery needs no cross-shard coordination.
//! * **A readiness loop** per shard over raw `epoll` (see [`crate::sys`];
//!   no external dependencies), level-triggered, with a wakeup `eventfd`
//!   per shard for response completions coming back from the workers.
//! * **Process-wide request coalescing.** Requests resolving to a route
//!   whose [`crate::BatchPolicy`] allows batching are *gathered* rather
//!   than dispatched — into one gather shared by **all** shards (see
//!   [`crate::router`]'s `Gather`), so concurrent `/online/` calls
//!   coalesce across the whole process, not per shard. A batch flushes to
//!   the worker pool when it reaches the route's `max_batch`, when its
//!   oldest request has waited the route's `gather_window`, or as soon as
//!   the pipeline goes idle. Pipelining widens this: a browser that writes
//!   three `/online/` calls back-to-back delivers a ready-made batch in a
//!   single read, without paying the gather window as latency.
//!
//! Shutdown drains every shard: listeners close immediately (so racing
//! connects are refused instead of sitting accepted-but-unserved in a dead
//! queue), pending batches are flushed, in-flight work completes, staged
//! responses are written out (stamped `Connection: close`), then each loop
//! exits, the threads join deterministically, and the shared pool joins.

use crate::request::Request;
use crate::response::{Disposition, Response};
use crate::router::{Gather, GatheredBatch, Resolution, Route, Router};
use crate::sys::{self, Epoll, EpollEvent, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::threadpool::ThreadPool;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Epoll token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token of the completion-wakeup eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Read chunk size for the nonblocking read loop.
const READ_CHUNK: usize = 16 * 1024;
/// Hard cap on a connection's accumulated request bytes (headers + body
/// caps plus framing slack; `Request::try_parse` rejects earlier in
/// practice).
const MAX_CONN_BUF: usize = 17 * 1024 * 1024;
/// Default idle timeout: connections with nothing in flight that stay
/// quiet longer than this are reaped.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// Cap on responses outstanding per connection: framing pauses (bytes stay
/// buffered) until earlier responses flush, bounding per-connection work a
/// pipelining client can force into the queue.
const MAX_PIPELINE: u64 = 64;
/// Cap on staged-but-unwritten response bytes per connection: framing also
/// pauses while this much output awaits a slow (or vanished) reader, so a
/// pipelining client that never reads cannot grow the write buffer without
/// bound.
const MAX_STAGED_OUT: usize = 1024 * 1024;
/// How long a draining shutdown waits before abandoning in-flight work.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Buffers recycled through a shard's pool are capped at this many.
const BUFFER_POOL_CAP: usize = 1024;
/// Buffers that grew beyond this are dropped instead of recycled, so a
/// burst of large requests/responses cannot pin gigabytes in the pool.
const BUFFER_RECYCLE_MAX: usize = 64 * 1024;
/// How long a listener stays deregistered after an accept failure like
/// EMFILE (level-triggered readiness would otherwise busy-spin the loop).
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);
/// Accept-queue depth requested from the kernel (clamped by
/// `net.core.somaxconn`); per listener, so kernel-sharded binds get this
/// much queue *per shard*.
const ACCEPT_BACKLOG: i32 = 4096;

/// Destination of a response: (shard, connection token, sequence number).
type Dest = (usize, u64, u64);

/// How accepted connections are distributed across reactor shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptSharding {
    /// Probe the kernel: [`AcceptSharding::ReusePort`] when supported
    /// (Linux ≥ 3.9), [`AcceptSharding::HandOff`] otherwise.
    Auto,
    /// One `SO_REUSEPORT` listener per shard: the kernel hashes each
    /// incoming connection onto one listener's private accept queue, so
    /// accepts never cross threads and no shard is a bottleneck.
    ReusePort,
    /// A single listener owned by shard 0, which doubles as the accept
    /// thread: it accepts every connection and hands the socket off
    /// round-robin to the shards' inboxes (keep-alive makes the hand-off
    /// cheap — it is paid once per *connection*, not per request).
    HandOff,
}

/// Per-shard serving counters (one entry per reactor event loop).
#[derive(Debug, Default)]
pub struct ShardStats {
    requests: AtomicU64,
    connections: AtomicU64,
}

impl ShardStats {
    /// Complete requests parsed by this shard.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections served by this shard.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

/// Serving statistics: a process-wide atomic aggregate shared by every
/// reactor shard, with per-shard breakdowns for observing the accept
/// sharding (kernel hash or round-robin) actually spreading load.
#[derive(Debug)]
pub struct ReactorStats {
    requests: AtomicU64,
    connections: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    shards: Vec<ShardStats>,
}

impl ReactorStats {
    fn with_shards(shards: usize) -> Self {
        Self {
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            shards: (0..shards).map(|_| ShardStats::default()).collect(),
        }
    }

    /// Number of complete requests parsed, across all shards.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of connections accepted (so `requests / connections` is the
    /// achieved keep-alive reuse factor), across all shards.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Number of coalesced batches flushed to batched routes. Batches are
    /// gathered process-wide, so there is no per-shard breakdown.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of requests served through batched routes (so
    /// `batched_requests / batches` is the achieved mean batch size).
    #[must_use]
    pub fn batched_requests(&self) -> u64 {
        self.batched_requests.load(Ordering::Relaxed)
    }

    /// Per-shard breakdowns, indexed by shard id.
    #[must_use]
    pub fn shards(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Serializes the counters as a compact JSON object (the reactor half
    /// of the HyRec `/stats/` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"requests\":{},\"connections\":{}}}",
                    s.requests(),
                    s.connections()
                )
            })
            .collect();
        format!(
            "{{\"requests\":{},\"connections\":{},\"batches\":{},\
             \"batched_requests\":{},\"shards\":[{}]}}",
            self.requests(),
            self.connections(),
            self.batches(),
            self.batched_requests(),
            shards.join(",")
        )
    }
}

/// An epoll-based nonblocking HTTP/1.1 server with persistent (keep-alive,
/// pipelined) connections, optionally sharded across several reactor event
/// loops — same protocol surface as [`crate::server::HttpServer`],
/// different concurrency architecture.
pub struct ReactorServer {
    /// One listener per shard in [`AcceptSharding::ReusePort`] mode;
    /// exactly one (owned by shard 0) in [`AcceptSharding::HandOff`] mode.
    listeners: Vec<TcpListener>,
    /// Resolved mode — never [`AcceptSharding::Auto`].
    mode: AcceptSharding,
    reactors: usize,
    workers: usize,
    local_addr: SocketAddr,
    idle_timeout: Duration,
    max_requests_per_conn: u64,
    /// Created at bind so callers can share it into routes; `serve` moves
    /// it into [`Shared`].
    stats: Arc<ReactorStats>,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("addr", &self.local_addr)
            .field("reactors", &self.reactors)
            .field("accept_sharding", &self.mode)
            .field("workers", &self.workers)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_requests_per_conn", &self.max_requests_per_conn)
            .finish()
    }
}

/// Handle for observing and stopping a running reactor.
pub struct ReactorHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("addr", &self.addr)
            .field("reactors", &self.threads.len())
            .finish()
    }
}

impl ReactorHandle {
    /// Address the server is bound to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of complete requests parsed so far, across all shards.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.shared.stats.requests()
    }

    /// Serving statistics (batch and connection counts expose achieved
    /// coalescing and keep-alive reuse; per-shard breakdowns expose the
    /// accept sharding).
    #[must_use]
    pub fn stats(&self) -> &ReactorStats {
        &self.shared.stats
    }

    /// Signals shutdown and waits for every reactor shard to drain and
    /// exit, then for the shared worker pool to join.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Fan the shutdown out to every loop: each shard owns an eventfd.
        for mailbox in self.shared.mailboxes.iter() {
            mailbox.waker.wake();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Belt and braces for the hand-off race: any socket still sitting
        // in an inbox is closed now (prompt reset), not when the process
        // tears the mailboxes down.
        for mailbox in self.shared.mailboxes.iter() {
            mailbox.handoff.lock().clear();
        }
        // Dropping the handle's `Arc<Shared>` (the last one once every
        // shard thread has exited) runs `ThreadPool::drop`, which joins the
        // workers — so by the time `stop` returns, every thread is gone.
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

impl ReactorServer {
    /// Binds a single-reactor server to `addr` (`127.0.0.1:0` for an
    /// ephemeral port) with `workers` request-processing threads behind
    /// the event loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, workers: usize) -> io::Result<Self> {
        // One shard needs no kernel accept sharding: plain listener.
        Self::bind_sharded_with(addr, 1, workers, AcceptSharding::HandOff)
    }

    /// Binds a server sharded across `reactors` epoll event loops over a
    /// **shared** pool of `reactors × workers_per_reactor` workers and one
    /// process-wide gather layer (so `/online/` coalescing still gathers
    /// across the whole process, not per shard). Uses kernel accept
    /// sharding (`SO_REUSEPORT`) when available, accept hand-off
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding any of the listeners.
    pub fn bind_sharded<A: ToSocketAddrs>(
        addr: A,
        reactors: usize,
        workers_per_reactor: usize,
    ) -> io::Result<Self> {
        Self::bind_sharded_with(addr, reactors, workers_per_reactor, AcceptSharding::Auto)
    }

    /// [`ReactorServer::bind_sharded`] with an explicit accept-sharding
    /// mode — tests force [`AcceptSharding::HandOff`] to exercise the
    /// fallback on kernels that *do* support `SO_REUSEPORT`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding; requesting
    /// [`AcceptSharding::ReusePort`] on a kernel without it surfaces the
    /// `setsockopt` errno.
    pub fn bind_sharded_with<A: ToSocketAddrs>(
        addr: A,
        reactors: usize,
        workers_per_reactor: usize,
        sharding: AcceptSharding,
    ) -> io::Result<Self> {
        let reactors = reactors.max(1);
        let mode = match sharding {
            AcceptSharding::Auto => {
                if reactors > 1 && sys::reuseport_supported() {
                    AcceptSharding::ReusePort
                } else {
                    AcceptSharding::HandOff
                }
            }
            explicit => explicit,
        };
        let (listeners, local_addr) = if mode == AcceptSharding::ReusePort {
            let requested = addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no socket address"))?;
            // The first bind resolves an ephemeral port; the remaining
            // shards bind the concrete address it landed on.
            let first = sys::bind_reuseport(requested, ACCEPT_BACKLOG)?;
            let concrete = first.local_addr()?;
            let mut listeners = vec![first];
            for _ in 1..reactors {
                listeners.push(sys::bind_reuseport(concrete, ACCEPT_BACKLOG)?);
            }
            (listeners, concrete)
        } else {
            let listener = TcpListener::bind(addr)?;
            // std listens with backlog 128; a reactor shares one thread
            // between accepts and I/O, so connection bursts need real
            // queue depth.
            sys::widen_backlog(listener.as_raw_fd(), ACCEPT_BACKLOG)?;
            let local_addr = listener.local_addr()?;
            (vec![listener], local_addr)
        };
        Ok(Self {
            listeners,
            mode,
            reactors,
            workers: reactors * workers_per_reactor.max(1),
            local_addr,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_requests_per_conn: u64::MAX,
            stats: Arc::new(ReactorStats::with_shards(reactors)),
        })
    }

    /// A shared handle to this server's statistics, available *before*
    /// [`Self::serve`] — so observability routes (e.g. the HyRec `/stats/`
    /// endpoint) can be registered on the router that the server will run.
    #[must_use]
    pub fn stats_handle(&self) -> Arc<ReactorStats> {
        Arc::clone(&self.stats)
    }

    /// Sets how long a connection with nothing in flight may sit quiet
    /// before the sweep reaps it (default 10 s).
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout.max(Duration::from_millis(1));
        self
    }

    /// Caps requests served per connection (default unlimited): the
    /// `n`-th response on a connection is stamped `Connection: close` and
    /// the connection ends — the standard guard against a single browser
    /// pinning server-side state forever.
    #[must_use]
    pub fn with_max_requests_per_conn(mut self, max_requests: u64) -> Self {
        self.max_requests_per_conn = max_requests.max(1);
        self
    }

    /// The bound address (shared by every shard's listener).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of reactor event loops this server will run.
    #[must_use]
    pub fn reactors(&self) -> usize {
        self.reactors
    }

    /// The resolved accept-sharding mode (never [`AcceptSharding::Auto`]).
    #[must_use]
    pub fn accept_sharding(&self) -> AcceptSharding {
        self.mode
    }

    /// Starts one event loop per shard on background threads; returns a
    /// handle for shutdown.
    ///
    /// # Panics
    ///
    /// Panics if an epoll instance, wakeup eventfd, or reactor thread
    /// cannot be created (resource exhaustion at startup).
    #[must_use]
    pub fn serve(self, router: Router) -> ReactorHandle {
        let mailboxes: Arc<Vec<Mailbox>> =
            Arc::new((0..self.reactors).map(|_| Mailbox::new()).collect());
        let gather = Gather::new(&router);
        let shared = Arc::new(Shared {
            router,
            pool: ThreadPool::new(self.workers),
            gather,
            stats: Arc::clone(&self.stats),
            shutdown: AtomicBool::new(false),
            in_flight: Arc::new(AtomicUsize::new(0)),
            mailboxes,
            idle_timeout: self.idle_timeout,
            max_requests_per_conn: self.max_requests_per_conn,
            reactors: self.reactors,
        });
        // Assign listeners: one per shard under kernel sharding, shard 0
        // only under hand-off.
        let mut slots: Vec<Option<TcpListener>> = (0..self.reactors).map(|_| None).collect();
        for (slot, listener) in slots.iter_mut().zip(self.listeners) {
            *slot = Some(listener);
        }
        let distribute = matches!(self.mode, AcceptSharding::HandOff) && self.reactors > 1;
        let threads = slots
            .into_iter()
            .enumerate()
            .map(|(id, listener)| {
                let shard = Shard {
                    id,
                    listener,
                    distribute,
                    next_handoff: 0,
                    shared: Arc::clone(&shared),
                };
                thread::Builder::new()
                    .name(format!("hyrec-reactor-{id}"))
                    .spawn(move || shard.run())
                    .expect("spawn reactor shard thread")
            })
            .collect();
        ReactorHandle {
            addr: self.local_addr,
            shared,
            threads,
        }
    }
}

/// A persistent connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Rolling read buffer; may hold several pipelined requests (recycled
    /// through the buffer pool).
    buf: Vec<u8>,
    /// Staged response bytes (recycled through the buffer pool).
    out: Vec<u8>,
    written: usize,
    /// Last activity (read progress, request framed, write completed) —
    /// the idle sweep's clock.
    since: Instant,
    /// Sequence number assigned to the next request parsed here.
    next_assign: u64,
    /// Sequence number whose response serializes next (responses flush in
    /// request order).
    next_flush: u64,
    /// Completed responses that arrived ahead of `next_flush`.
    reorder: Vec<(u64, Response)>,
    /// No further requests are accepted; the connection closes once every
    /// assigned response has flushed.
    closing: bool,
    /// The peer half-closed its write side: the bytes already buffered are
    /// the last that will ever arrive (complete frames among them are
    /// still served — shutdown-after-send is a legal client pattern).
    peer_eof: bool,
    /// Currently registered epoll interest.
    interest: u32,
}

impl Conn {
    /// Requests parsed whose responses have not yet serialized.
    fn pending_responses(&self) -> u64 {
        self.next_assign - self.next_flush
    }

    /// Nothing left to compute or write for this connection.
    fn drained(&self) -> bool {
        self.pending_responses() == 0 && self.written >= self.out.len()
    }
}

/// Connection storage with generation-tagged slots: a token names a
/// (slot, generation) pair so completions for closed-and-recycled
/// connections are recognized as stale and dropped.
struct Slab {
    slots: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(conn);
                index
            }
            None => {
                self.slots.push(Some(conn));
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        token_of(index, self.generations[index])
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let (index, generation) = parts_of(token);
        if self.generations.get(index) == Some(&generation) {
            self.slots.get_mut(index).and_then(Option::as_mut)
        } else {
            None
        }
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let (index, generation) = parts_of(token);
        if self.generations.get(index) != Some(&generation) {
            return None;
        }
        let conn = self.slots.get_mut(index).and_then(Option::take);
        if conn.is_some() {
            self.generations[index] = self.generations[index].wrapping_add(1);
            self.free.push(index);
        }
        conn
    }

    fn live_tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(index, _)| token_of(index, self.generations[index]))
            .collect()
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

fn token_of(index: usize, generation: u32) -> u64 {
    (index as u64) | (u64::from(generation) << 32)
}

fn parts_of(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// One step of the per-connection framing loop.
enum FrameStep {
    /// A request was framed and assigned a sequence number.
    Frame(u64, Request),
    /// The buffer can never frame a valid request; answer 400 at this
    /// sequence number and close.
    Bad(u64, String),
    /// Nothing (more) to frame right now.
    Stop,
}

/// A shard's inbox: completions computed by the workers, plus (in hand-off
/// mode) accepted sockets waiting to be adopted. Non-poisoning mutexes —
/// a panicking worker must not wedge every live connection on the shard
/// behind a poisoned queue (the panic itself is already translated into a
/// 500 by the dispatch path).
struct Mailbox {
    completions: Mutex<Vec<(u64, u64, Response)>>,
    handoff: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            completions: Mutex::new(Vec::new()),
            handoff: Mutex::new(Vec::new()),
            waker: Waker::new().expect("create eventfd"),
        }
    }
}

/// State shared by every reactor shard: the router and its process-wide
/// gather, the worker pool, aggregate stats, and each shard's mailbox.
struct Shared {
    router: Router,
    pool: ThreadPool,
    gather: Gather<Dest>,
    stats: Arc<ReactorStats>,
    shutdown: AtomicBool,
    /// Worker-pool jobs in flight. `Arc` so worker closures can decrement
    /// without holding an `Arc<Shared>` (which would cycle through the
    /// pool's own job queue).
    in_flight: Arc<AtomicUsize>,
    /// One mailbox per shard. `Arc` for the same reason as `in_flight`.
    mailboxes: Arc<Vec<Mailbox>>,
    idle_timeout: Duration,
    max_requests_per_conn: u64,
    reactors: usize,
}

/// One reactor event loop: owns a subset of the connections (and, in
/// kernel-sharded mode, a private listener).
struct Shard {
    id: usize,
    /// This shard's listener; `None` for non-zero shards in hand-off mode,
    /// and taken (closed) on every shard the moment draining starts.
    listener: Option<TcpListener>,
    /// Hand-off mode: round-robin accepted sockets across all shards.
    distribute: bool,
    next_handoff: usize,
    shared: Arc<Shared>,
}

impl Shard {
    /// Idle-sweep cadence: frequent enough to honour short test timeouts,
    /// capped at once a second.
    fn sweep_interval(&self) -> Duration {
        (self.shared.idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1))
    }

    #[allow(clippy::too_many_lines)]
    fn run(mut self) {
        let Ok(epoll) = Epoll::new() else { return };
        if let Some(listener) = &self.listener {
            if listener.set_nonblocking(true).is_err() {
                return;
            }
            if epoll
                .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
                .is_err()
            {
                return;
            }
        }
        let _ = epoll.add(
            self.shared.mailboxes[self.id].waker.raw_fd(),
            EPOLLIN,
            WAKER_TOKEN,
        );

        let mut slab = Slab::new();
        let mut buffer_pool: Vec<Vec<u8>> = Vec::new();
        let mut events = vec![EpollEvent::zeroed(); 1024];
        let mut accepting = true;
        // While Some, the listener is deregistered (accept failed with
        // e.g. EMFILE); re-armed once the deadline passes so a full fd
        // table degrades to brief accept pauses instead of a busy spin.
        let mut accept_paused_until: Option<Instant> = None;
        let sweep_every = self.sweep_interval();
        let mut last_sweep = Instant::now();
        let mut drain_started: Option<Instant> = None;

        loop {
            if let Some(deadline) = accept_paused_until {
                if accepting && Instant::now() >= deadline {
                    accept_paused_until = None;
                    if let Some(listener) = &self.listener {
                        let _ = epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN);
                    }
                }
            }
            let mut timeout = self.wait_timeout(sweep_every, drain_started.is_some());
            if accept_paused_until.is_some() {
                timeout = timeout.min(i32::try_from(ACCEPT_BACKOFF.as_millis()).unwrap_or(50));
            }
            let ready = epoll.wait(&mut events, Some(timeout)).unwrap_or(0);

            for event in &events[..ready] {
                match event.token() {
                    LISTENER_TOKEN => {
                        if accepting && !self.accept_ready(&epoll, &mut slab, &mut buffer_pool) {
                            // Resource exhaustion: back off the listener.
                            if let Some(listener) = &self.listener {
                                let _ = epoll.delete(listener.as_raw_fd());
                            }
                            accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                        }
                    }
                    WAKER_TOKEN => self.shared.mailboxes[self.id].waker.drain(),
                    token => self.conn_ready(
                        &epoll,
                        &mut slab,
                        &mut buffer_pool,
                        token,
                        event.readiness(),
                    ),
                }
            }

            // Adopt connections handed off by the accepting shard (dropped
            // unserved if we are already draining — the racing-connect
            // case; the client sees a prompt reset, not a hang).
            let adopted: Vec<TcpStream> =
                std::mem::take(&mut *self.shared.mailboxes[self.id].handoff.lock());
            for stream in adopted {
                if drain_started.is_none() {
                    self.register_conn(&epoll, &mut slab, &mut buffer_pool, stream);
                }
            }

            // Responses computed by the workers since the last pass; after
            // queueing them, resume framing on those connections — their
            // pipelines may have been paused by the MAX_PIPELINE cap.
            let done: Vec<(u64, u64, Response)> =
                std::mem::take(&mut *self.shared.mailboxes[self.id].completions.lock());
            let mut touched: Vec<u64> = Vec::with_capacity(done.len());
            for (token, seq, response) in done {
                self.queue_response(&epoll, &mut slab, &mut buffer_pool, token, seq, response);
                if !touched.contains(&token) {
                    touched.push(token);
                }
            }
            for token in touched {
                self.frame_and_dispatch(&epoll, &mut slab, &mut buffer_pool, token);
                self.close_if_drained(&epoll, &mut slab, &mut buffer_pool, token);
                self.sync_interest(&epoll, &mut slab, token);
            }

            // Flush gathered batches. Full batches flush at push time on
            // whichever shard crossed the threshold; the *time-based*
            // triggers — expired windows, pipeline-idle, and the tight
            // epoll timeout that services them — are shard 0's job alone
            // ("gather coordinator"). With N loops all polling, any-shard
            // checks would multiply the wakeups and fire the idle trigger
            // N× as often as the single-reactor loop did, stealing batches
            // early and shrinking them. During drain every shard steals
            // everything: each loop's exit condition requires the gather
            // empty, and the coordinator may already be gone.
            let now = Instant::now();
            if self.id == 0 || drain_started.is_some() {
                let flush_all =
                    drain_started.is_some() || self.shared.in_flight.load(Ordering::Acquire) == 0;
                for batch in self
                    .shared
                    .gather
                    .take_due(&self.shared.router, now, flush_all)
                {
                    self.flush_batch(batch);
                }
            }

            // Periodic sweep: reap connections that have sat quiet longer
            // than the idle timeout with nothing in flight — covers both
            // clients stalled mid-request and idle keep-alive connections.
            if now.duration_since(last_sweep) >= sweep_every {
                last_sweep = now;
                for token in slab.live_tokens() {
                    let expired = slab.get_mut(token).is_some_and(|conn| {
                        // Quiet connections with nothing in flight, and
                        // vanished readers whose staged bytes stopped
                        // draining, are both reaped; connections merely
                        // waiting on a slow handler are not.
                        let stalled_write = conn.written < conn.out.len();
                        (conn.drained() || stalled_write)
                            && now.duration_since(conn.since) > self.shared.idle_timeout
                    });
                    if expired {
                        self.close_conn(&epoll, &mut slab, &mut buffer_pool, token);
                    }
                }
            }

            // Shutdown: close the listener *immediately* (a connect racing
            // the stop() call is refused, instead of being accepted into a
            // queue nobody will ever serve and hanging until the client
            // times out), mark every connection closing (drained ones drop
            // at once; the rest flush their pending responses, stamped
            // `Connection: close`), then drain in-flight work before
            // exiting.
            if self.shared.shutdown.load(Ordering::SeqCst) && drain_started.is_none() {
                drain_started = Some(now);
                accepting = false;
                // Closing the fd also removes it from the epoll set.
                drop(self.listener.take());
                // Sockets handed off but not yet adopted are part of the
                // same race; reset them now rather than serving nobody.
                drop(std::mem::take(
                    &mut *self.shared.mailboxes[self.id].handoff.lock(),
                ));
                for token in slab.live_tokens() {
                    let done = slab.get_mut(token).is_some_and(|conn| {
                        conn.closing = true;
                        conn.buf.clear();
                        conn.drained()
                    });
                    if done {
                        self.close_conn(&epoll, &mut slab, &mut buffer_pool, token);
                    }
                }
            }
            if let Some(started) = drain_started {
                let drained = self.shared.gather.is_empty()
                    && self.shared.in_flight.load(Ordering::Acquire) == 0
                    && self.shared.mailboxes[self.id].completions.lock().is_empty()
                    && slab.is_empty();
                if drained || now.duration_since(started) > DRAIN_DEADLINE {
                    break;
                }
            }
        }
    }

    /// Epoll timeout: tight when a gather window is pending anywhere in
    /// the process (gather-coordinator shard only — the others are woken
    /// by their own I/O and completions, not by windows shard 0 will
    /// service), bounded by the idle-sweep cadence otherwise, short while
    /// draining.
    fn wait_timeout(&self, sweep_every: Duration, draining: bool) -> i32 {
        if draining {
            return 10;
        }
        let base = i32::try_from(sweep_every.as_millis().max(1))
            .unwrap_or(1_000)
            .min(1_000);
        if self.id != 0 {
            return base;
        }
        match self
            .shared
            .gather
            .next_deadline_ms(&self.shared.router, Instant::now())
        {
            Some(ms) => base.min(ms),
            None => base,
        }
    }

    /// Drains the accept queue, distributing accepted sockets: with kernel
    /// sharding every connection stays on this shard (each shard has its
    /// own listener); in hand-off mode shard 0 round-robins them across
    /// all shards' inboxes. Returns `false` when accepting failed in a way
    /// that warrants backing the listener off (fd exhaustion and friends —
    /// with level-triggered readiness, leaving the listener registered
    /// would spin the loop at 100% CPU).
    fn accept_ready(
        &mut self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
    ) -> bool {
        loop {
            let Some(listener) = &self.listener else {
                return true;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    // A connect racing the shutdown: drop it for a prompt
                    // reset. Handing it to another shard could strand it —
                    // that shard may have drained and exited already, and
                    // nobody resets its inbox until the process tears down.
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let target = if self.distribute {
                        let target = self.next_handoff % self.shared.reactors;
                        self.next_handoff = self.next_handoff.wrapping_add(1);
                        target
                    } else {
                        self.id
                    };
                    if target == self.id {
                        self.register_conn(epoll, slab, buffer_pool, stream);
                    } else {
                        let mailbox = &self.shared.mailboxes[target];
                        let mut inbox = mailbox.handoff.lock();
                        // Re-check under the inbox lock: the target drains
                        // this inbox (dropping streams) on every draining
                        // iteration before it exits, so lock ordering makes
                        // this airtight — either our push lands before the
                        // target's final drain-and-drop pass, or that pass
                        // happened first and the shutdown store it observed
                        // is visible to us here and we drop the stream
                        // ourselves. No racing connect can be pushed into a
                        // mailbox nobody will ever empty.
                        if self.shared.shutdown.load(Ordering::SeqCst) {
                            continue;
                        }
                        inbox.push(stream);
                        drop(inbox);
                        mailbox.waker.wake();
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return true,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                // Per-connection handshake failures are transient; retry.
                Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(_) => return false,
            }
        }
    }

    /// Adopts a fresh (already nonblocking) connection into this shard's
    /// slab and epoll set.
    fn register_conn(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        stream: TcpStream,
    ) {
        self.shared
            .stats
            .connections
            .fetch_add(1, Ordering::Relaxed);
        self.shared.stats.shards[self.id]
            .connections
            .fetch_add(1, Ordering::Relaxed);
        let conn = Conn {
            stream,
            buf: buffer_pool.pop().unwrap_or_default(),
            out: buffer_pool.pop().unwrap_or_default(),
            written: 0,
            since: Instant::now(),
            next_assign: 0,
            next_flush: 0,
            reorder: Vec::new(),
            closing: false,
            peer_eof: false,
            interest: EPOLLIN,
        };
        let token = slab.insert(conn);
        let fd = slab
            .get_mut(token)
            .expect("just inserted")
            .stream
            .as_raw_fd();
        if epoll.add(fd, EPOLLIN, token).is_err() {
            let _ = slab.remove(token);
        }
    }

    fn conn_ready(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
        readiness: u32,
    ) {
        if slab.get_mut(token).is_none() {
            return; // Stale token: connection already recycled.
        }
        if readiness & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(epoll, slab, buffer_pool, token);
            return;
        }
        if readiness & EPOLLIN != 0 {
            self.read_ready(epoll, slab, buffer_pool, token);
        }
        if readiness & EPOLLOUT != 0 && slab.get_mut(token).is_some() {
            self.try_write(epoll, slab, buffer_pool, token);
            // Write progress may have released the staged-bytes gate on
            // framing (a pipelining client fed by a slow reader).
            self.frame_and_dispatch(epoll, slab, buffer_pool, token);
            self.close_if_drained(epoll, slab, buffer_pool, token);
        }
        self.sync_interest(epoll, slab, token);
    }

    /// Pulls everything currently readable, frames and dispatches as many
    /// pipelined requests as the buffer holds, and handles peer EOF.
    fn read_ready(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        let pulled = {
            let Some(conn) = slab.get_mut(token) else {
                return;
            };
            if conn.closing {
                return; // Late readiness after we stopped accepting input.
            }
            pull_bytes(conn)
        };
        match pulled {
            Pull::Closed => {
                self.close_conn(epoll, slab, buffer_pool, token);
            }
            Pull::TooLarge => {
                let seq = {
                    let conn = slab.get_mut(token).expect("checked above");
                    let seq = conn.next_assign;
                    conn.next_assign += 1;
                    conn.closing = true;
                    conn.buf.clear();
                    seq
                };
                self.queue_response(
                    epoll,
                    slab,
                    buffer_pool,
                    token,
                    seq,
                    Response::bad_request("request too large"),
                );
            }
            Pull::Data { eof } => {
                if eof {
                    if let Some(conn) = slab.get_mut(token) {
                        conn.peer_eof = true;
                    }
                }
                // Complete frames already buffered are still served — even
                // past the pipeline cap, framing resumes as responses
                // flush; `peer_eof` only forbids *new* bytes. The framing
                // loop flips the connection to closing once the buffer can
                // never yield another request.
                self.frame_and_dispatch(epoll, slab, buffer_pool, token);
                self.close_if_drained(epoll, slab, buffer_pool, token);
            }
        }
    }

    /// Frames as many complete requests as the connection's buffer holds
    /// (bounded by the pipeline cap) and dispatches each. Requests to
    /// batched routes are buffered across the framing loop and pushed into
    /// the shared gather as one atomic burst per route — a pipelined burst
    /// arriving in one read must not be interleaved with (or stolen by) a
    /// coordinator flush running on another core.
    fn frame_and_dispatch(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        let mut burst: Vec<(usize, Vec<(Dest, Request)>)> = Vec::new();
        loop {
            let step = {
                let Some(conn) = slab.get_mut(token) else {
                    break;
                };
                if conn.closing
                    || conn.pending_responses() >= MAX_PIPELINE
                    || conn.out.len() - conn.written > MAX_STAGED_OUT
                {
                    FrameStep::Stop
                } else {
                    match Request::try_parse(&conn.buf) {
                        Ok(Some((request, consumed))) => {
                            conn.buf.drain(..consumed);
                            conn.since = Instant::now();
                            let seq = conn.next_assign;
                            conn.next_assign += 1;
                            // The keep-alive decision, per request: client
                            // intent ∧ per-connection budget ∧ liveness.
                            if !request.wants_keep_alive()
                                || conn.next_assign >= self.shared.max_requests_per_conn
                                || self.shared.shutdown.load(Ordering::Relaxed)
                            {
                                conn.closing = true;
                                conn.buf.clear();
                            }
                            FrameStep::Frame(seq, request)
                        }
                        Ok(None) => {
                            if conn.peer_eof {
                                // The remaining bytes can never complete a
                                // request; nothing more will arrive.
                                conn.closing = true;
                                conn.buf.clear();
                            }
                            FrameStep::Stop
                        }
                        Err(reason) => {
                            let seq = conn.next_assign;
                            conn.next_assign += 1;
                            conn.closing = true;
                            conn.buf.clear();
                            FrameStep::Bad(seq, reason)
                        }
                    }
                }
            };
            match step {
                FrameStep::Frame(seq, request) => {
                    self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.shared.stats.shards[self.id]
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    self.dispatch(epoll, slab, buffer_pool, token, seq, request, &mut burst);
                }
                FrameStep::Bad(seq, reason) => {
                    self.queue_response(
                        epoll,
                        slab,
                        buffer_pool,
                        token,
                        seq,
                        Response::bad_request(&reason),
                    );
                    break;
                }
                FrameStep::Stop => break,
            }
        }
        self.flush_burst(burst);
    }

    /// Pushes the framing pass's buffered batched-route requests into the
    /// shared gather, one atomic `push_many` per route, flushing any batch
    /// the burst filled and nudging the coordinator shard when a fresh
    /// gather window opened.
    fn flush_burst(&self, burst: Vec<(usize, Vec<(Dest, Request)>)>) {
        for (route, entries) in burst {
            let (full, first) = self
                .shared
                .gather
                .push_many(&self.shared.router, route, entries);
            for batch in full {
                self.flush_batch(batch);
            }
            if first && self.id != 0 {
                self.shared.mailboxes[0].waker.wake();
            }
        }
    }

    /// Routes a parsed request: batched routes buffer into the caller's
    /// burst (pushed to the process-wide gather when the framing pass
    /// ends), scalar routes go to the shared pool, and routing misses
    /// answer immediately (in order).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
        seq: u64,
        request: Request,
        burst: &mut Vec<(usize, Vec<(Dest, Request)>)>,
    ) {
        match self.shared.router.resolve(&request) {
            Resolution::Route(index)
                if self.shared.router.route_at(index).policy().is_batched() =>
            {
                let dest = (self.id, token, seq);
                match burst.iter_mut().find(|(route, _)| *route == index) {
                    Some((_, entries)) => entries.push((dest, request)),
                    None => burst.push((index, vec![(dest, request)])),
                }
            }
            Resolution::Route(index) => {
                self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
                let route: Arc<Route> = Arc::clone(self.shared.router.route_at(index));
                let mailboxes = Arc::clone(&self.shared.mailboxes);
                let in_flight = Arc::clone(&self.shared.in_flight);
                let shard = self.id;
                self.shared.pool.execute(move || {
                    let response = catch_unwind(AssertUnwindSafe(|| {
                        let mut out = route.run(std::slice::from_ref(&request));
                        out.pop().expect("arity asserted by Route::run")
                    }))
                    .unwrap_or_else(|_| Response::error(500, "handler panicked"));
                    mailboxes[shard]
                        .completions
                        .lock()
                        .push((token, seq, response));
                    let now_idle = in_flight.fetch_sub(1, Ordering::AcqRel) == 1;
                    mailboxes[shard].waker.wake();
                    // The pipeline just went idle: the coordinator shard
                    // owns the idle-flush trigger, so it must wake now —
                    // not at its next sweep — or gathered batches wait out
                    // their whole window.
                    if now_idle && shard != 0 {
                        mailboxes[0].waker.wake();
                    }
                });
            }
            Resolution::MethodNotAllowed => {
                self.queue_response(
                    epoll,
                    slab,
                    buffer_pool,
                    token,
                    seq,
                    Response::error(405, "method not allowed"),
                );
            }
            Resolution::NotFound => {
                self.queue_response(epoll, slab, buffer_pool, token, seq, Response::not_found());
            }
        }
    }

    /// Hands a gathered batch to the worker pool as one handler call; the
    /// worker fans the responses back out to the owning shards' mailboxes.
    fn flush_batch(&self, batch: GatheredBatch<Dest>) {
        let mut destinations = Vec::with_capacity(batch.entries.len());
        let mut requests = Vec::with_capacity(batch.entries.len());
        for (dest, request) in batch.entries {
            destinations.push(dest);
            requests.push(request);
        }
        if requests.is_empty() {
            return;
        }
        let shared = &self.shared;
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .batched_requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let route: Arc<Route> = Arc::clone(shared.router.route_at(batch.route));
        let mailboxes = Arc::clone(&shared.mailboxes);
        let in_flight = Arc::clone(&shared.in_flight);
        shared.pool.execute(move || {
            let responses =
                catch_unwind(AssertUnwindSafe(|| route.run(&requests))).unwrap_or_else(|_| {
                    (0..destinations.len())
                        .map(|_| Response::error(500, "batch handler panicked"))
                        .collect()
                });
            // Group per shard: one lock round-trip and one wake per shard
            // touched, not per response.
            let mut touched = vec![false; mailboxes.len()];
            let mut by_shard: Vec<Vec<(u64, u64, Response)>> =
                (0..mailboxes.len()).map(|_| Vec::new()).collect();
            for ((shard, token, seq), response) in destinations.into_iter().zip(responses) {
                by_shard[shard].push((token, seq, response));
                touched[shard] = true;
            }
            for (shard, items) in by_shard.into_iter().enumerate() {
                if !items.is_empty() {
                    mailboxes[shard].completions.lock().extend(items);
                }
            }
            // Going idle hands the idle-flush trigger to the coordinator
            // shard; wake it even if no response of this batch was its.
            if in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                touched[0] = true;
            }
            for (shard, hit) in touched.iter().enumerate() {
                if *hit {
                    mailboxes[shard].waker.wake();
                }
            }
        });
    }

    /// Queues a completed response on its connection: responses serialize
    /// strictly in request order, with early finishers parked in the
    /// reorder queue. The final response of a closing connection is
    /// stamped `Connection: close`; everything else keep-alive.
    fn queue_response(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
        seq: u64,
        response: Response,
    ) {
        let progressed = {
            let Some(conn) = slab.get_mut(token) else {
                return; // Connection died while the response was computed.
            };
            conn.reorder.push((seq, response));
            let mut progressed = false;
            while let Some(position) = conn.reorder.iter().position(|(s, _)| *s == conn.next_flush)
            {
                let (_, mut response) = conn.reorder.swap_remove(position);
                let last = conn.closing && conn.next_flush + 1 == conn.next_assign;
                response.set_disposition(if last {
                    Disposition::Close
                } else {
                    Disposition::KeepAlive
                });
                response.write_into(&mut conn.out);
                conn.next_flush += 1;
                progressed = true;
            }
            progressed
        };
        if progressed {
            self.try_write(epoll, slab, buffer_pool, token);
        }
    }

    /// Writes as much of the staged response bytes as the socket accepts;
    /// closes when a closing connection fully drains, re-arms `EPOLLOUT`
    /// on short writes.
    fn try_write(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        let outcome = {
            let Some(conn) = slab.get_mut(token) else {
                return;
            };
            push_staged(conn)
        };
        match outcome {
            WriteOutcome::Done => {
                let close_now = {
                    let conn = slab.get_mut(token).expect("written just now");
                    conn.out.clear();
                    conn.written = 0;
                    conn.since = Instant::now();
                    conn.closing && conn.pending_responses() == 0
                };
                if close_now {
                    self.close_conn(epoll, slab, buffer_pool, token);
                } else {
                    self.sync_interest(epoll, slab, token);
                }
            }
            WriteOutcome::Blocked => self.sync_interest(epoll, slab, token),
            WriteOutcome::Failed => self.close_conn(epoll, slab, buffer_pool, token),
        }
    }

    /// Reconciles the connection's epoll registration with its state:
    /// `EPOLLIN` while it still accepts requests, `EPOLLOUT` while staged
    /// bytes remain unwritten.
    fn sync_interest(&self, epoll: &Epoll, slab: &mut Slab, token: u64) {
        let Some(conn) = slab.get_mut(token) else {
            return;
        };
        let mut desired = 0;
        if !conn.closing {
            desired |= EPOLLIN;
        }
        if conn.written < conn.out.len() {
            desired |= EPOLLOUT;
        }
        if desired != conn.interest {
            conn.interest = desired;
            let fd = conn.stream.as_raw_fd();
            let _ = epoll.modify(fd, desired, token);
        }
    }

    /// Closes a connection that has flipped to closing with nothing left
    /// to compute or write (the try_write path handles the staged-bytes
    /// case; this covers closings decided with an already-empty queue).
    fn close_if_drained(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        let done = slab
            .get_mut(token)
            .is_some_and(|conn| conn.closing && conn.drained());
        if done {
            self.close_conn(epoll, slab, buffer_pool, token);
        }
    }

    /// Tears a connection down and recycles its buffers.
    #[allow(clippy::unused_self)]
    fn close_conn(
        &self,
        epoll: &Epoll,
        slab: &mut Slab,
        buffer_pool: &mut Vec<Vec<u8>>,
        token: u64,
    ) {
        if let Some(mut conn) = slab.remove(token) {
            let _ = epoll.delete(conn.stream.as_raw_fd());
            for mut buf in [std::mem::take(&mut conn.buf), std::mem::take(&mut conn.out)] {
                if buffer_pool.len() < BUFFER_POOL_CAP && buf.capacity() <= BUFFER_RECYCLE_MAX {
                    buf.clear();
                    buffer_pool.push(buf);
                }
            }
        }
    }
}

/// Result of draining a readable socket into its accumulation buffer.
enum Pull {
    /// Bytes (possibly none) were appended; `eof` reports a half-close.
    Data { eof: bool },
    /// The socket failed or the peer vanished; drop the connection.
    Closed,
    /// The accumulation buffer hit its hard cap; answer 400 and close.
    TooLarge,
}

/// Reads everything currently available into the rolling buffer.
fn pull_bytes(conn: &mut Conn) -> Pull {
    let mut chunk = [0u8; READ_CHUNK];
    let mut eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer half-closed its write side. Complete requests may
                // already be buffered (shutdown-after-send is a legal
                // client pattern) — the caller frames them before closing.
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                // Progress resets the idle clock: the sweep drops stalled
                // connections, not slow-but-active ones.
                conn.since = Instant::now();
                if conn.buf.len() > MAX_CONN_BUF {
                    return Pull::TooLarge;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Pull::Closed,
        }
    }
    Pull::Data { eof }
}

/// Result of pushing staged response bytes to the socket.
enum WriteOutcome {
    /// Everything currently staged has been written.
    Done,
    /// Socket buffer full; re-arm `EPOLLOUT` on this fd.
    Blocked,
    /// The socket failed; drop the connection.
    Failed,
}

/// Writes staged bytes until done or the socket stops accepting.
fn push_staged(conn: &mut Conn) -> WriteOutcome {
    loop {
        if conn.written >= conn.out.len() {
            return WriteOutcome::Done;
        }
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return WriteOutcome::Failed,
            Ok(n) => {
                conn.written += n;
                // Progress resets the idle clock, mirroring the read side.
                conn.since = Instant::now();
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                return WriteOutcome::Blocked;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return WriteOutcome::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::router::BatchPolicy;

    fn ping_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
        router.get("/echo", |req: &Request| {
            let msg = req.query_param("msg").unwrap_or("").to_owned();
            Response::ok("text/plain", msg.into_bytes())
        });
        router
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let client = HttpClient::new(addr);
        let response = client.get("/ping").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"pong");

        let response = client.get("/echo?msg=hello").unwrap();
        assert_eq!(response.body, b"hello");

        let response = client.get("/missing").unwrap();
        assert_eq!(response.status, 404);

        assert!(handle.request_count() >= 3);
        // One persistent connection carried all three requests.
        assert_eq!(handle.stats().connections(), 1);
        handle.stop();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut joins = Vec::new();
        for _ in 0..32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get("/ping").unwrap();
                assert_eq!(response.status, 200);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(handle.request_count() >= 32);
        handle.stop();
    }

    #[test]
    fn sharded_reactor_serves_across_shards() {
        // Four event loops behind one address (kernel sharding when the
        // host supports it, hand-off otherwise): every request is served,
        // and the per-shard breakdowns sum to the aggregate.
        let server = ReactorServer::bind_sharded("127.0.0.1:0", 4, 1).unwrap();
        assert_eq!(server.reactors(), 4);
        assert_ne!(server.accept_sharding(), AcceptSharding::Auto);
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut joins = Vec::new();
        for i in 0..32u32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get(&format!("/echo?msg=s{i}")).unwrap();
                assert_eq!(response.status, 200);
                assert_eq!(response.body, format!("s{i}").into_bytes());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.requests(), 32);
        assert_eq!(stats.connections(), 32);
        assert_eq!(stats.shards().len(), 4);
        let shard_connections: u64 = stats.shards().iter().map(ShardStats::connections).sum();
        let shard_requests: u64 = stats.shards().iter().map(ShardStats::requests).sum();
        assert_eq!(shard_connections, stats.connections());
        assert_eq!(shard_requests, stats.requests());
        // 32 connections over 4 shards: all landing on one shard has
        // probability ~4^-31 under kernel hashing, and is impossible under
        // round-robin hand-off.
        let active = stats
            .shards()
            .iter()
            .filter(|s| s.connections() > 0)
            .count();
        assert!(active >= 2, "all connections landed on one shard");
        handle.stop();
    }

    #[test]
    fn handoff_fallback_distributes_round_robin() {
        let server =
            ReactorServer::bind_sharded_with("127.0.0.1:0", 3, 1, AcceptSharding::HandOff).unwrap();
        assert_eq!(server.accept_sharding(), AcceptSharding::HandOff);
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        // Sequential connections: shard 0 accepts each and deals them
        // round-robin, so the split is deterministic.
        for i in 0..6 {
            let client = HttpClient::new(addr);
            let response = client.get(&format!("/echo?msg=h{i}")).unwrap();
            assert_eq!(response.body, format!("h{i}").into_bytes());
        }
        let stats = handle.stats();
        assert_eq!(stats.connections(), 6);
        for (id, shard) in stats.shards().iter().enumerate() {
            assert_eq!(shard.connections(), 2, "shard {id} connection share");
            assert_eq!(shard.requests(), 2, "shard {id} request share");
        }
        handle.stop();
    }

    #[test]
    fn batched_route_coalesces_concurrent_requests() {
        // Deterministic gathering: two slow scalar requests occupy both
        // workers, so the batched route's requests pile up (the pipeline is
        // never idle and the gather window is far away) and flush together
        // once the workers free up.
        let mut router = Router::new();
        router.get("/slow", |_| {
            thread::sleep(Duration::from_millis(500));
            Response::ok("text/plain", b"slow".to_vec())
        });
        router.route(
            "GET",
            "/batch/",
            BatchPolicy {
                max_batch: 64,
                gather_window: Duration::from_secs(10),
            },
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(requests.iter().map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("u{uid}").into_bytes())
                }));
            },
        );
        let server = ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let mut joins = Vec::new();
        for _ in 0..2 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                assert_eq!(client.get("/slow").unwrap().status, 200);
            }));
        }
        // Give the slow requests time to reach the workers.
        thread::sleep(Duration::from_millis(100));
        for uid in 0..24u32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get(&format!("/batch/?uid={uid}")).unwrap();
                assert_eq!(response.status, 200);
                assert_eq!(response.body, format!("u{uid}").into_bytes());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.batched_requests(), 24);
        assert!(stats.batches() >= 1);
        // The 24 requests gathered while the workers were busy; even
        // allowing stragglers, they must have coalesced into far fewer
        // flushes than requests.
        assert!(
            stats.batches() <= 4,
            "coalescing regressed: {} batches for 24 requests",
            stats.batches()
        );
        handle.stop();
    }

    #[test]
    fn sharded_gather_coalesces_across_shards() {
        // Connections spread over 2 shards (round-robin hand-off for
        // determinism) while both workers are pinned by slow requests: the
        // batched requests arriving on *different* event loops must still
        // gather into common flushes — the shared-gather design.
        let mut router = Router::new();
        router.get("/slow", |_| {
            thread::sleep(Duration::from_millis(500));
            Response::ok("text/plain", b"slow".to_vec())
        });
        router.route(
            "GET",
            "/batch/",
            BatchPolicy {
                max_batch: 64,
                gather_window: Duration::from_secs(10),
            },
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(requests.iter().map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("u{uid}").into_bytes())
                }));
            },
        );
        let server =
            ReactorServer::bind_sharded_with("127.0.0.1:0", 2, 1, AcceptSharding::HandOff).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let mut joins = Vec::new();
        for _ in 0..2 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                assert_eq!(client.get("/slow").unwrap().status, 200);
            }));
        }
        thread::sleep(Duration::from_millis(100));
        for uid in 0..24u32 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get(&format!("/batch/?uid={uid}")).unwrap();
                assert_eq!(response.status, 200);
                assert_eq!(response.body, format!("u{uid}").into_bytes());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.batched_requests(), 24);
        // Both shards carried batch traffic, yet the requests coalesced
        // into a handful of process-wide flushes — a per-shard gather
        // would produce roughly one flush per shard per round instead.
        assert!(
            stats.batches() <= 4,
            "cross-shard coalescing regressed: {} batches for 24 requests",
            stats.batches()
        );
        let active = stats.shards().iter().filter(|s| s.requests() > 0).count();
        assert_eq!(active, 2, "round-robin should have loaded both shards");
        handle.stop();
    }

    #[test]
    fn pipelined_requests_deliver_a_ready_made_batch() {
        // Three requests written back-to-back on one socket arrive in one
        // read and join the same gather — the keep-alive redesign's
        // "ready-made batch" without paying the gather window.
        let mut router = Router::new();
        router.route(
            "GET",
            "/batch/",
            BatchPolicy {
                max_batch: 64,
                gather_window: Duration::from_millis(200),
            },
            |requests: &[Request], out: &mut Vec<Response>| {
                let size = requests.len();
                out.extend(requests.iter().map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("u{uid}:n{size}").into_bytes())
                }));
            },
        );
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        for uid in 0..3 {
            wire.extend_from_slice(
                format!("GET /batch/?uid={uid} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
            );
        }
        stream.write_all(&wire).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // All three answered in request order, each reporting batch size 3.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut responses = Vec::new();
        while responses.len() < 3 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            buf.extend_from_slice(&chunk[..n]);
            while let Some((response, consumed)) = Response::try_parse(&buf).unwrap() {
                buf.drain(..consumed);
                responses.push(response);
            }
        }
        for (uid, response) in responses.iter().enumerate() {
            assert_eq!(response.status, 200);
            assert_eq!(response.body, format!("u{uid}:n3").into_bytes());
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        let stats = handle.stats();
        assert_eq!(stats.batched_requests(), 3);
        assert_eq!(stats.batches(), 1, "pipelined burst split across batches");
        assert_eq!(stats.connections(), 1);
        handle.stop();
    }

    #[test]
    fn sharded_pipelined_burst_stays_one_batch() {
        // The ready-made-batch property must survive sharding: a burst
        // framed in one read on one shard enters the shared gather
        // atomically (push_many), so a coordinator idle-flush on another
        // loop cannot splinter it into per-request handler calls.
        let mut router = Router::new();
        router.route(
            "GET",
            "/batch/",
            BatchPolicy {
                max_batch: 64,
                gather_window: Duration::from_millis(200),
            },
            |requests: &[Request], out: &mut Vec<Response>| {
                let size = requests.len();
                out.extend(requests.iter().map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("u{uid}:n{size}").into_bytes())
                }));
            },
        );
        let server =
            ReactorServer::bind_sharded_with("127.0.0.1:0", 2, 1, AcceptSharding::HandOff).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        for uid in 0..3 {
            wire.extend_from_slice(
                format!("GET /batch/?uid={uid} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
            );
        }
        stream.write_all(&wire).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut responses = Vec::new();
        while responses.len() < 3 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            buf.extend_from_slice(&chunk[..n]);
            while let Some((response, consumed)) = Response::try_parse(&buf).unwrap() {
                buf.drain(..consumed);
                responses.push(response);
            }
        }
        for (uid, response) in responses.iter().enumerate() {
            assert_eq!(response.status, 200);
            assert_eq!(response.body, format!("u{uid}:n3").into_bytes());
        }
        let stats = handle.stats();
        assert_eq!(stats.batched_requests(), 3);
        assert_eq!(
            stats.batches(),
            1,
            "sharded pipelined burst split across batches"
        );
        handle.stop();
    }

    #[test]
    fn half_closed_client_still_gets_a_response() {
        // shutdown(SHUT_WR) after sending is a legal client pattern; the
        // buffered request must still be served (with Connection: close,
        // since nothing further can arrive).
        use std::io::{Read as _, Write as _};
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
        assert!(response.contains("connection: close"), "got: {response}");
        assert!(response.ends_with("pong"), "got: {response}");
        handle.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read as _, Write as _};
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
        assert!(buf.contains("connection: close"), "got: {buf}");
        handle.stop();
    }

    #[test]
    fn conflicting_content_lengths_get_400() {
        // The request-smuggling-shaped framing bug: duplicate
        // Content-Length headers that disagree must be rejected, not
        // silently resolved to one of them (a pipelined attacker could
        // otherwise desync our framing from an upstream proxy's).
        use std::io::{Read as _, Write as _};
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"POST /ping HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\
                  content-length: 11\r\n\r\nGET /smuggled",
            )
            .unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
        assert!(buf.contains("connection: close"), "got: {buf}");
        handle.stop();
    }

    #[test]
    fn panicking_handler_answers_500_and_the_reactor_survives() {
        // One bad handler must cost its request a 500 — never the
        // connection, the completion queue, or a pool worker.
        let mut router = ping_router();
        router.get("/boom", |_| -> Response { panic!("handler bug") });
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);

        let client = HttpClient::new(addr);
        assert_eq!(client.get("/boom").unwrap().status, 500);
        // Same connection keeps working (the panic was translated, not
        // propagated), and with a 1-worker pool a dead worker would hang
        // this request forever.
        assert_eq!(client.get("/ping").unwrap().status, 200);
        assert_eq!(client.get("/boom").unwrap().status, 500);
        assert_eq!(client.get("/ping").unwrap().status, 200);
        assert_eq!(handle.stats().connections(), 1);
        handle.stop();
    }

    #[test]
    fn wrong_method_and_missing_route_status_codes() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        let client = HttpClient::new(addr);
        assert_eq!(client.post("/ping", b"x").unwrap().status, 405);
        assert_eq!(client.get("/nope").unwrap().status, 404);
        // Errors do not end the connection; both rode one socket.
        assert_eq!(handle.stats().connections(), 1);
        handle.stop();
    }

    #[test]
    fn stop_terminates_event_loop() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        handle.stop();
        let client = HttpClient::new(addr);
        assert!(client.get("/ping").is_err());
    }

    #[test]
    fn sharded_stop_terminates_every_event_loop() {
        for mode in [AcceptSharding::Auto, AcceptSharding::HandOff] {
            let server = ReactorServer::bind_sharded_with("127.0.0.1:0", 4, 1, mode).unwrap();
            let addr = server.local_addr();
            let handle = server.serve(ping_router());
            // Serve at least one request so the loops are demonstrably up.
            let client = HttpClient::new(addr);
            assert_eq!(client.get("/ping").unwrap().status, 200);
            drop(client);
            let started = Instant::now();
            handle.stop();
            assert!(
                started.elapsed() < Duration::from_secs(2),
                "sharded shutdown hung ({mode:?})"
            );
            let client = HttpClient::new(addr);
            assert!(client.get("/ping").is_err(), "a shard kept serving");
        }
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        // Open a connection and send nothing.
        let _idle = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown hung on an idle connection"
        );
    }

    #[test]
    fn large_response_survives_partial_writes() {
        // A body far beyond any socket buffer exercises the EPOLLOUT path.
        let big = vec![b'x'; 8 * 1024 * 1024];
        let expected = big.clone();
        let mut router = Router::new();
        router.get("/big", move |_| Response::ok("text/plain", big.clone()));
        let server = ReactorServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(router);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
        let response = client.get("/big").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected);
        // And the connection survives for a second round trip.
        let response = client.get("/big").unwrap();
        assert_eq!(response.body.len(), 8 * 1024 * 1024);
        assert_eq!(handle.stats().connections(), 1);
        handle.stop();
    }
}
