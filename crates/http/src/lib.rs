//! # hyrec-http
//!
//! A minimal HTTP/1.1 stack over `std::net`, written from scratch for the
//! HyRec reproduction — the stand-in for the paper's J2EE servlets + Jetty
//! (Section 4.1).
//!
//! Two interchangeable server front-ends speak the same protocol:
//!
//! * [`server`] — the seed architecture: blocking accept loop over a
//!   fixed [`threadpool`] (the servlet container's request threads; the
//!   pool size is the knob behind Figure 9's concurrency experiment).
//! * [`reactor`] — the scaling architecture: an epoll readiness loop
//!   (raw bindings in a private `sys` module, no external deps) with
//!   nonblocking per-connection state machines, recycled buffers, a small
//!   worker pool, and **request coalescing**: concurrent requests to
//!   [batch routes](Router::get_batched) are gathered — up to a cap,
//!   within a gather window — and handed to one batched handler call.
//!
//! Shared plumbing:
//!
//! * [`request`] / [`response`] — HTTP parsing (incremental
//!   [`Request::try_parse`] for the reactor) and serialization with
//!   `Content-Encoding: gzip` handled by our own `hyrec-wire` codec.
//! * [`router`] — path-prefix routing, scalar and batch routes, trailing
//!   slash optional.
//! * [`client`] — a small blocking client used by load generators and
//!   examples.
//! * [`api`] — the HyRec web API of Table 1, mounted with coalescable
//!   routes: `GET /online/?uid=<uid>` batches into
//!   `HyRecServer::build_jobs` + `JobEncoder::encode_jobs`,
//!   `GET /rate/` batches into the shard-grouped
//!   `HyRecServer::record_many`, and `POST /neighbors/` batches into
//!   `HyRecServer::apply_updates`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hyrec_http::{api, reactor::ReactorServer};
//! use hyrec_server::HyRecServer;
//!
//! let hyrec = Arc::new(HyRecServer::new());
//! let server = ReactorServer::bind("127.0.0.1:0", 4)?;
//! let addr = server.local_addr();
//! let handle = server.serve(api::hyrec_router(hyrec));
//! println!("HyRec API listening on http://{addr}");
//! // … handle.stop() drains in-flight work and joins the event loop.
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)] // allowed only in `sys` (raw epoll/eventfd bindings)
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod reactor;
pub mod request;
pub mod response;
pub mod router;
pub mod server;
mod sys;
pub mod threadpool;

pub use client::HttpClient;
pub use reactor::ReactorServer;
pub use request::Request;
pub use response::Response;
pub use router::{BatchPolicy, Router};
pub use server::HttpServer;
