//! # hyrec-http
//!
//! A minimal HTTP/1.1 stack over `std::net`, written from scratch for the
//! HyRec reproduction — the stand-in for the paper's J2EE servlets + Jetty
//! (Section 4.1).
//!
//! The serving API is **connection-oriented**: both front-ends speak
//! HTTP/1.1 keep-alive (with pipelining on the reactor), every route is a
//! [`Handler`] behind a [`BatchPolicy`] (scalar routes are the policy-of-1
//! special case), and each [`Response`] carries an explicit
//! [`response::Disposition`] chosen per request from the parsed
//! `Connection`/version fields, the connection's request budget and
//! shutdown state — never a hardcoded header.
//!
//! Two interchangeable server front-ends speak the same protocol:
//!
//! * [`server`] — the seed architecture: blocking accept loop over a
//!   fixed [`threadpool`]; each worker now loops on its connection until
//!   close/idle-timeout/request-budget, so the pool size bounds concurrent
//!   *connections* (the knob behind Figure 9's concurrency experiment).
//! * [`reactor`] — the scaling architecture: N epoll readiness loops
//!   ("shards", raw bindings in a private `sys` module, no external deps)
//!   with persistent per-connection state machines (rolling read buffer
//!   holding pipelined requests, in-order response queue, idle sweep,
//!   max-requests-per-connection), recycled buffers, a **shared** worker
//!   pool, and **process-wide request coalescing**: concurrent and
//!   pipelined requests to batched routes are gathered — up to a cap,
//!   within a gather window, across every shard — and handed to one
//!   handler call. Connections shard across the loops via `SO_REUSEPORT`
//!   kernel accept sharding, with a round-robin accept hand-off fallback
//!   ([`reactor::AcceptSharding`]).
//!
//! Shared plumbing:
//!
//! * [`request`] / [`response`] — HTTP parsing (incremental
//!   [`Request::try_parse`] for the reactor's rolling buffers, and the
//!   mirror-image [`Response::try_parse`] for the client's) and
//!   serialization with `Content-Encoding: gzip` handled by our own
//!   `hyrec-wire` codec.
//! * [`router`] — path-prefix routing over the unified [`Handler`] trait,
//!   trailing slash optional.
//! * [`client`] — a small blocking client holding one persistent
//!   connection per clone, with automatic reconnect; used by load
//!   generators and examples.
//! * [`api`] — the HyRec web API of Table 1, mounted with batched
//!   policies: `GET /online/?uid=<uid>` batches into
//!   `HyRecServer::build_jobs` + `JobEncoder::encode_jobs`,
//!   `GET /rate/` batches into the shard-grouped
//!   `HyRecServer::record_many`, and `POST /neighbors/` batches into
//!   `HyRecServer::apply_updates`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hyrec_http::{api, reactor::ReactorServer};
//! use hyrec_server::HyRecServer;
//!
//! let hyrec = Arc::new(HyRecServer::new());
//! // 4 reactor event loops (SO_REUSEPORT-sharded when the kernel allows)
//! // over a shared pool of 4 × 2 workers and one process-wide gather.
//! let server = ReactorServer::bind_sharded("127.0.0.1:0", 4, 2)?
//!     .with_max_requests_per_conn(10_000);
//! let addr = server.local_addr();
//! let handle = server.serve(api::hyrec_router(hyrec));
//! println!("HyRec API listening on http://{addr}");
//! // … handle.stop() drains in-flight work and joins every event loop.
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)] // allowed only in `sys` (raw epoll/eventfd bindings)
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod reactor;
pub mod request;
pub mod response;
pub mod router;
pub mod server;
mod sys;
pub mod threadpool;

pub use client::HttpClient;
pub use reactor::{AcceptSharding, ReactorServer};
pub use request::Request;
pub use response::{Disposition, Response};
pub use router::{BatchPolicy, Handler, Router, Scalar};
pub use server::HttpServer;
