//! # hyrec-http
//!
//! A minimal HTTP/1.1 stack over `std::net`, written from scratch for the
//! HyRec reproduction — the stand-in for the paper's J2EE servlets + Jetty
//! (Section 4.1).
//!
//! * [`threadpool`] — fixed-size worker pool (the servlet container's
//!   request threads; its size is the knob behind Figure 9's concurrency
//!   experiment).
//! * [`request`] / [`response`] — HTTP parsing and serialization with
//!   `Content-Encoding: gzip` handled by our own `hyrec-wire` codec.
//! * [`router`] — path-prefix routing.
//! * [`server`] — the accept loop.
//! * [`client`] — a small blocking client used by load generators and
//!   examples.
//! * [`api`] — the HyRec web API of Table 1:
//!   `GET /online/?uid=<uid>` returns a gzipped personalization job;
//!   `GET /neighbors/?uid=<uid>&id0=…&sim0=…` records a KNN update.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hyrec_http::{api, server::HttpServer};
//! use hyrec_server::HyRecServer;
//!
//! let hyrec = Arc::new(HyRecServer::new());
//! let server = HttpServer::bind("127.0.0.1:0", 4)?;
//! let addr = server.local_addr();
//! server.serve(api::hyrec_router(hyrec));
//! println!("HyRec API listening on http://{addr}");
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod request;
pub mod response;
pub mod router;
pub mod server;
pub mod threadpool;

pub use client::HttpClient;
pub use request::Request;
pub use response::Response;
pub use router::Router;
pub use server::HttpServer;
