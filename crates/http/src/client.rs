//! A small blocking HTTP client for tests, examples and load generation.
//!
//! Connection-oriented since the keep-alive redesign: a client holds one
//! persistent socket to its server and reuses it across requests (the
//! browser behaviour the paper's Table 1 traffic assumes), reconnecting
//! automatically when the server closes the connection — idle timeout,
//! max-requests budget, `Connection: close` responses, or restarts.
//! `with_keep_alive(false)` restores the seed one-connection-per-request
//! behaviour for baseline measurements.

use crate::response::Response;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Read chunk size for the response accumulation loop.
const READ_CHUNK: usize = 16 * 1024;

/// Blocking HTTP/1.1 client bound to one server address.
///
/// Cloning yields an independent client (same address and settings, its
/// own connection) — clone per thread for concurrent load.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
    conn: Mutex<Option<ClientConn>>,
}

impl Clone for HttpClient {
    fn clone(&self) -> Self {
        Self {
            addr: self.addr,
            timeout: self.timeout,
            keep_alive: self.keep_alive,
            conn: Mutex::new(None),
        }
    }
}

/// A persistent connection: the socket plus any bytes read past the end of
/// the previous response (pipelined leftovers).
#[derive(Debug)]
struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Creates a keep-alive client for `addr` with a 10 s timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(10),
            keep_alive: true,
            conn: Mutex::new(None),
        }
    }

    /// Overrides the socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Selects the connection mode: `true` (the default) reuses one
    /// persistent socket, `false` sends `Connection: close` and opens a
    /// fresh socket per request (the seed behaviour).
    #[must_use]
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Self {
        self.keep_alive = keep_alive;
        self
    }

    /// Issues `GET <target>`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on connection, I/O or parse failures.
    pub fn get(&self, target: &str) -> Result<Response, String> {
        self.request("GET", target, &[])
    }

    /// Issues `POST <target>` with a body.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on connection, I/O or parse failures.
    pub fn post(&self, target: &str, body: &[u8]) -> Result<Response, String> {
        self.request("POST", target, body)
    }

    /// Drops the cached connection (the next request reconnects). Also the
    /// `--requests-per-conn` knob of the load harness.
    pub fn reset_connection(&self) {
        *self.conn.lock().expect("client connection poisoned") = None;
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> Result<Response, String> {
        let mut guard = self.conn.lock().expect("client connection poisoned");
        // A cached connection may have been closed server-side since the
        // last request (idle reaping, max-requests, restart) — on failure,
        // retry exactly once on a fresh socket. A fresh connection's
        // failure is returned as-is.
        loop {
            let reusing = guard.is_some();
            if !reusing {
                *guard = Some(self.connect()?);
            }
            let conn = guard.as_mut().expect("connection just ensured");
            match Self::round_trip(conn, method, target, body, self.keep_alive) {
                Ok(response) => {
                    if !self.keep_alive || response.closes_connection() {
                        *guard = None;
                    }
                    return Ok(response);
                }
                Err(err) => {
                    *guard = None;
                    if !reusing {
                        return Err(err);
                    }
                }
            }
        }
    }

    fn connect(&self) -> Result<ClientConn, String> {
        let stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes one request and reads one response off the connection,
    /// leaving any pipelined surplus bytes in the connection buffer.
    fn round_trip(
        conn: &mut ClientConn,
        method: &str,
        target: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> Result<Response, String> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            conn.stream,
            "{method} {target} HTTP/1.1\r\nhost: hyrec\r\ncontent-length: {}\r\n\
             connection: {connection}\r\naccept-encoding: gzip\r\n\r\n",
            body.len()
        )
        .map_err(|e| format!("write: {e}"))?;
        conn.stream
            .write_all(body)
            .map_err(|e| format!("write body: {e}"))?;
        conn.stream.flush().map_err(|e| format!("flush: {e}"))?;

        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if let Some((response, consumed)) =
                Response::try_parse(&conn.buf).map_err(|e| format!("parse: {e}"))?
            {
                conn.buf.drain(..consumed);
                return Ok(response);
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF delimits a response without Content-Length; an
                    // empty buffer means the server closed before replying.
                    if conn.buf.is_empty() {
                        return Err("connection closed before response".to_owned());
                    }
                    let response = Response::parse_close_delimited(&conn.buf)
                        .map_err(|e| format!("parse: {e}"))?;
                    conn.buf.clear();
                    return Ok(return_closed(response));
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}

/// A close-delimited response implies the connection is done: mark it so
/// the caller drops the cached socket.
fn return_closed(mut response: Response) -> Response {
    response.set_disposition(crate::response::Disposition::Close);
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Disposition;

    #[test]
    fn parses_basic_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 2\r\n\r\nhi";
        let (response, consumed) = Response::try_parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-type"), Some("text/plain"));
        assert_eq!(response.body, b"hi");
    }

    #[test]
    fn parses_response_without_length_at_eof() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\ngone";
        let response = Response::parse_close_delimited(raw).unwrap();
        assert_eq!(response.status, 404);
        assert_eq!(response.body, b"gone");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Response::try_parse(b"not http\r\n\r\n").is_err());
        assert!(Response::try_parse(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(Response::parse_close_delimited(b"").is_err());
    }

    #[test]
    fn close_delimited_response_is_marked_close() {
        let response = return_closed(Response::ok("text/plain", b"x".to_vec()));
        assert_eq!(response.disposition, Disposition::Close);
    }

    #[test]
    fn connect_failure_is_an_error() {
        // Port 1 on localhost is almost certainly closed.
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(client.get("/x").is_err());
    }

    #[test]
    fn clone_is_an_independent_client() {
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap());
        let twin = client.clone();
        assert_eq!(twin.addr, client.addr);
        assert!(twin.conn.lock().unwrap().is_none());
    }
}
