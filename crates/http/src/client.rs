//! A small blocking HTTP client for tests, examples and load generation.

use crate::response::Response;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Blocking HTTP/1.1 client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// Creates a client for `addr` with a 10 s timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Issues `GET <target>`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on connection, I/O or parse failures.
    pub fn get(&self, target: &str) -> Result<Response, String> {
        self.request("GET", target, &[])
    }

    /// Issues `POST <target>` with a body.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on connection, I/O or parse failures.
    pub fn post(&self, target: &str, body: &[u8]) -> Result<Response, String> {
        self.request("POST", target, body)
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> Result<Response, String> {
        let mut stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        let _ = stream.set_nodelay(true);

        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nhost: hyrec\r\ncontent-length: {}\r\naccept-encoding: gzip\r\n\r\n",
            body.len()
        )
        .map_err(|e| format!("write: {e}"))?;
        stream
            .write_all(body)
            .map_err(|e| format!("write body: {e}"))?;

        parse_response(&mut stream)
    }
}

fn parse_response<R: Read>(stream: R) -> Result<Response, String> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().ok_or("empty response")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad version {version}"));
    }
    let status: u16 = parts
        .next()
        .ok_or("missing status code")?
        .parse()
        .map_err(|_| "non-numeric status".to_owned())?;

    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }

    let body = match headers.get("content-length") {
        Some(len) => {
            let len: usize = len.parse().map_err(|_| "bad content-length".to_owned())?;
            let mut body = vec![0u8; len];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
            body
        }
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_response() {
        let raw = "HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 2\r\n\r\nhi";
        let response = parse_response(raw.as_bytes()).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-type"), Some("text/plain"));
        assert_eq!(response.body, b"hi");
    }

    #[test]
    fn parses_response_without_length() {
        let raw = "HTTP/1.1 404 Not Found\r\n\r\ngone";
        let response = parse_response(raw.as_bytes()).unwrap();
        assert_eq!(response.status, 404);
        assert_eq!(response.body, b"gone");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http".as_bytes()).is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n".as_bytes()).is_err());
        assert!(parse_response("".as_bytes()).is_err());
    }

    #[test]
    fn connect_failure_is_an_error() {
        // Port 1 on localhost is almost certainly closed.
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(client.get("/x").is_err());
    }
}
