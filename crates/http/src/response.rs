//! HTTP/1.1 response building and parsing, with optional gzip content
//! encoding and an explicit connection [`Disposition`].

use std::collections::HashMap;
use std::io::{self, Write};

/// What happens to the connection after this response — serialized as the
/// `Connection` header.
///
/// Handlers never choose this: the serving front-end decides per request
/// from the parsed `Connection`/HTTP-version fields (see
/// [`crate::Request::wants_keep_alive`]), the connection's
/// max-requests budget and shutdown state, and stamps it onto the response
/// just before serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// The connection stays open for further requests.
    #[default]
    KeepAlive,
    /// The connection closes after this response is written.
    Close,
}

/// A response under construction (and, on the client side, as parsed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Header map, names lowercased.
    pub headers: HashMap<String, String>,
    /// Body bytes as they will appear on the wire.
    pub body: Vec<u8>,
    /// Connection lifetime after this response (drives the `Connection`
    /// header on serialization).
    pub disposition: Disposition,
}

impl Response {
    /// A `200 OK` with a body and content type.
    #[must_use]
    pub fn ok(content_type: &str, body: Vec<u8>) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".to_owned(), content_type.to_owned());
        Self {
            status: 200,
            headers,
            body,
            disposition: Disposition::default(),
        }
    }

    /// A JSON `200 OK`, gzip-compressed exactly like the paper's server
    /// ("compressed on the fly by the server using gzip", Section 4.2).
    #[must_use]
    pub fn ok_json_gzip(json_bytes: &[u8]) -> Self {
        let mut response = Self::ok("application/json", hyrec_wire::gzip::compress(json_bytes));
        response
            .headers
            .insert("content-encoding".to_owned(), "gzip".to_owned());
        response
    }

    /// A pre-gzipped JSON `200 OK` (body already compressed by the caller).
    #[must_use]
    pub fn ok_pregzipped_json(gzipped: Vec<u8>) -> Self {
        let mut response = Self::ok("application/json", gzipped);
        response
            .headers
            .insert("content-encoding".to_owned(), "gzip".to_owned());
        response
    }

    /// An error response with a plain-text body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".to_owned(), "text/plain".to_owned());
        Self {
            status,
            headers,
            body: message.as_bytes().to_vec(),
            disposition: Disposition::default(),
        }
    }

    /// `404 Not Found`.
    #[must_use]
    pub fn not_found() -> Self {
        Self::error(404, "not found")
    }

    /// `400 Bad Request` with a reason.
    #[must_use]
    pub fn bad_request(reason: &str) -> Self {
        Self::error(400, reason)
    }

    /// Sets the connection disposition (builder form).
    #[must_use]
    pub fn with_disposition(mut self, disposition: Disposition) -> Self {
        self.disposition = disposition;
        self
    }

    /// Sets the connection disposition in place.
    pub fn set_disposition(&mut self, disposition: Disposition) {
        self.disposition = disposition;
    }

    /// Whether this response announces `Connection: close`.
    #[must_use]
    pub fn closes_connection(&self) -> bool {
        self.disposition == Disposition::Close
    }

    /// Header value (name case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The body, transparently gunzipped when `Content-Encoding: gzip`.
    ///
    /// # Errors
    ///
    /// Returns the gzip error message if the body is corrupt.
    pub fn decoded_body(&self) -> Result<Vec<u8>, String> {
        if self.header("content-encoding") == Some("gzip") {
            hyrec_wire::gzip::decompress(&self.body).map_err(|e| e.to_string())
        } else {
            Ok(self.body.clone())
        }
    }

    /// Serializes into a byte buffer, appending to `out`. Adds
    /// `Content-Length` and derives the `Connection` header from the
    /// response's [`Disposition`].
    ///
    /// The reactor's write path: the buffer is per-connection and reused, so
    /// staging a response costs no allocation in steady state.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        // Writing to a Vec cannot fail.
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, reason);
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "content-length: {}\r\n", self.body.len());
        let connection = match self.disposition {
            Disposition::KeepAlive => "keep-alive",
            Disposition::Close => "close",
        };
        let _ = write!(out, "connection: {connection}\r\n\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serializes onto a stream — one buffered write, one syscall in the
    /// common case.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> io::Result<()> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_into(&mut buf);
        stream.write_all(&buf)?;
        stream.flush()
    }

    /// Total bytes this response occupies on the wire (status line +
    /// headers + body) — the quantity metered in the bandwidth figures.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.write_into(&mut buf);
        buf.len()
    }

    /// Incremental parse over an accumulation buffer — the client's
    /// keep-alive read path, mirroring [`crate::Request::try_parse`].
    ///
    /// Returns `Ok(None)` when `buf` does not yet hold a complete
    /// `Content-Length`-delimited response (read more and call again; this
    /// includes a complete header block *without* a `Content-Length`, whose
    /// body is close-delimited — see [`Response::parse_close_delimited`]),
    /// and `Ok(Some((response, consumed)))` when a full response occupies
    /// the first `consumed` bytes. The parsed response's
    /// [`Disposition`] reflects its `Connection` header, so a keep-alive
    /// response round-trips.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on malformed input.
    pub fn try_parse(buf: &[u8]) -> Result<Option<(Response, usize)>, String> {
        let Some((status, headers, head_end)) = parse_head(buf)? else {
            return Ok(None);
        };
        let Some(length) = headers.get("content-length") else {
            return Ok(None); // Close-delimited body: needs EOF.
        };
        let length: usize = length
            .parse()
            .map_err(|_| "bad content-length".to_owned())?;
        let total = head_end + length;
        if buf.len() < total {
            return Ok(None);
        }
        let body = buf[head_end..total].to_vec();
        Ok(Some((assemble(status, headers, body), total)))
    }

    /// Parses a close-delimited response: the peer signalled end-of-body by
    /// closing the connection, so everything after the header block is the
    /// body. Used by the client when a response carries no
    /// `Content-Length`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the header block is incomplete or
    /// malformed — or when a declared `Content-Length` disagrees with the
    /// bytes actually received, so a server dying mid-body surfaces as an
    /// error instead of a silently truncated 200.
    pub fn parse_close_delimited(buf: &[u8]) -> Result<Response, String> {
        match parse_head(buf)? {
            Some((status, headers, head_end)) => {
                let body = buf[head_end..].to_vec();
                if let Some(length) = headers.get("content-length") {
                    let length: usize = length
                        .parse()
                        .map_err(|_| "bad content-length".to_owned())?;
                    if body.len() != length {
                        return Err(format!(
                            "connection closed mid-body ({} of {length} bytes)",
                            body.len()
                        ));
                    }
                }
                Ok(assemble(status, headers, body))
            }
            None => Err("connection closed mid-header".to_owned()),
        }
    }
}

/// Builds a `Response` from parsed parts, deriving the disposition from
/// the `Connection` header (absent ⇒ keep-alive, the HTTP/1.1 default).
fn assemble(status: u16, headers: HashMap<String, String>, body: Vec<u8>) -> Response {
    let disposition = match headers.get("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => Disposition::Close,
        _ => Disposition::KeepAlive,
    };
    Response {
        status,
        headers,
        body,
        disposition,
    }
}

/// A parsed response head: `(status, headers, offset_past_blank_line)`.
type ResponseHead = (u16, HashMap<String, String>, usize);

/// Parses the status line + header block if `buf` holds a complete one.
fn parse_head(buf: &[u8]) -> Result<Option<ResponseHead>, String> {
    let Some(blank) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..blank]).map_err(|_| "non-utf8 response head".to_owned())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().ok_or("empty response")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad version {version}"));
    }
    let status: u16 = parts
        .next()
        .ok_or("missing status code")?
        .parse()
        .map_err(|_| "non-numeric status".to_owned())?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    Ok(Some((status, headers, blank + 4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_json_gzip_round_trips() {
        let body = br#"{"hello":[1,2,3]}"#.to_vec();
        let response = Response::ok_json_gzip(&body);
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-encoding"), Some("gzip"));
        assert_eq!(response.decoded_body().unwrap(), body);
    }

    #[test]
    fn plain_body_passthrough() {
        let response = Response::ok("text/plain", b"hi".to_vec());
        assert_eq!(response.decoded_body().unwrap(), b"hi");
    }

    #[test]
    fn error_constructors() {
        assert_eq!(Response::not_found().status, 404);
        let bad = Response::bad_request("missing uid");
        assert_eq!(bad.status, 400);
        assert_eq!(bad.body, b"missing uid");
    }

    #[test]
    fn write_to_produces_valid_http() {
        let response = Response::ok("text/plain", b"body".to_vec());
        let mut buf = Vec::new();
        response.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nbody"));
    }

    #[test]
    fn connection_header_derives_from_disposition() {
        // Regression: `write_into` used to hardcode `Connection: close`.
        let keep = Response::ok("text/plain", b"k".to_vec());
        let mut buf = Vec::new();
        keep.write_into(&mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "got: {text}");
        assert!(!text.contains("connection: close"), "got: {text}");

        let close = Response::ok("text/plain", b"c".to_vec()).with_disposition(Disposition::Close);
        let mut buf = Vec::new();
        close.write_into(&mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("connection: close\r\n"), "got: {text}");
    }

    #[test]
    fn keep_alive_response_round_trips_through_client_parsing() {
        // Regression for the keep-alive redesign: a served keep-alive
        // response must come back intact through the client's incremental
        // parser, reporting the exact consumed length (so pipelined
        // responses behind it are preserved).
        let response = Response::ok("application/json", b"{\"ok\":true}".to_vec());
        assert_eq!(response.disposition, Disposition::KeepAlive);
        let mut wire = Vec::new();
        response.write_into(&mut wire);
        let wire_len = wire.len();
        wire.extend_from_slice(b"HTTP/1.1 200 OK\r\n"); // pipelined next head
        let (parsed, consumed) = Response::try_parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire_len);
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, response.body);
        assert_eq!(parsed.disposition, Disposition::KeepAlive);
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        assert_eq!(parsed.header("content-type"), Some("application/json"));
    }

    #[test]
    fn close_response_parses_with_close_disposition() {
        let mut wire = Vec::new();
        Response::ok("text/plain", b"bye".to_vec())
            .with_disposition(Disposition::Close)
            .write_into(&mut wire);
        let (parsed, _) = Response::try_parse(&wire).unwrap().unwrap();
        assert!(parsed.closes_connection());
    }

    #[test]
    fn try_parse_incremental_framing() {
        let mut wire = Vec::new();
        Response::ok("text/plain", b"hello".to_vec()).write_into(&mut wire);
        for cut in 0..wire.len() {
            assert_eq!(
                Response::try_parse(&wire[..cut]).unwrap(),
                None,
                "cut {cut}"
            );
        }
        let (parsed, consumed) = Response::try_parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(parsed.body, b"hello");
    }

    #[test]
    fn close_delimited_body_needs_eof() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\ngone";
        // No content-length: try_parse cannot frame it…
        assert_eq!(Response::try_parse(raw).unwrap(), None);
        // …but at EOF the remainder is the body.
        let parsed = Response::parse_close_delimited(raw).unwrap();
        assert_eq!(parsed.status, 404);
        assert_eq!(parsed.body, b"gone");
    }

    #[test]
    fn try_parse_rejects_garbage() {
        assert!(Response::try_parse(b"not http\r\n\r\n").is_err());
        assert!(Response::try_parse(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(Response::parse_close_delimited(b"HTTP/1.1 200").is_err());
    }

    #[test]
    fn truncated_content_length_body_is_an_error_at_eof() {
        // A server dying mid-body must not surface as a silent 200 with a
        // short body (the old read_exact path errored; so must this one).
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\nonly-a-little";
        assert_eq!(Response::try_parse(raw).unwrap(), None);
        let err = Response::parse_close_delimited(raw).unwrap_err();
        assert!(err.contains("mid-body"), "got: {err}");
    }

    #[test]
    fn wire_len_counts_everything() {
        let response = Response::ok("text/plain", b"xy".to_vec());
        assert!(response.wire_len() > 2 + 17); // body + status line at least
    }

    #[test]
    fn corrupt_gzip_is_an_error() {
        let mut response = Response::ok_json_gzip(b"{}");
        response.body[12] ^= 0xFF;
        assert!(response.decoded_body().is_err());
    }
}
