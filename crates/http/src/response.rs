//! HTTP/1.1 response building with optional gzip content encoding.

use std::collections::HashMap;
use std::io::{self, Write};

/// A response under construction (and, on the client side, as parsed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Header map, names lowercased.
    pub headers: HashMap<String, String>,
    /// Body bytes as they will appear on the wire.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with a body and content type.
    #[must_use]
    pub fn ok(content_type: &str, body: Vec<u8>) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".to_owned(), content_type.to_owned());
        Self {
            status: 200,
            headers,
            body,
        }
    }

    /// A JSON `200 OK`, gzip-compressed exactly like the paper's server
    /// ("compressed on the fly by the server using gzip", Section 4.2).
    #[must_use]
    pub fn ok_json_gzip(json_bytes: &[u8]) -> Self {
        let mut response = Self::ok("application/json", hyrec_wire::gzip::compress(json_bytes));
        response
            .headers
            .insert("content-encoding".to_owned(), "gzip".to_owned());
        response
    }

    /// A pre-gzipped JSON `200 OK` (body already compressed by the caller).
    #[must_use]
    pub fn ok_pregzipped_json(gzipped: Vec<u8>) -> Self {
        let mut response = Self::ok("application/json", gzipped);
        response
            .headers
            .insert("content-encoding".to_owned(), "gzip".to_owned());
        response
    }

    /// An error response with a plain-text body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".to_owned(), "text/plain".to_owned());
        Self {
            status,
            headers,
            body: message.as_bytes().to_vec(),
        }
    }

    /// `404 Not Found`.
    #[must_use]
    pub fn not_found() -> Self {
        Self::error(404, "not found")
    }

    /// `400 Bad Request` with a reason.
    #[must_use]
    pub fn bad_request(reason: &str) -> Self {
        Self::error(400, reason)
    }

    /// Header value (name case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The body, transparently gunzipped when `Content-Encoding: gzip`.
    ///
    /// # Errors
    ///
    /// Returns the gzip error message if the body is corrupt.
    pub fn decoded_body(&self) -> Result<Vec<u8>, String> {
        if self.header("content-encoding") == Some("gzip") {
            hyrec_wire::gzip::decompress(&self.body).map_err(|e| e.to_string())
        } else {
            Ok(self.body.clone())
        }
    }

    /// Serializes into a byte buffer (adds `Content-Length` and
    /// `Connection: close`), appending to `out`.
    ///
    /// The reactor's write path: the buffer is per-connection and reused, so
    /// staging a response costs no allocation in steady state.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        // Writing to a Vec cannot fail.
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, reason);
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "content-length: {}\r\n", self.body.len());
        let _ = write!(out, "connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serializes onto a stream (adds `Content-Length` and
    /// `Connection: close`) — one buffered write, one syscall in the
    /// common case.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> io::Result<()> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_into(&mut buf);
        stream.write_all(&buf)?;
        stream.flush()
    }

    /// Total bytes this response occupies on the wire (status line +
    /// headers + body) — the quantity metered in the bandwidth figures.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.write_into(&mut buf);
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_json_gzip_round_trips() {
        let body = br#"{"hello":[1,2,3]}"#.to_vec();
        let response = Response::ok_json_gzip(&body);
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-encoding"), Some("gzip"));
        assert_eq!(response.decoded_body().unwrap(), body);
    }

    #[test]
    fn plain_body_passthrough() {
        let response = Response::ok("text/plain", b"hi".to_vec());
        assert_eq!(response.decoded_body().unwrap(), b"hi");
    }

    #[test]
    fn error_constructors() {
        assert_eq!(Response::not_found().status, 404);
        let bad = Response::bad_request("missing uid");
        assert_eq!(bad.status, 400);
        assert_eq!(bad.body, b"missing uid");
    }

    #[test]
    fn write_to_produces_valid_http() {
        let response = Response::ok("text/plain", b"body".to_vec());
        let mut buf = Vec::new();
        response.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nbody"));
    }

    #[test]
    fn wire_len_counts_everything() {
        let response = Response::ok("text/plain", b"xy".to_vec());
        assert!(response.wire_len() > 2 + 17); // body + status line at least
    }

    #[test]
    fn corrupt_gzip_is_an_error() {
        let mut response = Response::ok_json_gzip(b"{}");
        response.body[12] ^= 0xFF;
        assert!(response.decoded_body().is_err());
    }
}
