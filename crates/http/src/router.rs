//! Path-prefix routing through a single [`Handler`] trait.
//!
//! Every route is a batched handler behind a [`BatchPolicy`]: the handler
//! receives a slice of requests and must append exactly one response per
//! request, in order. A *scalar* route is the policy-of-1 special case
//! ([`BatchPolicy::scalar`]) — it is never gathered, so plain
//! request/response endpoints pay nothing for the unified shape. Routes
//! whose policy allows more than one request per call are *coalescable*:
//! the reactor front-end gathers concurrent (and pipelined) requests to
//! them — up to the policy cap, within the gather window — and hands whole
//! bursts to one handler call. On the thread-per-connection server every
//! route simply runs with batches of one, so the two server front-ends
//! share one router type.

use crate::request::Request;
use crate::response::Response;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A request handler: the one trait both server front-ends dispatch
/// through.
///
/// `handle` must push exactly one response per request onto `out`, in
/// input order. Closures of shape `Fn(&[Request], &mut Vec<Response>)`
/// implement it via a blanket impl; plain request/response closures wrap
/// with [`Scalar`].
pub trait Handler: Send + Sync {
    /// Serves a batch of requests, appending one response per request (in
    /// order) to `out`.
    fn handle(&self, batch: &[Request], out: &mut Vec<Response>);
}

impl<F> Handler for F
where
    F: Fn(&[Request], &mut Vec<Response>) + Send + Sync,
{
    fn handle(&self, batch: &[Request], out: &mut Vec<Response>) {
        self(batch, out);
    }
}

/// Adapter turning a plain `Fn(&Request) -> Response` into a [`Handler`]
/// (applied element-wise — the shape scalar routes are written in).
pub struct Scalar<F>(pub F);

impl<F> Handler for Scalar<F>
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, batch: &[Request], out: &mut Vec<Response>) {
        out.extend(batch.iter().map(&self.0));
    }
}

/// Coalescing parameters of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are pending. `1` disables
    /// gathering entirely (the scalar special case).
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long (the
    /// reactor also flushes early whenever the event loop goes quiescent,
    /// so lightly-loaded servers do not pay the window as latency).
    pub gather_window: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 128,
            gather_window: Duration::from_millis(1),
        }
    }
}

impl BatchPolicy {
    /// The policy-of-1: dispatch immediately, never gather.
    #[must_use]
    pub fn scalar() -> Self {
        Self {
            max_batch: 1,
            gather_window: Duration::ZERO,
        }
    }

    /// Whether this policy ever gathers more than one request per call.
    #[must_use]
    pub fn is_batched(&self) -> bool {
        self.max_batch > 1
    }
}

/// A registered route: method + prefix + policy + handler.
pub struct Route {
    method: String,
    prefix: String,
    policy: BatchPolicy,
    handler: Box<dyn Handler>,
}

impl Route {
    /// The coalescing parameters.
    #[must_use]
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Runs the handler on a gathered batch.
    ///
    /// # Panics
    ///
    /// Panics if the handler breaks the one-response-per-request contract.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> Vec<Response> {
        let mut responses = Vec::with_capacity(requests.len());
        self.handler.handle(requests, &mut responses);
        assert_eq!(
            responses.len(),
            requests.len(),
            "batch handler for {} returned {} responses for {} requests",
            self.prefix,
            responses.len(),
            requests.len()
        );
        responses
    }
}

/// How a request resolves against the routing table.
pub enum Resolution {
    /// A route matched; the index is stable and usable with
    /// [`Router::route_at`].
    Route(usize),
    /// A path matched but with a different method.
    MethodNotAllowed,
    /// Nothing matched.
    NotFound,
}

/// Longest-prefix router over a single [`Handler`] route table.
///
/// A prefix registered with a trailing slash also matches the bare path:
/// `/online/` matches `/online` (and vice versa `/online` matches
/// `/online/...` by ordinary prefixing), so clients may omit or include the
/// trailing slash interchangeably.
///
/// ```
/// use hyrec_http::{Request, Response, Router};
///
/// let mut router = Router::new();
/// router.get("/ping", |_req| Response::ok("text/plain", b"pong".to_vec()));
/// let req = Request::parse("GET /ping HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
/// assert_eq!(router.dispatch(&req).body, b"pong");
/// ```
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<Arc<Route>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<String> = self
            .routes
            .iter()
            .map(|r| {
                format!(
                    "{} {}{}",
                    r.method,
                    r.prefix,
                    if r.policy.is_batched() {
                        " (batched)"
                    } else {
                        ""
                    }
                )
            })
            .collect();
        f.debug_struct("Router").field("routes", &paths).finish()
    }
}

/// Whether `path` falls under `prefix`, treating a trailing-slash prefix
/// and its bare form as the same endpoint. A bare prefix only matches on a
/// segment boundary (`/rate` matches `/rate` and `/rate/…`, never
/// `/ratex`).
fn path_matches(prefix: &str, path: &str) -> bool {
    if prefix.ends_with('/') {
        path.starts_with(prefix) || path == &prefix[..prefix.len() - 1]
    } else {
        path.strip_prefix(prefix)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
    }
}

impl Router {
    /// An empty router (dispatches everything to 404).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for an arbitrary method under `prefix` with an
    /// explicit coalescing policy — the one registration point every sugar
    /// method funnels through.
    pub fn route<H: Handler + 'static>(
        &mut self,
        method: &str,
        prefix: &str,
        policy: BatchPolicy,
        handler: H,
    ) -> &mut Self {
        self.routes.push(Arc::new(Route {
            method: method.to_ascii_uppercase(),
            prefix: prefix.to_owned(),
            policy,
            handler: Box::new(handler),
        }));
        self
    }

    /// Registers a scalar (policy-of-1) handler for `GET` requests.
    pub fn get<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("GET", prefix, BatchPolicy::scalar(), Scalar(handler))
    }

    /// Registers a scalar (policy-of-1) handler for `POST` requests.
    pub fn post<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("POST", prefix, BatchPolicy::scalar(), Scalar(handler))
    }

    /// Number of registered routes.
    #[must_use]
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The route at `index` (as returned by [`Resolution::Route`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn route_at(&self, index: usize) -> &Arc<Route> {
        &self.routes[index]
    }

    /// Resolves a request against the route table, longest prefix first;
    /// on equal prefix length a coalescable route beats a scalar one (more
    /// specific intent), otherwise the earlier registration wins.
    #[must_use]
    pub fn resolve(&self, request: &Request) -> Resolution {
        let mut best: Option<(usize, &Route)> = None;
        let mut path_matched = false;
        for (index, route) in self.routes.iter().enumerate() {
            if !path_matches(&route.prefix, &request.path) {
                continue;
            }
            path_matched = true;
            if route.method != request.method {
                continue;
            }
            let better = best.is_none_or(|(_, b)| {
                route.prefix.len() > b.prefix.len()
                    || (route.prefix.len() == b.prefix.len()
                        && route.policy.is_batched()
                        && !b.policy.is_batched())
            });
            if better {
                best = Some((index, route));
            }
        }
        match best {
            Some((index, _)) => Resolution::Route(index),
            None if path_matched => Resolution::MethodNotAllowed,
            None => Resolution::NotFound,
        }
    }

    /// Dispatches a request to the longest matching prefix; `404` when
    /// nothing matches, `405` when the path matches but the method does
    /// not. Every route runs with a batch of one.
    #[must_use]
    pub fn dispatch(&self, request: &Request) -> Response {
        match self.resolve(request) {
            Resolution::Route(index) => {
                let mut responses = self.routes[index].run(std::slice::from_ref(request));
                responses.pop().expect("one response per request")
            }
            Resolution::MethodNotAllowed => Response::error(405, "method not allowed"),
            Resolution::NotFound => Response::not_found(),
        }
    }
}

/// Process-wide gather state for coalescable routes — **shard-safe**: one
/// pending batch per route behind a non-poisoning mutex, shared by every
/// reactor event loop, so `/online/` requests landing on *different*
/// reactor shards still coalesce into one handler call. Entries carry an
/// opaque destination `D` (shard, connection, sequence) that the flusher
/// uses to route each response back to the loop that owns its connection.
///
/// The lock is held only for push/steal bookkeeping — never across handler
/// execution — so shards contend for nanoseconds per request, not for the
/// batch's service time.
pub(crate) struct Gather<D> {
    /// One slot per route (indexed by route-table index); only slots of
    /// coalescable routes are ever touched.
    slots: Vec<Mutex<GatherSlot<D>>>,
    /// Route indices whose policy can gather — the only slots the sweep
    /// loops visit, so the coordinator's per-pass cost scales with the
    /// number of *batched* routes, not the whole route table.
    batched: Vec<usize>,
}

/// One route's pending batch.
struct GatherSlot<D> {
    entries: Vec<(D, Request)>,
    /// Arrival time of the oldest pending entry (`None` when empty).
    oldest: Option<Instant>,
}

/// A batch stolen from the gather, ready for one handler call.
pub(crate) struct GatheredBatch<D> {
    /// Route-table index the batch belongs to.
    pub route: usize,
    /// Destination-tagged requests, in arrival order.
    pub entries: Vec<(D, Request)>,
}

/// What [`Gather::push`] did with the request (single-entry convenience
/// used by the unit tests; the reactor pushes whole bursts via
/// [`Gather::push_many`]).
#[cfg(test)]
pub(crate) enum Pushed<D> {
    /// The push crossed the route's `max_batch`: the whole batch comes
    /// back, and this pusher (exactly one concurrent pusher can cross the
    /// threshold) is responsible for flushing it.
    Full(GatheredBatch<D>),
    /// The request is pending. `first` means it opened a fresh slot, so a
    /// gather window is now running that somebody must service — the
    /// reactor uses it to nudge the coordinator shard awake.
    Pending {
        /// Whether this entry is the new oldest of its slot.
        first: bool,
    },
}

impl<D> Gather<D> {
    /// One empty slot per route in `router`.
    pub(crate) fn new(router: &Router) -> Self {
        Self {
            slots: (0..router.route_count())
                .map(|_| {
                    Mutex::new(GatherSlot {
                        entries: Vec::new(),
                        oldest: None,
                    })
                })
                .collect(),
            batched: (0..router.route_count())
                .filter(|&route| router.route_at(route).policy().is_batched())
                .collect(),
        }
    }

    /// Adds a request to `route`'s pending batch; see [`Pushed`] for the
    /// outcomes.
    #[cfg(test)]
    pub(crate) fn push(
        &self,
        router: &Router,
        route: usize,
        dest: D,
        request: Request,
    ) -> Pushed<D> {
        let (mut full, first) = self.push_many(router, route, vec![(dest, request)]);
        match full.pop() {
            Some(batch) => Pushed::Full(batch),
            None => Pushed::Pending { first },
        }
    }

    /// Adds a whole burst of requests to `route`'s pending batch under
    /// **one** lock acquisition — so a pipelined burst framed in one read
    /// enters the gather atomically, and a coordinator idle-flush running
    /// on another core cannot steal the slot between its entries and
    /// splinter a ready-made batch into per-request handler calls.
    ///
    /// Returns every batch the burst filled (a long burst can cross
    /// `max_batch` several times) plus whether a fresh slot was opened (a
    /// gather window is now running that the coordinator must service).
    pub(crate) fn push_many(
        &self,
        router: &Router,
        route: usize,
        entries: Vec<(D, Request)>,
    ) -> (Vec<GatheredBatch<D>>, bool) {
        let max_batch = router.route_at(route).policy().max_batch;
        let mut slot = self.slots[route].lock();
        let mut first = false;
        let mut full = Vec::new();
        for entry in entries {
            if slot.entries.is_empty() {
                slot.oldest = Some(Instant::now());
                first = true;
            }
            slot.entries.push(entry);
            if slot.entries.len() >= max_batch {
                slot.oldest = None;
                full.push(GatheredBatch {
                    route,
                    entries: std::mem::take(&mut slot.entries),
                });
            }
        }
        (full, first)
    }

    /// Steals every batch that is due: its gather window expired, or
    /// `flush_all` (pipeline idle / drain) forces everything out.
    pub(crate) fn take_due(
        &self,
        router: &Router,
        now: Instant,
        flush_all: bool,
    ) -> Vec<GatheredBatch<D>> {
        let mut due = Vec::new();
        for &route in &self.batched {
            let mut slot = self.slots[route].lock();
            let expired = slot.oldest.is_some_and(|oldest| {
                flush_all
                    || now.duration_since(oldest) >= router.route_at(route).policy().gather_window
            });
            if expired {
                slot.oldest = None;
                due.push(GatheredBatch {
                    route,
                    entries: std::mem::take(&mut slot.entries),
                });
            }
        }
        due
    }

    /// Milliseconds until the soonest pending gather window expires
    /// (rounded up; ≥ 1 so callers never busy-spin on a sub-millisecond
    /// remainder), or `None` when nothing is pending.
    pub(crate) fn next_deadline_ms(&self, router: &Router, now: Instant) -> Option<i32> {
        let mut soonest: Option<i32> = None;
        for &route in &self.batched {
            let slot = self.slots[route].lock();
            if let Some(oldest) = slot.oldest {
                let window = router.route_at(route).policy().gather_window;
                let remaining = window.saturating_sub(now.duration_since(oldest));
                let ms = i32::try_from(remaining.as_millis())
                    .unwrap_or(i32::MAX)
                    .max(1);
                soonest = Some(soonest.map_or(ms, |s| s.min(ms)));
            }
        }
        soonest
    }

    /// Whether every slot is empty (the drain-completion condition).
    pub(crate) fn is_empty(&self) -> bool {
        self.batched
            .iter()
            .all(|&route| self.slots[route].lock().entries.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, target: &str) -> Request {
        Request::parse(format!("{method} {target} HTTP/1.1\r\n\r\n").as_bytes()).unwrap()
    }

    #[test]
    fn dispatches_longest_prefix() {
        let mut router = Router::new();
        router.get("/", |_| Response::ok("text/plain", b"root".to_vec()));
        router.get("/api/", |_| Response::ok("text/plain", b"api".to_vec()));
        router.get("/api/deep/", |_| {
            Response::ok("text/plain", b"deep".to_vec())
        });

        assert_eq!(router.dispatch(&req("GET", "/x")).body, b"root");
        assert_eq!(router.dispatch(&req("GET", "/api/online")).body, b"api");
        assert_eq!(router.dispatch(&req("GET", "/api/deep/1")).body, b"deep");
    }

    #[test]
    fn unknown_path_is_404() {
        let mut router = Router::new();
        router.get("/only/", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
    }

    #[test]
    fn wrong_method_is_405() {
        let mut router = Router::new();
        router.get("/thing", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("POST", "/thing")).status, 405);
    }

    #[test]
    fn get_and_post_coexist() {
        let mut router = Router::new();
        router.get("/dual", |_| Response::ok("text/plain", b"get".to_vec()));
        router.post("/dual", |_| Response::ok("text/plain", b"post".to_vec()));
        assert_eq!(router.dispatch(&req("GET", "/dual")).body, b"get");
        assert_eq!(router.dispatch(&req("POST", "/dual")).body, b"post");
    }

    #[test]
    fn trailing_slash_routes_are_equivalent() {
        // Regression: `/online/` registered, `/online` requested (and the
        // mirror case). The seed router was trailing-slash sensitive.
        let mut router = Router::new();
        router.get("/online/", |_| Response::ok("text/plain", b"on".to_vec()));
        router.get("/rate", |_| Response::ok("text/plain", b"rt".to_vec()));

        assert_eq!(router.dispatch(&req("GET", "/online/")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/online")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/online/?uid=1")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/rate")).body, b"rt");
        assert_eq!(router.dispatch(&req("GET", "/rate/")).body, b"rt");
        // But unrelated longer segments must not match the bare form.
        assert_eq!(router.dispatch(&req("GET", "/onlinex")).status, 404);
        assert_eq!(router.dispatch(&req("GET", "/ratex")).status, 404);
    }

    #[test]
    fn batched_route_dispatches_scalar_as_batch_of_one() {
        let mut router = Router::new();
        router.route(
            "GET",
            "/batch/",
            BatchPolicy::default(),
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(requests.iter().map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("batched:{uid}").into_bytes())
                }));
            },
        );
        assert_eq!(
            router.dispatch(&req("GET", "/batch/?uid=7")).body,
            b"batched:7"
        );
        assert_eq!(router.dispatch(&req("POST", "/batch/")).status, 405);
        assert_eq!(router.route_count(), 1);
        assert!(router.route_at(0).policy().is_batched());
    }

    #[test]
    fn route_resolution_and_run() {
        let mut router = Router::new();
        router.get("/a/", |_| Response::ok("text/plain", b"scalar".to_vec()));
        router.route(
            "GET",
            "/a/deeper/",
            BatchPolicy::default(),
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(
                    requests
                        .iter()
                        .map(|_| Response::ok("text/plain", b"batch".to_vec())),
                );
            },
        );
        // Longest prefix wins across policies.
        match router.resolve(&req("GET", "/a/deeper/x")) {
            Resolution::Route(index) => {
                assert!(router.route_at(index).policy().is_batched());
                let out = router
                    .route_at(index)
                    .run(&[req("GET", "/a/deeper/x"), req("GET", "/a/deeper/y")]);
                assert_eq!(out.len(), 2);
                assert_eq!(out[0].body, b"batch");
            }
            _ => panic!("expected route resolution"),
        }
        match router.resolve(&req("GET", "/a/only")) {
            Resolution::Route(index) => {
                assert!(!router.route_at(index).policy().is_batched());
                assert_eq!(router.dispatch(&req("GET", "/a/only")).body, b"scalar");
            }
            _ => panic!("expected route resolution"),
        }
    }

    #[test]
    fn batched_beats_scalar_on_equal_prefix() {
        let mut router = Router::new();
        router.get("/same/", |_| Response::ok("text/plain", b"scalar".to_vec()));
        router.route(
            "GET",
            "/same/",
            BatchPolicy::default(),
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(
                    requests
                        .iter()
                        .map(|_| Response::ok("text/plain", b"batch".to_vec())),
                );
            },
        );
        assert_eq!(router.dispatch(&req("GET", "/same/")).body, b"batch");
    }

    #[test]
    fn gather_fills_expires_and_drains() {
        let mut router = Router::new();
        router.route(
            "GET",
            "/g/",
            BatchPolicy {
                max_batch: 3,
                gather_window: Duration::from_millis(5),
            },
            |requests: &[Request], out: &mut Vec<Response>| {
                out.extend(
                    requests
                        .iter()
                        .map(|_| Response::ok("text/plain", Vec::new())),
                );
            },
        );
        let gather: Gather<u32> = Gather::new(&router);
        assert!(gather.is_empty());

        // The first push opens the slot (a window starts), the second
        // joins it, the third crosses max_batch and returns the whole
        // batch to its pusher.
        assert!(matches!(
            gather.push(&router, 0, 1, req("GET", "/g/")),
            Pushed::Pending { first: true }
        ));
        assert!(matches!(
            gather.push(&router, 0, 2, req("GET", "/g/")),
            Pushed::Pending { first: false }
        ));
        assert!(!gather.is_empty());
        let now = Instant::now();
        assert!(gather.next_deadline_ms(&router, now).is_some());
        let Pushed::Full(full) = gather.push(&router, 0, 3, req("GET", "/g/")) else {
            panic!("third push must fill the batch");
        };
        assert_eq!(full.route, 0);
        assert_eq!(
            full.entries.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(gather.is_empty());
        assert_eq!(gather.next_deadline_ms(&router, now), None);

        // A lone pending entry is stolen once its window expires (or
        // unconditionally with flush_all).
        assert!(matches!(
            gather.push(&router, 0, 4, req("GET", "/g/")),
            Pushed::Pending { first: true }
        ));
        assert!(gather.take_due(&router, Instant::now(), false).is_empty());
        let due = gather.take_due(&router, Instant::now() + Duration::from_millis(10), false);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].entries.len(), 1);
        assert!(matches!(
            gather.push(&router, 0, 5, req("GET", "/g/")),
            Pushed::Pending { first: true }
        ));
        let forced = gather.take_due(&router, Instant::now(), true);
        assert_eq!(forced.len(), 1);
        assert!(gather.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch handler")]
    fn batch_handler_arity_is_enforced() {
        let mut router = Router::new();
        router.route(
            "GET",
            "/bad/",
            BatchPolicy::default(),
            |_: &[Request], _: &mut Vec<Response>| {},
        );
        let _ = router.dispatch(&req("GET", "/bad/"));
    }
}
