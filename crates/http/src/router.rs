//! Path-prefix routing, with optional *batch routes* for request
//! coalescing.
//!
//! A scalar route handles one request at a time. A **batch route** declares
//! that concurrent requests to the same endpoint may be gathered (up to a
//! cap, within a gather window) and handed to one handler call — the hook
//! the reactor front-end uses to funnel `/online/` bursts into a single
//! `HyRecServer::build_jobs` call. On the thread-per-connection server a
//! batch route simply runs with batches of one, so the two server
//! front-ends share one router type.

use crate::request::Request;
use crate::response::Response;
use std::sync::Arc;
use std::time::Duration;

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A batched request handler: must return exactly one response per request,
/// in input order.
pub type BatchHandler = Arc<dyn Fn(&[Request]) -> Vec<Response> + Send + Sync>;

/// Coalescing parameters of a batch route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long (the
    /// reactor also flushes early whenever the event loop goes quiescent,
    /// so lightly-loaded servers do not pay the window as latency).
    pub gather_window: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 128,
            gather_window: Duration::from_millis(1),
        }
    }
}

/// A coalescable route: prefix + policy + batched handler.
pub struct BatchRoute {
    method: String,
    prefix: String,
    policy: BatchPolicy,
    handler: BatchHandler,
}

impl BatchRoute {
    /// The coalescing parameters.
    #[must_use]
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Runs the handler on a gathered batch.
    ///
    /// # Panics
    ///
    /// Panics if the handler breaks the one-response-per-request contract.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> Vec<Response> {
        let responses = (self.handler)(requests);
        assert_eq!(
            responses.len(),
            requests.len(),
            "batch handler for {} returned {} responses for {} requests",
            self.prefix,
            responses.len(),
            requests.len()
        );
        responses
    }
}

/// How a request resolves against the routing table.
pub enum Resolution {
    /// A scalar route matched.
    Scalar(Handler),
    /// A batch route matched; the index is stable and usable with
    /// [`Router::batch_route`].
    Batched(usize),
    /// A path matched but with a different method.
    MethodNotAllowed,
    /// Nothing matched.
    NotFound,
}

/// Longest-prefix router.
///
/// A prefix registered with a trailing slash also matches the bare path:
/// `/online/` matches `/online` (and vice versa `/online` matches
/// `/online/...` by ordinary prefixing), so clients may omit or include the
/// trailing slash interchangeably.
///
/// ```
/// use hyrec_http::{Request, Response, Router};
///
/// let mut router = Router::new();
/// router.get("/ping", |_req| Response::ok("text/plain", b"pong".to_vec()));
/// let req = Request::parse("GET /ping HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
/// assert_eq!(router.dispatch(&req).body, b"pong");
/// ```
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<(String, String, Handler)>,
    batch_routes: Vec<Arc<BatchRoute>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<&str> = self.routes.iter().map(|(_, p, _)| p.as_str()).collect();
        let batched: Vec<&str> = self
            .batch_routes
            .iter()
            .map(|r| r.prefix.as_str())
            .collect();
        f.debug_struct("Router")
            .field("routes", &paths)
            .field("batch_routes", &batched)
            .finish()
    }
}

/// Whether `path` falls under `prefix`, treating a trailing-slash prefix
/// and its bare form as the same endpoint. A bare prefix only matches on a
/// segment boundary (`/rate` matches `/rate` and `/rate/…`, never
/// `/ratex`).
fn path_matches(prefix: &str, path: &str) -> bool {
    if prefix.ends_with('/') {
        path.starts_with(prefix) || path == &prefix[..prefix.len() - 1]
    } else {
        path.strip_prefix(prefix)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
    }
}

impl Router {
    /// An empty router (dispatches everything to 404).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for `GET` requests with the given path prefix.
    pub fn get<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("GET", prefix, handler)
    }

    /// Registers a handler for `POST` requests with the given path prefix.
    pub fn post<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("POST", prefix, handler)
    }

    /// Registers a handler for an arbitrary method.
    pub fn route<F>(&mut self, method: &str, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.routes.push((
            method.to_ascii_uppercase(),
            prefix.to_owned(),
            Arc::new(handler),
        ));
        self
    }

    /// Registers a coalescable `GET` route: the reactor gathers concurrent
    /// requests per `policy` and hands them to `handler` as one batch.
    pub fn get_batched<F>(&mut self, prefix: &str, policy: BatchPolicy, handler: F) -> &mut Self
    where
        F: Fn(&[Request]) -> Vec<Response> + Send + Sync + 'static,
    {
        self.route_batched("GET", prefix, policy, handler)
    }

    /// Registers a coalescable `POST` route.
    pub fn post_batched<F>(&mut self, prefix: &str, policy: BatchPolicy, handler: F) -> &mut Self
    where
        F: Fn(&[Request]) -> Vec<Response> + Send + Sync + 'static,
    {
        self.route_batched("POST", prefix, policy, handler)
    }

    /// Registers a coalescable route for an arbitrary method.
    pub fn route_batched<F>(
        &mut self,
        method: &str,
        prefix: &str,
        policy: BatchPolicy,
        handler: F,
    ) -> &mut Self
    where
        F: Fn(&[Request]) -> Vec<Response> + Send + Sync + 'static,
    {
        self.batch_routes.push(Arc::new(BatchRoute {
            method: method.to_ascii_uppercase(),
            prefix: prefix.to_owned(),
            policy,
            handler: Arc::new(handler),
        }));
        self
    }

    /// Number of registered batch routes.
    #[must_use]
    pub fn batch_route_count(&self) -> usize {
        self.batch_routes.len()
    }

    /// The batch route at `index` (as returned by
    /// [`Resolution::Batched`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn batch_route(&self, index: usize) -> &Arc<BatchRoute> {
        &self.batch_routes[index]
    }

    /// Resolves a request against scalar and batch routes combined,
    /// longest prefix first.
    #[must_use]
    pub fn resolve(&self, request: &Request) -> Resolution {
        let mut best_scalar: Option<&(String, String, Handler)> = None;
        let mut best_batch: Option<(usize, &BatchRoute)> = None;
        let mut path_matched = false;
        for route in &self.routes {
            let (method, prefix, _) = route;
            if path_matches(prefix, &request.path) {
                path_matched = true;
                if *method == request.method
                    && best_scalar.is_none_or(|(_, b, _)| prefix.len() > b.len())
                {
                    best_scalar = Some(route);
                }
            }
        }
        for (index, route) in self.batch_routes.iter().enumerate() {
            if path_matches(&route.prefix, &request.path) {
                path_matched = true;
                if route.method == request.method
                    && best_batch.is_none_or(|(_, b)| route.prefix.len() > b.prefix.len())
                {
                    best_batch = Some((index, route));
                }
            }
        }
        match (best_scalar, best_batch) {
            // Between a scalar and a batch match, the longer prefix wins;
            // ties go to the batch route (more specific intent).
            (Some((_, prefix, handler)), Some((index, batch))) => {
                if prefix.len() > batch.prefix.len() {
                    Resolution::Scalar(Arc::clone(handler))
                } else {
                    Resolution::Batched(index)
                }
            }
            (Some((_, _, handler)), None) => Resolution::Scalar(Arc::clone(handler)),
            (None, Some((index, _))) => Resolution::Batched(index),
            (None, None) if path_matched => Resolution::MethodNotAllowed,
            (None, None) => Resolution::NotFound,
        }
    }

    /// Dispatches a request to the longest matching prefix; `404` when
    /// nothing matches, `405` when the path matches but the method does
    /// not. Batch routes run with a batch of one.
    #[must_use]
    pub fn dispatch(&self, request: &Request) -> Response {
        match self.resolve(request) {
            Resolution::Scalar(handler) => handler(request),
            Resolution::Batched(index) => {
                let mut responses = self.batch_routes[index].run(std::slice::from_ref(request));
                responses.pop().expect("one response per request")
            }
            Resolution::MethodNotAllowed => Response::error(405, "method not allowed"),
            Resolution::NotFound => Response::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, target: &str) -> Request {
        Request::parse(format!("{method} {target} HTTP/1.1\r\n\r\n").as_bytes()).unwrap()
    }

    #[test]
    fn dispatches_longest_prefix() {
        let mut router = Router::new();
        router.get("/", |_| Response::ok("text/plain", b"root".to_vec()));
        router.get("/api/", |_| Response::ok("text/plain", b"api".to_vec()));
        router.get("/api/deep/", |_| {
            Response::ok("text/plain", b"deep".to_vec())
        });

        assert_eq!(router.dispatch(&req("GET", "/x")).body, b"root");
        assert_eq!(router.dispatch(&req("GET", "/api/online")).body, b"api");
        assert_eq!(router.dispatch(&req("GET", "/api/deep/1")).body, b"deep");
    }

    #[test]
    fn unknown_path_is_404() {
        let mut router = Router::new();
        router.get("/only/", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
    }

    #[test]
    fn wrong_method_is_405() {
        let mut router = Router::new();
        router.get("/thing", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("POST", "/thing")).status, 405);
    }

    #[test]
    fn get_and_post_coexist() {
        let mut router = Router::new();
        router.get("/dual", |_| Response::ok("text/plain", b"get".to_vec()));
        router.post("/dual", |_| Response::ok("text/plain", b"post".to_vec()));
        assert_eq!(router.dispatch(&req("GET", "/dual")).body, b"get");
        assert_eq!(router.dispatch(&req("POST", "/dual")).body, b"post");
    }

    #[test]
    fn trailing_slash_routes_are_equivalent() {
        // Regression: `/online/` registered, `/online` requested (and the
        // mirror case). The seed router was trailing-slash sensitive.
        let mut router = Router::new();
        router.get("/online/", |_| Response::ok("text/plain", b"on".to_vec()));
        router.get("/rate", |_| Response::ok("text/plain", b"rt".to_vec()));

        assert_eq!(router.dispatch(&req("GET", "/online/")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/online")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/online/?uid=1")).body, b"on");
        assert_eq!(router.dispatch(&req("GET", "/rate")).body, b"rt");
        assert_eq!(router.dispatch(&req("GET", "/rate/")).body, b"rt");
        // But unrelated longer segments must not match the bare form.
        assert_eq!(router.dispatch(&req("GET", "/onlinex")).status, 404);
        assert_eq!(router.dispatch(&req("GET", "/ratex")).status, 404);
    }

    #[test]
    fn batch_route_dispatches_scalar_as_batch_of_one() {
        let mut router = Router::new();
        router.get_batched("/batch/", BatchPolicy::default(), |requests| {
            requests
                .iter()
                .map(|r| {
                    let uid = r.query_param("uid").unwrap_or("?");
                    Response::ok("text/plain", format!("batched:{uid}").into_bytes())
                })
                .collect()
        });
        assert_eq!(
            router.dispatch(&req("GET", "/batch/?uid=7")).body,
            b"batched:7"
        );
        assert_eq!(router.dispatch(&req("POST", "/batch/")).status, 405);
        assert_eq!(router.batch_route_count(), 1);
    }

    #[test]
    fn batch_route_resolution_and_run() {
        let mut router = Router::new();
        router.get("/a/", |_| Response::ok("text/plain", b"scalar".to_vec()));
        router.get_batched("/a/deeper/", BatchPolicy::default(), |requests| {
            vec![Response::ok("text/plain", b"batch".to_vec()); requests.len()]
        });
        // Longest prefix wins across kinds.
        match router.resolve(&req("GET", "/a/deeper/x")) {
            Resolution::Batched(index) => {
                let out = router
                    .batch_route(index)
                    .run(&[req("GET", "/a/deeper/x"), req("GET", "/a/deeper/y")]);
                assert_eq!(out.len(), 2);
                assert_eq!(out[0].body, b"batch");
            }
            _ => panic!("expected batch resolution"),
        }
        match router.resolve(&req("GET", "/a/only")) {
            Resolution::Scalar(handler) => {
                assert_eq!(handler(&req("GET", "/a/only")).body, b"scalar");
            }
            _ => panic!("expected scalar resolution"),
        }
    }

    #[test]
    #[should_panic(expected = "batch handler")]
    fn batch_handler_arity_is_enforced() {
        let mut router = Router::new();
        router.get_batched("/bad/", BatchPolicy::default(), |_| Vec::new());
        let _ = router.dispatch(&req("GET", "/bad/"));
    }
}
