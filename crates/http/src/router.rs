//! Path-prefix routing.

use crate::request::Request;
use crate::response::Response;
use std::sync::Arc;

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Longest-prefix router.
///
/// ```
/// use hyrec_http::{Request, Response, Router};
///
/// let mut router = Router::new();
/// router.get("/ping", |_req| Response::ok("text/plain", b"pong".to_vec()));
/// let req = Request::parse("GET /ping HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
/// assert_eq!(router.dispatch(&req).body, b"pong");
/// ```
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<&str> = self.routes.iter().map(|(_, p, _)| p.as_str()).collect();
        f.debug_struct("Router").field("routes", &paths).finish()
    }
}

impl Router {
    /// An empty router (dispatches everything to 404).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for `GET` requests with the given path prefix.
    pub fn get<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("GET", prefix, handler)
    }

    /// Registers a handler for `POST` requests with the given path prefix.
    pub fn post<F>(&mut self, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.route("POST", prefix, handler)
    }

    /// Registers a handler for an arbitrary method.
    pub fn route<F>(&mut self, method: &str, prefix: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.routes.push((
            method.to_ascii_uppercase(),
            prefix.to_owned(),
            Arc::new(handler),
        ));
        self
    }

    /// Dispatches a request to the longest matching prefix; `404` when
    /// nothing matches, `405` when the path matches but the method does
    /// not.
    #[must_use]
    pub fn dispatch(&self, request: &Request) -> Response {
        let mut best: Option<&(String, String, Handler)> = None;
        let mut path_matched = false;
        for route in &self.routes {
            let (method, prefix, _) = route;
            if request.path.starts_with(prefix.as_str()) {
                path_matched = true;
                if *method == request.method && best.is_none_or(|(_, b, _)| prefix.len() > b.len())
                {
                    best = Some(route);
                }
            }
        }
        match best {
            Some((_, _, handler)) => handler(request),
            None if path_matched => Response::error(405, "method not allowed"),
            None => Response::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, target: &str) -> Request {
        Request::parse(format!("{method} {target} HTTP/1.1\r\n\r\n").as_bytes()).unwrap()
    }

    #[test]
    fn dispatches_longest_prefix() {
        let mut router = Router::new();
        router.get("/", |_| Response::ok("text/plain", b"root".to_vec()));
        router.get("/api/", |_| Response::ok("text/plain", b"api".to_vec()));
        router.get("/api/deep/", |_| {
            Response::ok("text/plain", b"deep".to_vec())
        });

        assert_eq!(router.dispatch(&req("GET", "/x")).body, b"root");
        assert_eq!(router.dispatch(&req("GET", "/api/online")).body, b"api");
        assert_eq!(router.dispatch(&req("GET", "/api/deep/1")).body, b"deep");
    }

    #[test]
    fn unknown_path_is_404() {
        let mut router = Router::new();
        router.get("/only/", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("GET", "/nope")).status, 404);
    }

    #[test]
    fn wrong_method_is_405() {
        let mut router = Router::new();
        router.get("/thing", |_| Response::ok("text/plain", Vec::new()));
        assert_eq!(router.dispatch(&req("POST", "/thing")).status, 405);
    }

    #[test]
    fn get_and_post_coexist() {
        let mut router = Router::new();
        router.get("/dual", |_| Response::ok("text/plain", b"get".to_vec()));
        router.post("/dual", |_| Response::ok("text/plain", b"post".to_vec()));
        assert_eq!(router.dispatch(&req("GET", "/dual")).body, b"get");
        assert_eq!(router.dispatch(&req("POST", "/dual")).body, b"post");
    }
}
