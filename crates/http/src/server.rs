//! The thread-per-connection front-end: TCP listener + worker pool +
//! router, now connection-oriented — each worker loops on its socket
//! serving keep-alive requests until the client closes, the idle timeout
//! expires, or the per-connection request budget runs out.

use crate::request::Request;
use crate::response::{Disposition, Response};
use crate::router::Router;
use crate::threadpool::ThreadPool;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default idle timeout between requests on a kept-alive connection.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll granularity of the between-requests wait (lets idle workers notice
/// shutdown without holding the full idle timeout).
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Read timeout once a request has started arriving.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A minimal HTTP/1.1 server with keep-alive connections.
///
/// The worker-pool size caps concurrent *connections* (it capped requests
/// when every connection carried exactly one) — still the knob behind the
/// Figure 9 concurrency experiment, and the reason the reactor front-end
/// exists: persistent browsers hold their worker for the whole session.
pub struct HttpServer {
    listener: TcpListener,
    workers: usize,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    idle_timeout: Duration,
    max_requests_per_conn: u64,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.local_addr)
            .field("workers", &self.workers)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_requests_per_conn", &self.max_requests_per_conn)
            .finish()
    }
}

/// Handle for stopping a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Address the server is bound to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of requests served so far (across all connections).
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Signals shutdown and waits for the accept loop to finish.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `accept` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl HttpServer {
    /// Binds to `addr` (`127.0.0.1:0` for an ephemeral port) with a
    /// connection pool of `workers` threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, workers: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            workers: workers.max(1),
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_requests_per_conn: u64::MAX,
        })
    }

    /// Sets how long a kept-alive connection may sit idle between requests
    /// before the worker hangs up (default 10 s).
    #[must_use]
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout.max(Duration::from_millis(1));
        self
    }

    /// Caps requests served per connection (default unlimited); the last
    /// budgeted response is stamped `Connection: close`.
    #[must_use]
    pub fn with_max_requests_per_conn(mut self, max_requests: u64) -> Self {
        self.max_requests_per_conn = max_requests.max(1);
        self
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts serving `router` on a background accept thread; returns a
    /// handle for shutdown.
    #[must_use]
    pub fn serve(self, router: Router) -> ServerHandle {
        let shutdown = Arc::clone(&self.shutdown);
        let requests = Arc::clone(&self.requests);
        let addr = self.local_addr;
        let accept_thread = thread::spawn(move || {
            let pool = ThreadPool::new(self.workers);
            let router = Arc::new(router);
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let router = Arc::clone(&router);
                let shutdown = Arc::clone(&self.shutdown);
                let requests = Arc::clone(&self.requests);
                let idle_timeout = self.idle_timeout;
                let max_requests = self.max_requests_per_conn;
                pool.execute(move || {
                    handle_connection(
                        stream,
                        &router,
                        &shutdown,
                        &requests,
                        idle_timeout,
                        max_requests,
                    );
                });
            }
            pool.join();
        });
        ServerHandle {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            requests,
        }
    }
}

/// Serves one connection to completion: requests loop over a persistent
/// `BufReader` (so pipelined bytes survive between parses) until the
/// client closes, the idle timeout expires, the request budget runs out,
/// the client asks to close, or the server shuts down.
fn handle_connection(
    stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    idle_timeout: Duration,
    max_requests: u64,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut served = 0u64;
    loop {
        if !wait_for_request(&mut reader, shutdown, idle_timeout) {
            return;
        }
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(REQUEST_READ_TIMEOUT));
        match Request::parse_from(&mut reader) {
            Ok(request) => {
                served += 1;
                requests.fetch_add(1, Ordering::Relaxed);
                let keep = request.wants_keep_alive()
                    && served < max_requests
                    && !shutdown.load(Ordering::SeqCst);
                let mut response = router.dispatch(&request);
                response.set_disposition(if keep {
                    Disposition::KeepAlive
                } else {
                    Disposition::Close
                });
                if response.write_to(reader.get_mut()).is_err() || !keep {
                    return;
                }
            }
            Err(reason) => {
                // Framing is unrecoverable mid-stream: answer and hang up.
                let response = Response::bad_request(&reason).with_disposition(Disposition::Close);
                let _ = response.write_to(reader.get_mut());
                return;
            }
        }
    }
}

/// Blocks until request bytes are buffered. Returns `false` on EOF, socket
/// error, shutdown, or after `idle_timeout` of quiet — all of which mean
/// "hang up without serving".
fn wait_for_request(
    reader: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) -> bool {
    let idle_started = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        match reader.fill_buf() {
            Ok(buffered) => return !buffered.is_empty(),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                if idle_started.elapsed() >= idle_timeout {
                    return false;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn ping_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
        router.get("/echo", |req: &Request| {
            let msg = req.query_param("msg").unwrap_or("").to_owned();
            Response::ok("text/plain", msg.into_bytes())
        });
        router
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let client = HttpClient::new(addr);
        let response = client.get("/ping").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"pong");

        let response = client.get("/echo?msg=hello").unwrap();
        assert_eq!(response.body, b"hello");

        let response = client.get("/missing").unwrap();
        assert_eq!(response.status, 404);

        assert!(handle.request_count() >= 3);
        handle.stop();
    }

    #[test]
    fn keep_alive_connection_carries_multiple_requests() {
        use std::io::{Read, Write};
        let server = HttpServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        // One raw socket, two sequential requests: the first response must
        // say keep-alive and the socket must stay usable.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        for round in 0..2 {
            stream
                .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
                .unwrap();
            loop {
                if let Some((response, consumed)) = Response::try_parse(&buf).unwrap() {
                    buf.drain(..consumed);
                    assert_eq!(response.status, 200, "round {round}");
                    assert_eq!(response.body, b"pong");
                    assert_eq!(response.header("connection"), Some("keep-alive"));
                    break;
                }
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server hung up mid-keep-alive");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
        assert_eq!(handle.request_count(), 2);
        handle.stop();
    }

    #[test]
    fn max_requests_budget_closes_the_connection() {
        use std::io::{Read, Write};
        let server = HttpServer::bind("127.0.0.1:0", 1)
            .unwrap()
            .with_max_requests_per_conn(2);
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut read_one = |stream: &mut TcpStream, buf: &mut Vec<u8>| loop {
            if let Some((response, consumed)) = Response::try_parse(buf).unwrap() {
                buf.drain(..consumed);
                return response;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server hung up before responding");
            buf.extend_from_slice(&chunk[..n]);
        };
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let first = read_one(&mut stream, &mut buf);
        assert_eq!(first.header("connection"), Some("keep-alive"));
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let second = read_one(&mut stream, &mut buf);
        assert_eq!(second.header("connection"), Some("close"));
        // The socket is now closed server-side.
        let n = stream.read(&mut chunk).unwrap_or(0);
        assert_eq!(n, 0, "connection outlived its request budget");
        handle.stop();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = HttpServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut joins = Vec::new();
        for _ in 0..16 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get("/ping").unwrap();
                assert_eq!(response.status, 200);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = HttpServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
        handle.stop();
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let server = HttpServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        handle.stop();
        // After stop, connections are refused or reset — either way no pong.
        let client = HttpClient::new(addr);
        assert!(client.get("/ping").is_err());
    }
}
