//! The accept loop: TCP listener + worker pool + router.

use crate::request::Request;
use crate::response::Response;
use crate::router::Router;
use crate::threadpool::ThreadPool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A minimal HTTP/1.1 server (connection-per-request, `Connection: close`).
///
/// The worker-pool size caps concurrent request handling — the knob behind
/// the Figure 9 concurrency experiment.
pub struct HttpServer {
    listener: TcpListener,
    workers: usize,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.local_addr)
            .field("workers", &self.workers)
            .finish()
    }
}

/// Handle for stopping a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Address the server is bound to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of requests accepted so far.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Signals shutdown and waits for the accept loop to finish.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `accept` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl HttpServer {
    /// Binds to `addr` (`127.0.0.1:0` for an ephemeral port) with a request
    /// pool of `workers` threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, workers: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            workers: workers.max(1),
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts serving `router` on a background accept thread; returns a
    /// handle for shutdown.
    #[must_use]
    pub fn serve(self, router: Router) -> ServerHandle {
        let shutdown = Arc::clone(&self.shutdown);
        let requests = Arc::clone(&self.requests);
        let addr = self.local_addr;
        let accept_thread = thread::spawn(move || {
            let pool = ThreadPool::new(self.workers);
            let router = Arc::new(router);
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.requests.fetch_add(1, Ordering::Relaxed);
                let router = Arc::clone(&router);
                pool.execute(move || handle_connection(stream, &router));
            }
            pool.join();
        });
        ServerHandle {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            requests,
        }
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let response = match Request::parse(&mut stream) {
        Ok(request) => router.dispatch(&request),
        Err(reason) => Response::bad_request(&reason),
    };
    let _ = response.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn ping_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::ok("text/plain", b"pong".to_vec()));
        router.get("/echo", |req: &Request| {
            let msg = req.query_param("msg").unwrap_or("").to_owned();
            Response::ok("text/plain", msg.into_bytes())
        });
        router
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let client = HttpClient::new(addr);
        let response = client.get("/ping").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"pong");

        let response = client.get("/echo?msg=hello").unwrap();
        assert_eq!(response.body, b"hello");

        let response = client.get("/missing").unwrap();
        assert_eq!(response.status, 404);

        assert!(handle.request_count() >= 3);
        handle.stop();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = HttpServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut joins = Vec::new();
        for _ in 0..16 {
            joins.push(thread::spawn(move || {
                let client = HttpClient::new(addr);
                let response = client.get("/ping").unwrap();
                assert_eq!(response.status, 200);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        handle.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = HttpServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
        handle.stop();
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let server = HttpServer::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(ping_router());
        handle.stop();
        // After stop, connections are refused or reset — either way no pong.
        let client = HttpClient::new(addr);
        assert!(client.get("/ping").is_err());
    }
}
