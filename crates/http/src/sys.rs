//! Raw `epoll`/`eventfd` bindings — the only unsafe code in the crate.
//!
//! The build environment vendors no `libc` crate, so the reactor declares
//! the four syscall wrappers it needs directly against the C library that
//! `std` already links. Everything is wrapped in a safe API around
//! [`std::os::fd::OwnedFd`]; file descriptors are closed on drop by `std`.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;
// Socket-creation constants (Linux generic ABI; x86-64 and aarch64 share
// these values — the architectures this reproduction targets).
const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0x80000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEPORT: i32 = 15;

/// One readiness event. Mirrors the kernel's `struct epoll_event`, which is
/// packed on x86-64.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

impl EpollEvent {
    /// An empty (zeroed) event, for buffer initialization.
    #[must_use]
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }

    /// The readiness bits (copied by value out of the possibly-packed
    /// struct — no unaligned reference is formed).
    #[must_use]
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The registration token (copied by value out of the possibly-packed
    /// struct — no unaligned reference is formed).
    #[must_use]
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn socket(domain: i32, kind: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
    fn bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// `struct sockaddr_in` (network byte order for port and address).
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct sockaddr_in6` (network byte order for port; the address is a
/// plain byte array already in wire order).
#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Creates a listening TCP socket with `SO_REUSEPORT` set *before* bind —
/// the accept-sharding primitive: N listeners bound to one address, each
/// owned by one reactor event loop, with the kernel hashing incoming
/// connections across them (no shared accept queue, no hand-off).
///
/// `std::net::TcpListener` cannot express this (it binds inside
/// `TcpListener::bind` with no hook to set options first), so the socket is
/// created raw and wrapped after `listen`.
///
/// # Errors
///
/// Propagates the first failing syscall's errno. On kernels without
/// `SO_REUSEPORT` (pre-3.9) the `setsockopt` fails with `ENOPROTOOPT`;
/// callers should fall back to accept hand-off (see
/// [`reuseport_supported`]).
pub fn bind_reuseport(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: socket takes no pointers; a non-negative return is a fresh fd
    // we immediately take ownership of.
    let raw = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // SAFETY: `raw` is a valid fd owned by nobody else.
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };
    let one: i32 = 1;
    // SAFETY: passes a live 4-byte value with its correct length.
    cvt(unsafe {
        setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEPORT,
            std::ptr::addr_of!(one).cast(),
            4,
        )
    })?;
    match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a live, correctly-sized sockaddr_in.
            cvt(unsafe {
                bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: `sa` is a live, correctly-sized sockaddr_in6.
            cvt(unsafe {
                bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    // SAFETY: listen takes no pointers; `fd` is a live, bound socket.
    cvt(unsafe { listen(fd.as_raw_fd(), backlog) })?;
    Ok(TcpListener::from(fd))
}

/// Whether this kernel accepts `SO_REUSEPORT` (Linux ≥ 3.9). Probed once
/// per call with a throwaway socket; callers decide between kernel accept
/// sharding and the hand-off fallback.
#[must_use]
pub fn reuseport_supported() -> bool {
    // SAFETY: socket takes no pointers.
    let Ok(raw) = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) }) else {
        return false;
    };
    // SAFETY: `raw` is a valid fd owned by nobody else (closed on drop).
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };
    let one: i32 = 1;
    // SAFETY: passes a live 4-byte value with its correct length.
    cvt(unsafe {
        setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEPORT,
            std::ptr::addr_of!(one).cast(),
            4,
        )
    })
    .is_ok()
}

/// Re-issues `listen(2)` on an already-listening socket to widen its accept
/// backlog (`std::net::TcpListener` hard-codes 128, which overflows — and,
/// with syncookies, silently resets clients — under thousand-connection
/// bursts; Linux allows updating the backlog in place).
///
/// # Errors
///
/// Propagates the `listen` errno.
pub fn widen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: `listen` takes no pointers; the caller passes a live socket fd.
    cvt(unsafe { listen(fd, backlog) }).map(|_| ())
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A safe handle to an epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` errno.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a non-negative return is
        // a freshly-created fd we immediately take ownership of.
        let raw = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            // SAFETY: `raw` is a valid fd owned by nobody else.
            fd: unsafe { OwnedFd::from_raw_fd(raw) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) }).map(|_| ())
    }

    /// Registers `fd` for `events`, tagging readiness with `token`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes a registered fd.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; returns the number of ready
    /// entries. A `timeout` of `None` blocks indefinitely. Retries on
    /// `EINTR`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_wait` errno.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: Option<i32>) -> io::Result<usize> {
        let timeout = timeout_ms.unwrap_or(-1);
        loop {
            // SAFETY: `events` is a valid, writable buffer of the declared
            // length for the duration of the call.
            let ret = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout,
                )
            };
            match cvt(ret) {
                Ok(n) => return Ok(n as usize),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
    }
}

/// A wakeup channel into an epoll loop, backed by an `eventfd`.
///
/// Worker threads call [`Waker::wake`] after pushing completions; the
/// reactor registers the fd for `EPOLLIN` and [`Waker::drain`]s it on
/// wakeup.
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates a nonblocking eventfd.
    ///
    /// # Errors
    ///
    /// Propagates the `eventfd` errno.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; a non-negative return is a
        // fresh fd we take ownership of.
        let raw = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self {
            // SAFETY: `raw` is a valid fd owned by nobody else.
            fd: unsafe { OwnedFd::from_raw_fd(raw) },
        })
    }

    /// The raw fd, for epoll registration.
    #[must_use]
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the epoll loop. Best-effort: an already-signalled eventfd
    /// needs no second nudge.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value; an
        // EAGAIN (counter saturated) still leaves the fd readable.
        let _ = unsafe { write(self.fd.as_raw_fd(), one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Clears the pending wakeup counter.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_reports_eventfd_readiness() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);

        // After a wake, the fd is readable and carries our token.
        waker.wake();
        let n = epoll.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Draining clears readiness.
        waker.drain();
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);

        // Interest modification and removal round-trip.
        epoll
            .modify(waker.raw_fd(), EPOLLIN | EPOLLOUT, 43)
            .unwrap();
        epoll.delete(waker.raw_fd()).unwrap();
        waker.wake();
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn reuseport_listeners_share_one_port_and_split_accepts() {
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        if !reuseport_supported() {
            return; // pre-3.9 kernel: the reactor falls back to hand-off
        }
        let first = bind_reuseport("127.0.0.1:0".parse().unwrap(), 16).unwrap();
        let addr = first.local_addr().unwrap();
        // A second listener on the *same* concrete port succeeds only with
        // SO_REUSEPORT set on both.
        let second = bind_reuseport(addr, 16).unwrap();
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();

        let clients: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let mut accepted = 0usize;
        let deadline = Instant::now() + Duration::from_secs(2);
        while accepted < clients.len() && Instant::now() < deadline {
            for listener in [&first, &second] {
                while listener.accept().is_ok() {
                    accepted += 1;
                }
            }
        }
        // Every connection landed in exactly one of the two accept queues.
        assert_eq!(accepted, clients.len());
    }

    #[test]
    fn epoll_tracks_tcp_sockets() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = epoll.wait(&mut events, Some(2000)).unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].token(), 1);

        let (accepted, _) = listener.accept().unwrap();
        epoll.add(accepted.as_raw_fd(), EPOLLIN, 2).unwrap();
        client.write_all(b"hi").unwrap();
        let n = epoll.wait(&mut events, Some(2000)).unwrap();
        assert!((0..n).any(|i| events[i].token() == 2));
    }
}
