//! HTTP/1.1 request parsing.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// Maximum accepted header block size (DoS guard).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (DoS guard).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased.
    pub method: String,
    /// Path portion of the target, percent-decoding *not* applied (the
    /// HyRec API uses plain ASCII ids only).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header map, names lowercased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes (already length-delimited by `Content-Length`).
    pub body: Vec<u8>,
    /// Minor HTTP/1.x version from the request line (`0` for HTTP/1.0,
    /// `1` for HTTP/1.1) — one input to [`Request::wants_keep_alive`].
    pub minor_version: u8,
}

impl Request {
    /// First query value for `key`, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All query values for keys of the form `prefix0`, `prefix1`, … in
    /// index order — the shape of the `/neighbors/?id0=…&id1=…` call in
    /// Table 1 of the paper.
    #[must_use]
    pub fn indexed_params(&self, prefix: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut index = 0usize;
        loop {
            let key = format!("{prefix}{index}");
            match self.query_param(&key) {
                Some(v) => out.push(v),
                None => break,
            }
            index += 1;
        }
        out
    }

    /// Header value (name case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Whether the client asked to keep the connection open after this
    /// request: an explicit `Connection` header wins (token list,
    /// case-insensitive), otherwise HTTP/1.1 defaults to keep-alive and
    /// HTTP/1.0 to close.
    ///
    /// The serving front-ends combine this with their own limits
    /// (max-requests-per-connection, shutdown) to choose each response's
    /// [`crate::response::Disposition`].
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        if let Some(value) = self.header("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return false;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    return true;
                }
            }
        }
        self.minor_version >= 1
    }

    /// Parses one request from a stream.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on malformed or oversized input (the
    /// server maps it to `400 Bad Request`).
    pub fn parse<R: Read>(stream: R) -> Result<Self, String> {
        Self::parse_from(&mut BufReader::new(stream))
    }

    /// Parses one request from an existing buffered reader — the blocking
    /// server's keep-alive loop, where one `BufReader` must persist across
    /// requests so pipelined bytes it has already buffered are not lost.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on malformed or oversized input.
    pub fn parse_from<R: BufRead>(reader: &mut R) -> Result<Self, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read error: {e}"))?;
        let line = line.trim_end();
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| "empty request line".to_owned())?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| "missing request target".to_owned())?;
        let version = parts
            .next()
            .ok_or_else(|| "missing http version".to_owned())?;
        let minor_version = version
            .strip_prefix("HTTP/1.")
            .and_then(|minor| minor.parse::<u8>().ok())
            .ok_or_else(|| format!("unsupported version {version}"))?;

        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_owned(), parse_query(q)),
            None => (target.to_owned(), Vec::new()),
        };

        let mut headers = HashMap::new();
        let mut header_bytes = 0usize;
        loop {
            let mut header_line = String::new();
            reader
                .read_line(&mut header_line)
                .map_err(|e| format!("header read error: {e}"))?;
            header_bytes += header_line.len();
            if header_bytes > MAX_HEADER_BYTES {
                return Err("header block too large".to_owned());
            }
            let header_line = header_line.trim_end();
            if header_line.is_empty() {
                break;
            }
            if let Some((name, value)) = header_line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                // Duplicate Content-Length headers that disagree are the
                // classic request-smuggling vector: two parsers picking
                // different occurrences frame the stream differently.
                // Reject outright; identical repeats collapse to one
                // (RFC 7230 §3.3.2 allows either).
                if name == "content-length" {
                    if let Some(previous) = headers.get(&name) {
                        if previous != &value {
                            return Err("conflicting content-length headers".to_owned());
                        }
                    }
                }
                headers.insert(name, value);
            }
        }

        let body = match headers.get("content-length") {
            Some(len) => {
                let len: usize = len
                    .parse()
                    .map_err(|_| "invalid content-length".to_owned())?;
                if len > MAX_BODY_BYTES {
                    return Err("body too large".to_owned());
                }
                let mut body = vec![0u8; len];
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("body read error: {e}"))?;
                body
            }
            None => Vec::new(),
        };

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            minor_version,
        })
    }

    /// Incremental parse over an accumulation buffer — the reactor's
    /// nonblocking read path.
    ///
    /// Returns `Ok(None)` when `buf` does not yet hold a complete request
    /// (read more and call again), `Ok(Some((request, consumed)))` when a
    /// full request occupies the first `consumed` bytes, and `Err` when the
    /// buffer can never become a valid request (oversized or malformed —
    /// respond 400 and close).
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on malformed or oversized input.
    pub fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, String> {
        // Locate the end of the header block.
        let Some(head_end) = find_subsequence(buf, b"\r\n\r\n") else {
            if buf.len() > MAX_HEADER_BYTES {
                return Err("header block too large".to_owned());
            }
            return Ok(None);
        };
        if head_end > MAX_HEADER_BYTES {
            return Err("header block too large".to_owned());
        }
        // Light scan for Content-Length to learn the total frame size; an
        // invalid value falls through to the full parser, which rejects it,
        // but *conflicting duplicates* are rejected right here — using
        // either occurrence would frame the pipelined stream differently
        // from a peer that picked the other (request smuggling).
        let body_len = content_length(&buf[..head_end])
            .map_err(|()| "conflicting content-length headers".to_owned())?
            .unwrap_or(0);
        if body_len > MAX_BODY_BYTES {
            return Err("body too large".to_owned());
        }
        let total = head_end + 4 + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        Self::parse(&buf[..total]).map(|request| Some((request, total)))
    }
}

/// First offset of `needle` in `haystack`, if any.
fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Extracts `Content-Length` from a raw header block (case-insensitive).
/// Identical repeats collapse to one; occurrences whose *raw values*
/// disagree return `Err(())` — the caller must refuse to frame the request
/// (see `try_parse`). Values are compared textually, before parsing, so
/// `07` vs `7` is already a conflict: two peers normalizing differently is
/// exactly the smuggling hazard.
fn content_length(head: &[u8]) -> Result<Option<usize>, ()> {
    let mut seen: Option<&str> = None;
    for line in head.split(|&b| b == b'\n') {
        let Ok(line) = std::str::from_utf8(line) else {
            continue;
        };
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let value = value.trim();
                if seen.is_some_and(|previous| previous != value) {
                    return Err(());
                }
                seen = Some(value);
            }
        }
    }
    Ok(seen.and_then(|value| value.parse().ok()))
}

/// Decodes `k=v&k2=v2` with percent-encoding and `+`-as-space.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Request, String> {
        Request::parse(s.as_bytes())
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse_str("GET /online/?uid=42&k=10 HTTP/1.1\r\nHost: hyrec\r\nAccept: */*\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/online/");
        assert_eq!(req.query_param("uid"), Some("42"));
        assert_eq!(req.query_param("k"), Some("10"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("hyrec"));
        assert_eq!(req.header("HOST"), Some("hyrec"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_indexed_params_in_order() {
        let req =
            parse_str("GET /neighbors/?uid=1&id0=7&id1=9&id2=3&sim0=0.5 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.indexed_params("id"), vec!["7", "9", "3"]);
        assert_eq!(req.indexed_params("sim"), vec!["0.5"]);
        assert!(req.indexed_params("x").is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_str("POST /neighbors/ HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn percent_decoding() {
        let req = parse_str("GET /x?name=a%20b+c&odd=%zz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("name"), Some("a b c"));
        // Invalid escapes pass through.
        assert_eq!(req.query_param("odd"), Some("%zz"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_str("").is_err());
        assert!(parse_str("GET\r\n\r\n").is_err());
        assert!(parse_str("GET /x\r\n\r\n").is_err());
        assert!(parse_str("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_str("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn try_parse_incremental_framing() {
        let full = b"POST /neighbors/ HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloEXTRA";
        // Every strict prefix of the frame is Partial.
        for cut in 0..full.len() - 5 {
            assert_eq!(
                Request::try_parse(&full[..cut]).unwrap(),
                None,
                "cut at {cut}"
            );
        }
        // The complete frame parses and reports the consumed length,
        // excluding trailing pipelined bytes.
        let (request, consumed) = Request::try_parse(full).unwrap().unwrap();
        assert_eq!(consumed, full.len() - 5);
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn try_parse_no_body_and_case_insensitive_length() {
        let raw = b"GET /online/?uid=3 HTTP/1.1\r\nhost: x\r\n\r\n";
        let (request, consumed) = Request::try_parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(request.query_param("uid"), Some("3"));

        let raw = b"POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok";
        let (request, _) = Request::try_parse(raw).unwrap().unwrap();
        assert_eq!(request.body, b"ok");
    }

    #[test]
    fn try_parse_rejects_oversized_and_malformed() {
        // Unterminated header block beyond the cap is an error, not Partial.
        let huge = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert!(Request::try_parse(&huge).is_err());
        // Declared body beyond the cap is rejected before buffering it.
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(Request::try_parse(raw.as_bytes()).is_err());
        // A malformed request line errors once the header block is complete.
        assert!(Request::try_parse(b"NONSENSE\r\n\r\n").is_err());
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        // Mismatched duplicates are the smuggling shape: refuse to frame.
        let raw =
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nGET /smuggled";
        assert!(parse_str(raw).is_err());
        assert!(Request::try_parse(raw.as_bytes()).is_err());
        // Textual disagreement counts even when the numbers agree: another
        // parser normalizing `07` differently would frame differently.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 07\r\n\r\n7 bytes";
        assert!(parse_str(raw).is_err());
        assert!(Request::try_parse(raw.as_bytes()).is_err());
        // The error is final, not a plea for more bytes: a truncated buffer
        // that already shows the conflict must not parse as Partial.
        let head_only = "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\n";
        assert!(Request::try_parse(head_only.as_bytes()).is_err());
    }

    #[test]
    fn identical_duplicate_content_lengths_collapse() {
        // RFC 7230 §3.3.2 allows collapsing identical repeats; both the
        // incremental and the stream parser must agree on the framing.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhelloEXTRA";
        let request = parse_str(&raw[..raw.len() - 5]).unwrap();
        assert_eq!(request.body, b"hello");
        let (request, consumed) = Request::try_parse(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, raw.len() - 5);
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn keep_alive_negotiation() {
        // HTTP/1.1 defaults to keep-alive; an explicit close wins.
        assert!(parse_str("GET /x HTTP/1.1\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        assert!(!parse_str("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        assert!(!parse_str("GET /x HTTP/1.1\r\nconnection: CLOSE\r\n\r\n")
            .unwrap()
            .wants_keep_alive());
        // HTTP/1.0 defaults to close; an explicit keep-alive wins.
        let old = parse_str("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(old.minor_version, 0);
        assert!(!old.wants_keep_alive());
        assert!(
            parse_str("GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .wants_keep_alive()
        );
        // Token lists are scanned, not string-matched.
        assert!(
            !parse_str("GET /x HTTP/1.1\r\nConnection: upgrade, close\r\n\r\n")
                .unwrap()
                .wants_keep_alive()
        );
    }

    #[test]
    fn parse_from_preserves_pipelined_bytes() {
        // One persistent BufReader across requests: the second request must
        // come out of the same reader intact.
        let raw: &[u8] = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(raw);
        let first = Request::parse_from(&mut reader).unwrap();
        assert_eq!(first.path, "/a");
        let second = Request::parse_from(&mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(parse_str("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let req = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse_str(&req).is_err());
    }
}
