//! The HyRec web API (Table 1 of the paper) mounted on the HTTP stack.
//!
//! | Call | Meaning |
//! |------|---------|
//! | `GET /online/?uid=<uid>` | Client request: returns the gzipped JSON personalization job |
//! | `GET /neighbors/?uid=<uid>&id0=<fid0>&sim0=…&id1=…` | Update KNN selection |
//! | `POST /neighbors/` (gzipped [`KnnUpdate`] body) | Same update, message form |
//! | `` GET /rate/?uid=&item=&like=0|1 `` | Record a rating (profile update) |
//!
//! The `/online` + `/neighbors` pair is verbatim from the paper; `/rate` is
//! the profile-update entry point the paper folds into "the server first
//! updates u's profile".
//!
//! ## Coalescing
//!
//! The hot endpoints register [`crate::Handler`]s with batched
//! [`BatchPolicy`]s: under the reactor front-end, concurrent — and, with
//! keep-alive, *pipelined* — `/online/` requests inside a gather window
//! funnel into a single [`HyRecServer::build_jobs`] call whose outputs are
//! serialized by the batched, fragment-caching [`JobEncoder::encode_jobs`];
//! `/rate/` bursts stage their votes through the shard-grouped
//! [`HyRecServer::record_many`]; `POST /neighbors/` bursts apply through
//! [`HyRecServer::apply_updates`]. On the thread-per-connection server the
//! same routes run with batches of one, and every batched response is
//! byte-identical to what the sequential scalar path produces.

use crate::reactor::ReactorStats;
use crate::request::Request;
use crate::response::Response;
use crate::router::{BatchPolicy, Router};
use hyrec_core::{ItemId, Neighbor, UserId, Vote};
use hyrec_sched::RejectReason;
use hyrec_server::{HyRecServer, JobEncoder, ScheduledServer};
use hyrec_wire::KnnUpdate;
use std::sync::Arc;

/// Builds the HyRec API router around a shared server, with a fresh
/// fragment-cache encoder and default coalescing policy.
#[must_use]
pub fn hyrec_router(server: Arc<HyRecServer>) -> Router {
    hyrec_router_with(server, Arc::new(JobEncoder::new()), BatchPolicy::default())
}

/// Builds the HyRec API router around a shared server and a shared
/// [`JobEncoder`] (so load harnesses and multiple front-ends reuse one
/// fragment cache), with an explicit coalescing policy for the batch
/// routes.
#[must_use]
pub fn hyrec_router_with(
    server: Arc<HyRecServer>,
    encoder: Arc<JobEncoder>,
    policy: BatchPolicy,
) -> Router {
    let mut router = Router::new();

    // GET /online/?uid=N — the "Client request" row of Table 1. Gathered
    // requests become one build_jobs + encode_jobs round; arrival order is
    // batch order, so the RNG stream matches the sequential path.
    let online_server = Arc::clone(&server);
    let online_encoder = Arc::clone(&encoder);
    router.route(
        "GET",
        "/online/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let parsed: Vec<Result<UserId, String>> = requests.iter().map(parse_uid).collect();
            let uids: Vec<UserId> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().copied())
                .collect();
            let jobs = online_server.build_jobs(&uids);
            let mut bodies = online_encoder.encode_jobs(&jobs).into_iter();
            out.extend(parsed.into_iter().map(|p| match p {
                Ok(_) => Response::ok_pregzipped_json(
                    bodies.next().expect("one encoded body per valid uid"),
                ),
                Err(reason) => Response::bad_request(&reason),
            }));
        },
    );

    // GET /neighbors/?uid=N&id0=..&sim0=.. — "Update KNN selection".
    let neighbors_server = Arc::clone(&server);
    router.get("/neighbors/", move |req| {
        match parse_knn_query(req).and_then(|update| validate_update(&update).map(|()| update)) {
            Ok(update) => {
                neighbors_server.apply_update(&update);
                Response::ok("application/json", b"{\"ok\":true}".to_vec())
            }
            Err(reason) => Response::bad_request(&reason),
        }
    });

    // POST /neighbors/ with a gzipped KnnUpdate body (our wire form).
    // Gathered updates apply through one shard-grouped write-back.
    let post_server = Arc::clone(&server);
    router.route(
        "POST",
        "/neighbors/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let mut updates = Vec::with_capacity(requests.len());
            out.extend(requests.iter().map(|req| {
                match KnnUpdate::decode(&req.body)
                    .map_err(|err| err.to_string())
                    .and_then(|update| validate_update(&update).map(|()| update))
                {
                    Ok(update) => {
                        updates.push(update);
                        Response::ok("application/json", b"{\"ok\":true}".to_vec())
                    }
                    Err(reason) => Response::bad_request(&reason),
                }
            }));
            post_server.apply_updates(&updates);
        },
    );

    // GET /rate/?uid=N&item=I&like=0|1 — profile update. Gathered votes
    // ingest through record_many: one write lock per touched shard.
    let rate_server = Arc::clone(&server);
    router.route(
        "GET",
        "/rate/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let parsed: Vec<Result<(UserId, ItemId, Vote), String>> =
                requests.iter().map(parse_rate).collect();
            let votes: Vec<(UserId, ItemId, Vote)> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().copied())
                .collect();
            let mut changed = rate_server.record_many(&votes).into_iter();
            out.extend(parsed.into_iter().map(|p| match p {
                Ok(_) => {
                    let flag = changed.next().expect("one change flag per valid vote");
                    Response::ok(
                        "application/json",
                        format!("{{\"ok\":true,\"changed\":{flag}}}").into_bytes(),
                    )
                }
                Err(reason) => Response::bad_request(&reason),
            }));
        },
    );

    router
}

/// Builds the *scheduled* HyRec API router: the same Table 1 surface, but
/// with every job issue and update apply routed through the job-lifecycle
/// scheduler of [`ScheduledServer`].
///
/// Differences from [`hyrec_router_with`]:
///
/// * `GET /online/` serves the **scheduler's pick** — the churn backlog or
///   the staleness queue may override the requested uid — and every job
///   carries `lease`/`epoch` credentials the widget must echo.
/// * Both `/neighbors/` forms present those credentials (query params
///   `lease=&epoch=` on GET, message fields on POST). Malformed payloads
///   are a 400 exactly as in the plain router; a well-formed completion
///   whose lease is dead (expired, superseded, already consumed, wrong
///   user, fabricated neighbour) is a 409 naming the reason, and is never
///   applied.
/// * `GET /stats/` exposes the scheduler's [`hyrec_sched::SchedStats`]
///   (and, when a handle is supplied, the reactor's [`ReactorStats`]).
///
/// The lease sweeper is *not* spawned here: callers own its cadence via
/// [`ScheduledServer::spawn_sweeper`] (wall clock) or explicit
/// [`ScheduledServer::sweep_and_recover`] calls (logical clock).
#[must_use]
pub fn hyrec_scheduled_router(
    scheduled: Arc<ScheduledServer>,
    encoder: Arc<JobEncoder>,
    policy: BatchPolicy,
    reactor_stats: Option<Arc<ReactorStats>>,
) -> Router {
    let mut router = Router::new();

    // GET /online/?uid=N — leased job issue, coalesced through one
    // issue_jobs + encode_jobs round per gathered batch.
    let online = Arc::clone(&scheduled);
    let online_encoder = Arc::clone(&encoder);
    router.route(
        "GET",
        "/online/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let parsed: Vec<Result<UserId, String>> = requests.iter().map(parse_uid).collect();
            let uids: Vec<UserId> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().copied())
                .collect();
            let jobs = online.issue_jobs(&uids, online.now_ms());
            let mut bodies = online_encoder.encode_jobs(&jobs).into_iter();
            out.extend(parsed.into_iter().map(|p| match p {
                Ok(_) => Response::ok_pregzipped_json(
                    bodies.next().expect("one encoded body per valid uid"),
                ),
                Err(reason) => Response::bad_request(&reason),
            }));
        },
    );

    // GET /neighbors/?uid=&lease=&epoch=&id0=&sim0=… — scalar completion
    // (the Table 1 query form). Payload validation happens inside the
    // scheduler with the *configured* similarity tolerance, so the HTTP
    // layer only rejects structurally malformed queries here.
    let neighbors = Arc::clone(&scheduled);
    router.get("/neighbors/", move |req| match parse_knn_query(req) {
        Ok(update) => {
            let outcome = neighbors
                .complete_updates(std::slice::from_ref(&update), neighbors.now_ms())
                .pop()
                .expect("one outcome per update");
            completion_response(outcome)
        }
        Err(reason) => Response::bad_request(&reason),
    });

    // POST /neighbors/ — batched completions; decode errors are a 400,
    // everything else goes through one batched lease-validation + apply
    // pass (the scheduler's own payload validation, configured tolerance).
    let post = Arc::clone(&scheduled);
    router.route(
        "POST",
        "/neighbors/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let parsed: Vec<Result<KnnUpdate, String>> = requests
                .iter()
                .map(|req| KnnUpdate::decode(&req.body).map_err(|err| err.to_string()))
                .collect();
            let updates: Vec<KnnUpdate> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().cloned())
                .collect();
            let mut outcomes = post.complete_updates(&updates, post.now_ms()).into_iter();
            out.extend(parsed.into_iter().map(|p| match p {
                Ok(_) => completion_response(outcomes.next().expect("one outcome per update")),
                Err(reason) => Response::bad_request(&reason),
            }));
        },
    );

    // GET /rate/ — strict votes, staleness bumps coalesced with the
    // profile writes.
    let rate = Arc::clone(&scheduled);
    router.route(
        "GET",
        "/rate/",
        policy,
        move |requests: &[Request], out: &mut Vec<Response>| {
            let parsed: Vec<Result<(UserId, ItemId, Vote), String>> =
                requests.iter().map(parse_rate).collect();
            let votes: Vec<(UserId, ItemId, Vote)> = parsed
                .iter()
                .filter_map(|p| p.as_ref().ok().copied())
                .collect();
            let mut changed = rate.record_many(&votes, rate.now_ms()).into_iter();
            out.extend(parsed.into_iter().map(|p| match p {
                Ok(_) => {
                    let flag = changed.next().expect("one change flag per valid vote");
                    Response::ok(
                        "application/json",
                        format!("{{\"ok\":true,\"changed\":{flag}}}").into_bytes(),
                    )
                }
                Err(reason) => Response::bad_request(&reason),
            }));
        },
    );

    // GET /stats/ — scheduler + (optional) reactor observability.
    let stats_server = Arc::clone(&scheduled);
    router.get("/stats/", move |_req| {
        let sched = stats_server.scheduler().stats().snapshot().to_json();
        let body = match &reactor_stats {
            Some(reactor) => format!("{{\"sched\":{sched},\"reactor\":{}}}", reactor.to_json()),
            None => format!("{{\"sched\":{sched}}}"),
        };
        Response::ok("application/json", body.into_bytes())
    });

    router
}

/// Maps a lease-validation outcome onto the wire: applied completions ack
/// like the plain router; malformed payloads (NaN / out-of-range
/// similarities) are a 400 exactly as on the plain router, and dead-lease
/// conflicts are a 409 — both naming the (counted) reason.
fn completion_response(outcome: Result<(), RejectReason>) -> Response {
    match outcome {
        Ok(()) => Response::ok("application/json", b"{\"ok\":true}".to_vec()),
        Err(reason) => {
            let status = match reason {
                RejectReason::NanSimilarity | RejectReason::OutOfRangeSimilarity => 400,
                _ => 409,
            };
            let mut response = Response::ok(
                "application/json",
                format!("{{\"ok\":false,\"reject\":\"{reason}\"}}").into_bytes(),
            );
            response.status = status;
            response
        }
    }
}

/// Parses the `/rate/` query triple. Strict: `like` must be exactly `0`
/// or `1` (no coercion of `01`, `true`, `2`, …) and ids must be plain
/// decimal — anything else is a 400, on the scalar and the batched path
/// alike.
fn parse_rate(req: &Request) -> Result<(UserId, ItemId, Vote), String> {
    let uid = parse_uid(req)?;
    let item = req
        .query_param("item")
        .and_then(parse_u32_strict)
        .map(ItemId)
        .ok_or_else(|| "missing or invalid `item`".to_owned())?;
    let vote = match req.query_param("like") {
        Some("1") => Vote::Like,
        Some("0") => Vote::Dislike,
        _ => return Err("`like` must be 0 or 1".to_owned()),
    };
    Ok((uid, item, vote))
}

fn parse_uid(req: &Request) -> Result<UserId, String> {
    req.query_param("uid")
        .and_then(parse_u32_strict)
        .map(UserId)
        .ok_or_else(|| "missing or invalid `uid`".to_owned())
}

/// Parses the Table 1 query form: `id0=..&sim0=..&id1=..&sim1=..`, plus
/// the scheduler's optional `lease=..&epoch=..` credentials.
///
/// Structural strictness shared by both routers: malformed id/sim pairs —
/// more sims than ids, or `idN`/`simN` keys outside the contiguous run
/// from 0 (a gap would silently drop the keys after it) — are an error,
/// never silently applied. Similarity *range* validation lives in
/// [`validate_update`] (plain router) or in the scheduler's configured
/// check (scheduled router).
fn parse_knn_query(req: &Request) -> Result<KnnUpdate, String> {
    let uid = parse_uid(req)?;
    let lease = parse_optional_u64(req, "lease")?;
    let epoch = parse_optional_u64(req, "epoch")?;
    let ids = req.indexed_params("id");
    let sims = req.indexed_params("sim");
    if sims.len() > ids.len() {
        return Err(format!(
            "{} sim values for {} ids (malformed id/sim pairs)",
            sims.len(),
            ids.len()
        ));
    }
    for (prefix, run) in [("id", ids.len()), ("sim", sims.len())] {
        let total = indexed_key_count(req, prefix);
        if total != run {
            return Err(format!(
                "{total} {prefix}N parameters but the contiguous run from \
                 {prefix}0 is {run} (gapped id/sim pairs)"
            ));
        }
    }
    let mut neighbors = Vec::with_capacity(ids.len());
    for (index, id) in ids.iter().enumerate() {
        let user = parse_u32_strict(id)
            .map(UserId)
            .ok_or_else(|| format!("invalid id{index}"))?;
        // Similarities are optional in the paper's GET form; default 0.
        let similarity = match sims.get(index) {
            Some(s) => s
                .parse::<f64>()
                .map_err(|_| format!("invalid sim{index}"))?,
            None => 0.0,
        };
        neighbors.push(Neighbor { user, similarity });
    }
    Ok(KnnUpdate {
        uid,
        lease,
        epoch,
        neighbors,
    })
}

/// How many query keys have the shape `<prefix><digits>` — compared with
/// the contiguous `indexed_params` run to detect gapped pairs.
fn indexed_key_count(req: &Request, prefix: &str) -> usize {
    req.query
        .iter()
        .filter(|(key, _)| {
            key.strip_prefix(prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
        .count()
}

/// Payload validation for the *plain* router's `/neighbors/` forms: every
/// reported similarity must be a finite number in `[0, 1]`, with the same
/// default tolerance the scheduler's own validation uses (single
/// definition in `hyrec-sched`; the scheduled router validates inside the
/// scheduler so a configured tolerance applies there).
fn validate_update(update: &KnnUpdate) -> Result<(), String> {
    for (index, neighbor) in update.neighbors.iter().enumerate() {
        let sim = neighbor.similarity;
        if sim.is_nan() {
            return Err(format!("sim{index} is NaN"));
        }
        if !(0.0..=1.0 + hyrec_sched::DEFAULT_SIMILARITY_TOLERANCE).contains(&sim) {
            return Err(format!("sim{index} out of range [0, 1]: {sim}"));
        }
    }
    Ok(())
}

/// Strict `u32` parse: ASCII digits only (no sign, no whitespace — the
/// lenient `str::parse` accepts `+7`).
fn parse_u32_strict(text: &str) -> Option<u32> {
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    text.parse::<u32>().ok()
}

/// Optional strict `u64` query parameter; absent ⇒ `0`.
fn parse_optional_u64(req: &Request, key: &str) -> Result<u64, String> {
    match req.query_param(key) {
        None => Ok(0),
        Some(text) if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) => {
            text.parse::<u64>().map_err(|_| format!("invalid `{key}`"))
        }
        Some(_) => Err(format!("invalid `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::server::HttpServer;
    use hyrec_client::Widget;
    use hyrec_wire::PersonalizationJob;

    fn spawn_api() -> (crate::server::ServerHandle, HttpClient, Arc<HyRecServer>) {
        let hyrec = Arc::new(
            hyrec_server::HyRecServer::builder()
                .k(3)
                .r(5)
                .anonymize_users(false)
                .seed(5)
                .build(),
        );
        for u in 0..12u32 {
            for i in 0..5u32 {
                hyrec.record(UserId(u), ItemId(u % 3 * 100 + i), Vote::Like);
            }
        }
        let server = HttpServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));
        (handle, HttpClient::new(addr), hyrec)
    }

    #[test]
    fn full_widget_round_trip_over_http() {
        let (handle, client, hyrec) = spawn_api();

        // 1. Client requests a personalization job.
        let response = client.get("/online/?uid=1").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-encoding"), Some("gzip"));
        let job = PersonalizationJob::decode(&response.body).unwrap();
        assert_eq!(job.uid, UserId(1));
        assert!(!job.candidates.is_empty());

        // 2. Widget computes locally.
        let out = Widget::new().run_job(&job);

        // 3. Widget posts the update back (message form).
        let response = client.post("/neighbors/", &out.update.encode()).unwrap();
        assert_eq!(response.status, 200);
        assert!(hyrec.knn_of(UserId(1)).is_some());
        handle.stop();
    }

    #[test]
    fn table1_get_form_updates_knn() {
        let (handle, client, hyrec) = spawn_api();
        let response = client
            .get("/neighbors/?uid=2&id0=5&sim0=0.75&id1=8&sim1=0.5")
            .unwrap();
        assert_eq!(response.status, 200);
        let hood = hyrec.knn_of(UserId(2)).unwrap();
        assert_eq!(hood.len(), 2);
        assert_eq!(hood.best().unwrap().user, UserId(5));
        handle.stop();
    }

    #[test]
    fn rate_endpoint_updates_profiles() {
        let (handle, client, hyrec) = spawn_api();
        let response = client.get("/rate/?uid=50&item=777&like=1").unwrap();
        assert_eq!(response.status, 200);
        assert!(String::from_utf8_lossy(&response.body).contains("\"changed\":true"));
        assert!(hyrec.profile_of(UserId(50)).unwrap().likes(ItemId(777)));

        let response = client.get("/rate/?uid=50&item=777&like=0").unwrap();
        assert_eq!(response.status, 200);
        assert!(!hyrec.profile_of(UserId(50)).unwrap().likes(ItemId(777)));
        handle.stop();
    }

    #[test]
    fn bad_inputs_get_400() {
        let (handle, client, _) = spawn_api();
        assert_eq!(client.get("/online/").unwrap().status, 400);
        assert_eq!(client.get("/online/?uid=abc").unwrap().status, 400);
        assert_eq!(client.get("/neighbors/?uid=1&id0=zz").unwrap().status, 400);
        assert_eq!(
            client.get("/rate/?uid=1&item=2&like=5").unwrap().status,
            400
        );
        assert_eq!(client.get("/rate/?uid=1").unwrap().status, 400);
        let post = client.post("/neighbors/", b"not gzip").unwrap();
        assert_eq!(post.status, 400);
        handle.stop();
    }

    #[test]
    fn unknown_route_is_404() {
        let (handle, client, _) = spawn_api();
        assert_eq!(client.get("/nope").unwrap().status, 404);
        handle.stop();
    }

    #[test]
    fn trailing_slash_is_optional_on_every_endpoint() {
        // Regression: the seed router 404'd on `/online` (no slash).
        let (handle, client, _) = spawn_api();
        let with = client.get("/online/?uid=1").unwrap();
        assert_eq!(with.status, 200);
        // Same endpoint without the slash: same route, fresh sampler draw.
        let without = client.get("/online?uid=1").unwrap();
        assert_eq!(without.status, 200);
        let job = PersonalizationJob::decode(&without.body).unwrap();
        assert_eq!(job.uid, UserId(1));
        assert_eq!(
            client.get("/rate?uid=60&item=1&like=1").unwrap().status,
            200
        );
        assert_eq!(client.get("/neighbors?uid=2&id0=5").unwrap().status, 200);
        handle.stop();
    }

    #[test]
    fn online_body_matches_scalar_pipeline() {
        // The HTTP body must be byte-identical to build_job + encode on an
        // identically-seeded twin server.
        let (handle, client, _) = spawn_api();
        let twin = hyrec_server::HyRecServer::builder()
            .k(3)
            .r(5)
            .anonymize_users(false)
            .seed(5)
            .build();
        for u in 0..12u32 {
            for i in 0..5u32 {
                twin.record(UserId(u), ItemId(u % 3 * 100 + i), Vote::Like);
            }
        }
        let encoder = JobEncoder::new();
        let expected = encoder.encode(&twin.build_job(UserId(1)));
        let response = client.get("/online/?uid=1").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(
            response.body, expected,
            "HTTP body diverged from scalar path"
        );
        handle.stop();
    }

    #[test]
    fn full_widget_round_trip_over_reactor() {
        // The same API served by the epoll reactor front-end.
        let hyrec = Arc::new(
            hyrec_server::HyRecServer::builder()
                .k(3)
                .r(5)
                .anonymize_users(false)
                .seed(5)
                .build(),
        );
        for u in 0..12u32 {
            for i in 0..5u32 {
                hyrec.record(UserId(u), ItemId(u % 3 * 100 + i), Vote::Like);
            }
        }
        let server = crate::reactor::ReactorServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));
        let client = HttpClient::new(addr);

        let response = client.get("/online/?uid=1").unwrap();
        assert_eq!(response.status, 200);
        let job = PersonalizationJob::decode(&response.body).unwrap();
        assert_eq!(job.uid, UserId(1));

        let out = Widget::new().run_job(&job);
        let response = client.post("/neighbors/", &out.update.encode()).unwrap();
        assert_eq!(response.status, 200);
        assert!(hyrec.knn_of(UserId(1)).is_some());

        let response = client.get("/rate/?uid=1&item=9999&like=1").unwrap();
        assert_eq!(response.status, 200);
        assert!(hyrec.profile_of(UserId(1)).unwrap().likes(ItemId(9999)));
        handle.stop();
    }
}
