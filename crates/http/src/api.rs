//! The HyRec web API (Table 1 of the paper) mounted on the HTTP stack.
//!
//! | Call | Meaning |
//! |------|---------|
//! | `GET /online/?uid=<uid>` | Client request: returns the gzipped JSON personalization job |
//! | `GET /neighbors/?uid=<uid>&id0=<fid0>&sim0=…&id1=…` | Update KNN selection |
//! | `POST /neighbors/` (gzipped [`KnnUpdate`] body) | Same update, message form |
//! | `` GET /rate/?uid=&item=&like=0|1 `` | Record a rating (profile update) |
//!
//! The `/online` + `/neighbors` pair is verbatim from the paper; `/rate` is
//! the profile-update entry point the paper folds into "the server first
//! updates u's profile".

use crate::request::Request;
use crate::response::Response;
use crate::router::Router;
use hyrec_core::{ItemId, Neighbor, UserId, Vote};
use hyrec_server::HyRecServer;
use hyrec_wire::KnnUpdate;
use std::sync::Arc;

/// Builds the HyRec API router around a shared server.
#[must_use]
pub fn hyrec_router(server: Arc<HyRecServer>) -> Router {
    let mut router = Router::new();

    // GET /online/?uid=N — the "Client request" row of Table 1.
    let online_server = Arc::clone(&server);
    router.get("/online/", move |req| match parse_uid(req) {
        Ok(uid) => {
            let job = online_server.build_job(uid);
            Response::ok_pregzipped_json(job.encode())
        }
        Err(reason) => Response::bad_request(&reason),
    });

    // GET /neighbors/?uid=N&id0=..&sim0=.. — "Update KNN selection".
    let neighbors_server = Arc::clone(&server);
    router.get("/neighbors/", move |req| match parse_knn_query(req) {
        Ok(update) => {
            neighbors_server.apply_update(&update);
            Response::ok("application/json", b"{\"ok\":true}".to_vec())
        }
        Err(reason) => Response::bad_request(&reason),
    });

    // POST /neighbors/ with a gzipped KnnUpdate body (our wire form).
    let post_server = Arc::clone(&server);
    router.post("/neighbors/", move |req| {
        match KnnUpdate::decode(&req.body) {
            Ok(update) => {
                post_server.apply_update(&update);
                Response::ok("application/json", b"{\"ok\":true}".to_vec())
            }
            Err(err) => Response::bad_request(&err.to_string()),
        }
    });

    // GET /rate/?uid=N&item=I&like=0|1 — profile update.
    let rate_server = Arc::clone(&server);
    router.get("/rate/", move |req| {
        let uid = match parse_uid(req) {
            Ok(uid) => uid,
            Err(reason) => return Response::bad_request(&reason),
        };
        let item = match req.query_param("item").and_then(|v| v.parse::<u32>().ok()) {
            Some(item) => ItemId(item),
            None => return Response::bad_request("missing or invalid `item`"),
        };
        let vote = match req.query_param("like") {
            Some("1") => Vote::Like,
            Some("0") => Vote::Dislike,
            _ => return Response::bad_request("`like` must be 0 or 1"),
        };
        let changed = rate_server.record(uid, item, vote);
        Response::ok(
            "application/json",
            format!("{{\"ok\":true,\"changed\":{changed}}}").into_bytes(),
        )
    });

    router
}

fn parse_uid(req: &Request) -> Result<UserId, String> {
    req.query_param("uid")
        .and_then(|v| v.parse::<u32>().ok())
        .map(UserId)
        .ok_or_else(|| "missing or invalid `uid`".to_owned())
}

/// Parses the Table 1 query form: `id0=..&sim0=..&id1=..&sim1=..`.
fn parse_knn_query(req: &Request) -> Result<KnnUpdate, String> {
    let uid = parse_uid(req)?;
    let ids = req.indexed_params("id");
    let sims = req.indexed_params("sim");
    let mut neighbors = Vec::with_capacity(ids.len());
    for (index, id) in ids.iter().enumerate() {
        let user = id
            .parse::<u32>()
            .map(UserId)
            .map_err(|_| format!("invalid id{index}"))?;
        // Similarities are optional in the paper's GET form; default 0.
        let similarity = match sims.get(index) {
            Some(s) => s
                .parse::<f64>()
                .map_err(|_| format!("invalid sim{index}"))?,
            None => 0.0,
        };
        neighbors.push(Neighbor { user, similarity });
    }
    Ok(KnnUpdate { uid, neighbors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::server::HttpServer;
    use hyrec_client::Widget;
    use hyrec_wire::PersonalizationJob;

    fn spawn_api() -> (crate::server::ServerHandle, HttpClient, Arc<HyRecServer>) {
        let hyrec = Arc::new(
            hyrec_server::HyRecServer::builder()
                .k(3)
                .r(5)
                .anonymize_users(false)
                .seed(5)
                .build(),
        );
        for u in 0..12u32 {
            for i in 0..5u32 {
                hyrec.record(UserId(u), ItemId(u % 3 * 100 + i), Vote::Like);
            }
        }
        let server = HttpServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.local_addr();
        let handle = server.serve(hyrec_router(Arc::clone(&hyrec)));
        (handle, HttpClient::new(addr), hyrec)
    }

    #[test]
    fn full_widget_round_trip_over_http() {
        let (handle, client, hyrec) = spawn_api();

        // 1. Client requests a personalization job.
        let response = client.get("/online/?uid=1").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-encoding"), Some("gzip"));
        let job = PersonalizationJob::decode(&response.body).unwrap();
        assert_eq!(job.uid, UserId(1));
        assert!(!job.candidates.is_empty());

        // 2. Widget computes locally.
        let out = Widget::new().run_job(&job);

        // 3. Widget posts the update back (message form).
        let response = client.post("/neighbors/", &out.update.encode()).unwrap();
        assert_eq!(response.status, 200);
        assert!(hyrec.knn_of(UserId(1)).is_some());
        handle.stop();
    }

    #[test]
    fn table1_get_form_updates_knn() {
        let (handle, client, hyrec) = spawn_api();
        let response = client
            .get("/neighbors/?uid=2&id0=5&sim0=0.75&id1=8&sim1=0.5")
            .unwrap();
        assert_eq!(response.status, 200);
        let hood = hyrec.knn_of(UserId(2)).unwrap();
        assert_eq!(hood.len(), 2);
        assert_eq!(hood.best().unwrap().user, UserId(5));
        handle.stop();
    }

    #[test]
    fn rate_endpoint_updates_profiles() {
        let (handle, client, hyrec) = spawn_api();
        let response = client.get("/rate/?uid=50&item=777&like=1").unwrap();
        assert_eq!(response.status, 200);
        assert!(String::from_utf8_lossy(&response.body).contains("\"changed\":true"));
        assert!(hyrec.profile_of(UserId(50)).unwrap().likes(ItemId(777)));

        let response = client.get("/rate/?uid=50&item=777&like=0").unwrap();
        assert_eq!(response.status, 200);
        assert!(!hyrec.profile_of(UserId(50)).unwrap().likes(ItemId(777)));
        handle.stop();
    }

    #[test]
    fn bad_inputs_get_400() {
        let (handle, client, _) = spawn_api();
        assert_eq!(client.get("/online/").unwrap().status, 400);
        assert_eq!(client.get("/online/?uid=abc").unwrap().status, 400);
        assert_eq!(client.get("/neighbors/?uid=1&id0=zz").unwrap().status, 400);
        assert_eq!(
            client.get("/rate/?uid=1&item=2&like=5").unwrap().status,
            400
        );
        assert_eq!(client.get("/rate/?uid=1").unwrap().status, 400);
        let post = client.post("/neighbors/", b"not gzip").unwrap();
        assert_eq!(post.status, 400);
        handle.stop();
    }

    #[test]
    fn unknown_route_is_404() {
        let (handle, client, _) = spawn_api();
        assert_eq!(client.get("/nope").unwrap().status, 404);
        handle.stop();
    }
}
