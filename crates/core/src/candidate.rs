//! The candidate set `S_u` — the payload of a personalization job.
//!
//! The server's sampler assembles, per request, the set of users the widget
//! will score: the requester's current neighbours, their neighbours, and `k`
//! random users (Section 3.1). [`CandidateSet`] is the deduplicated product
//! of that aggregation, carrying each candidate's (pseudonymous) id and full
//! profile so the widget needs *no* local state.

use crate::fast_hash::FastHashSet;
use crate::id::UserId;
use crate::profile::Profile;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A candidate user as shipped to the widget: pseudonymous id plus profile.
///
/// The profile is held behind [`Arc`]: candidate sets are assembled from
/// the server's [`crate::ProfileTable`], and sharing the stored allocation
/// keeps job assembly free of deep profile copies (the zero-copy hot path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateProfile {
    /// Pseudonymous id of the candidate (anonymous mapping, Section 3.1).
    pub user: UserId,
    /// Shared handle to the candidate's full binary profile.
    pub profile: Arc<Profile>,
}

/// A deduplicated candidate set `S_u`.
///
/// Aggregating `N_u`, the KNN of `N_u`'s members and `k` random users can
/// produce the same user several times ("more and more as the KNN tables
/// converge"); the set keeps the first occurrence of each user. The paper's
/// size bound `|S_u| <= 2k + k²` is enforced by construction at the sampler,
/// not here — this type only guarantees uniqueness.
///
/// ```
/// use hyrec_core::{CandidateSet, Profile, UserId};
/// let mut s = CandidateSet::new();
/// assert!(s.insert(UserId(1), Profile::from_liked([1])));
/// assert!(!s.insert(UserId(1), Profile::from_liked([2]))); // duplicate user
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateSet {
    candidates: Vec<CandidateProfile>,
    /// Lazily materialized duplicate-tracking index. Hot-path consumers
    /// (widget, encoder) only iterate, so sets built from pre-deduplicated
    /// input ([`Self::from_deduped`], the batched sampler) never pay for it.
    #[serde(skip)]
    seen: OnceLock<FastHashSet<UserId>>,
}

impl PartialEq for CandidateSet {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; equality is the candidate list.
        self.candidates == other.candidates
    }
}

impl CandidateSet {
    /// Creates an empty candidate set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for `capacity` candidates.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            candidates: Vec::with_capacity(capacity),
            seen: OnceLock::new(),
        }
    }

    /// Builds a set from candidates already known to be distinct — the
    /// zero-rehash path of the batched sampler, which deduplicates while
    /// assembling the id lists.
    ///
    /// The uniqueness contract is the caller's (checked in debug builds);
    /// the index materializes lazily if [`Self::insert`] or
    /// [`Self::contains`] is called later.
    #[must_use]
    pub fn from_deduped(candidates: Vec<CandidateProfile>) -> Self {
        debug_assert!(
            {
                let mut ids: Vec<UserId> = candidates.iter().map(|c| c.user).collect();
                ids.sort_unstable();
                ids.windows(2).all(|w| w[0] != w[1])
            },
            "from_deduped called with duplicate users"
        );
        Self {
            candidates,
            seen: OnceLock::new(),
        }
    }

    fn seen_mut(&mut self) -> &mut FastHashSet<UserId> {
        if self.seen.get().is_none() {
            // Size for the Vec's capacity: a `with_capacity(n)` set then
            // takes its n inserts without a single rehash.
            let mut index = FastHashSet::with_capacity_and_hasher(
                self.candidates.capacity().max(self.candidates.len()),
                Default::default(),
            );
            index.extend(self.candidates.iter().map(|c| c.user));
            let _ = self.seen.set(index);
        }
        self.seen.get_mut().expect("index just materialized")
    }

    /// Inserts a candidate; returns `false` (and drops the profile) if the
    /// user is already present.
    ///
    /// Accepts either an owned [`Profile`] (wrapped on the way in) or an
    /// [`Arc<Profile>`] handle straight from the profile table — the latter
    /// is the zero-copy path.
    pub fn insert(&mut self, user: UserId, profile: impl Into<Arc<Profile>>) -> bool {
        if self.seen_mut().insert(user) {
            self.candidates.push(CandidateProfile {
                user,
                profile: profile.into(),
            });
            true
        } else {
            false
        }
    }

    /// Whether `user` is already in the set.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.seen
            .get_or_init(|| self.candidates.iter().map(|c| c.user).collect())
            .contains(&user)
    }

    /// Number of distinct candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidate has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Iterates candidates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &CandidateProfile> {
        self.candidates.iter()
    }

    /// Iterates `(user, &profile)` pairs, the shape Algorithm 1 consumes.
    pub fn pairs(&self) -> impl Iterator<Item = (UserId, &Profile)> {
        self.candidates.iter().map(|c| (c.user, c.profile.as_ref()))
    }

    /// Iterates just the candidate profiles, the shape Algorithm 2 consumes.
    pub fn profiles(&self) -> impl Iterator<Item = &Profile> {
        self.candidates.iter().map(|c| c.profile.as_ref())
    }

    /// Consumes the set, returning the candidates in insertion order.
    #[must_use]
    pub fn into_vec(self) -> Vec<CandidateProfile> {
        self.candidates
    }

    /// Drops the duplicate-tracking index so it re-derives from the
    /// candidate list on next use (e.g. after deserialization or manual
    /// surgery on the candidates).
    pub fn rebuild_index(&mut self) {
        self.seen = OnceLock::new();
    }
}

impl FromIterator<(UserId, Profile)> for CandidateSet {
    fn from_iter<T: IntoIterator<Item = (UserId, Profile)>>(iter: T) -> Self {
        let mut set = CandidateSet::new();
        for (user, profile) in iter {
            set.insert(user, profile);
        }
        set
    }
}

impl FromIterator<(UserId, Arc<Profile>)> for CandidateSet {
    fn from_iter<T: IntoIterator<Item = (UserId, Arc<Profile>)>>(iter: T) -> Self {
        let mut set = CandidateSet::new();
        for (user, profile) in iter {
            set.insert(user, profile);
        }
        set
    }
}

impl FromIterator<CandidateProfile> for CandidateSet {
    fn from_iter<T: IntoIterator<Item = CandidateProfile>>(iter: T) -> Self {
        iter.into_iter().map(|c| (c.user, c.profile)).collect()
    }
}

impl<'a> IntoIterator for &'a CandidateSet {
    type Item = &'a CandidateProfile;
    type IntoIter = std::slice::Iter<'a, CandidateProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.candidates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ItemId;

    #[test]
    fn insert_deduplicates_users() {
        let mut s = CandidateSet::new();
        assert!(s.insert(UserId(1), Profile::from_liked([1u32])));
        assert!(s.insert(UserId(2), Profile::from_liked([2u32])));
        assert!(!s.insert(UserId(1), Profile::from_liked([3u32])));
        assert_eq!(s.len(), 2);
        // First profile wins.
        let first = s.iter().find(|c| c.user == UserId(1)).unwrap();
        assert!(first.profile.likes(ItemId(1)));
    }

    #[test]
    fn pairs_and_profiles_views_agree() {
        let s: CandidateSet = [
            (UserId(1), Profile::from_liked([1u32])),
            (UserId(2), Profile::from_liked([2u32])),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.pairs().count(), 2);
        assert_eq!(s.profiles().count(), 2);
        assert!(s.contains(UserId(1)));
        assert!(!s.contains(UserId(9)));
    }

    #[test]
    fn rebuild_index_restores_dedup() {
        let mut s: CandidateSet = [(UserId(1), Profile::new())].into_iter().collect();
        s.rebuild_index();
        assert!(!s.insert(UserId(1), Profile::new()));
    }

    #[test]
    fn from_deduped_behaves_like_insertion() {
        let parts = vec![
            CandidateProfile {
                user: UserId(1),
                profile: Profile::from_liked([1u32]).into(),
            },
            CandidateProfile {
                user: UserId(2),
                profile: Profile::from_liked([2u32]).into(),
            },
        ];
        let mut s = CandidateSet::from_deduped(parts);
        assert_eq!(s.len(), 2);
        assert!(s.contains(UserId(1)));
        // Lazy index still deduplicates later inserts.
        assert!(!s.insert(UserId(2), Profile::new()));
        assert!(s.insert(UserId(3), Profile::new()));

        let built: CandidateSet = [
            (UserId(1), Profile::from_liked([1u32])),
            (UserId(2), Profile::from_liked([2u32])),
        ]
        .into_iter()
        .collect();
        assert_ne!(s, built); // s has a third member now
        assert_eq!(s.iter().take(2).count(), 2);
    }

    #[test]
    fn candidate_set_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CandidateSet>();
    }

    #[test]
    fn empty_set_behaves() {
        let s = CandidateSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn len_equals_distinct_users(ids in proptest::collection::vec(0u32..30, 0..100)) {
                let set: CandidateSet = ids
                    .iter()
                    .map(|&u| (UserId(u), Profile::new()))
                    .collect();
                let distinct: std::collections::HashSet<u32> = ids.into_iter().collect();
                prop_assert_eq!(set.len(), distinct.len());
            }
        }
    }
}
