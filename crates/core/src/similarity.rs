//! Similarity metrics between user profiles.
//!
//! The paper uses cosine similarity over binary profiles ("we use cosine
//! similarity in this paper, but any other metric could be used",
//! Section 2.1) and exposes the metric as a customization point on the widget
//! (`setSimilarity()`, Table 1). [`Similarity`] is that customization point;
//! [`Cosine`] is the default, with [`Jaccard`] and [`Overlap`] as the common
//! alternatives a content provider would plug in.

use crate::profile::Profile;

/// A similarity metric between two binary profiles.
///
/// Implementations must be pure functions of the two profiles, returning a
/// score in `[0, 1]` where higher means more similar. The trait is
/// object-safe so the widget can hold a `&dyn Similarity` chosen at runtime
/// (the `setSimilarity()` hook of Table 1).
///
/// ```
/// use hyrec_core::{Cosine, Profile, Similarity};
/// let a = Profile::from_liked([1, 2]);
/// let b = Profile::from_liked([2, 3]);
/// let metric: &dyn Similarity = &Cosine;
/// let s = metric.score(&a, &b);
/// assert!(s > 0.0 && s < 1.0);
/// ```
pub trait Similarity: Send + Sync {
    /// Scores the similarity between profiles `a` and `b` in `[0, 1]`.
    ///
    /// A score of `0.0` means no shared taste; `1.0` means identical liked
    /// sets. Either profile may be empty, in which case the score is `0.0`.
    fn score(&self, a: &Profile, b: &Profile) -> f64;

    /// A short stable name, used in experiment output and logs.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Cosine similarity over binary liked-item vectors (the paper's default).
///
/// For binary vectors this is `|A ∩ B| / sqrt(|A| * |B|)`.
///
/// ```
/// use hyrec_core::{Cosine, Profile, Similarity};
/// let a = Profile::from_liked([1, 2, 3, 4]);
/// assert_eq!(Cosine.score(&a, &a), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Similarity for Cosine {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let (la, lb) = (a.liked_len(), b.liked_len());
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let inter = a.liked_intersection_len(b) as f64;
        inter / ((la as f64) * (lb as f64)).sqrt()
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Jaccard similarity: `|A ∩ B| / |A ∪ B|`.
///
/// Less forgiving than cosine when profile sizes differ widely; useful for
/// feed-style workloads with short profiles (the Digg case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Similarity for Jaccard {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let (la, lb) = (a.liked_len(), b.liked_len());
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let inter = a.liked_intersection_len(b);
        let union = la + lb - inter;
        inter as f64 / union as f64
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Overlap (Szymkiewicz–Simpson) coefficient: `|A ∩ B| / min(|A|, |B|)`.
///
/// Insensitive to the larger profile's size; favours niche sub-community
/// matches, at the price of saturating quickly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Overlap;

impl Similarity for Overlap {
    fn score(&self, a: &Profile, b: &Profile) -> f64 {
        let (la, lb) = (a.liked_len(), b.liked_len());
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let inter = a.liked_intersection_len(b);
        inter as f64 / la.min(lb) as f64
    }

    fn name(&self) -> &'static str {
        "overlap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ItemId;

    fn profiles() -> (Profile, Profile) {
        (
            Profile::from_liked([1u32, 2, 3, 4]),
            Profile::from_liked([3u32, 4, 5, 6]),
        )
    }

    #[test]
    fn cosine_known_value() {
        let (a, b) = profiles();
        // |A∩B| = 2, sqrt(4*4) = 4 -> 0.5
        assert!((Cosine.score(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_known_value() {
        let (a, b) = profiles();
        // 2 / (4 + 4 - 2) = 1/3
        assert!((Jaccard.score(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_known_value() {
        let a = Profile::from_liked([1u32, 2]);
        let b = Profile::from_liked([1u32, 2, 3, 4, 5, 6]);
        assert!((Overlap.score(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiles_score_zero() {
        let empty = Profile::new();
        let full = Profile::from_liked([1u32, 2]);
        for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
            assert_eq!(metric.score(&empty, &full), 0.0);
            assert_eq!(metric.score(&full, &empty), 0.0);
            assert_eq!(metric.score(&empty, &empty), 0.0);
        }
    }

    #[test]
    fn identical_profiles_score_one() {
        let p = Profile::from_liked([10u32, 20, 30]);
        for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
            assert!(
                (metric.score(&p, &p) - 1.0).abs() < 1e-12,
                "{}",
                metric.name()
            );
        }
    }

    #[test]
    fn dislikes_do_not_contribute() {
        let mut a = Profile::from_liked([1u32, 2]);
        let b = Profile::from_liked([1u32, 2]);
        let before = Cosine.score(&a, &b);
        a.record(ItemId(99), crate::profile::Vote::Dislike);
        assert_eq!(Cosine.score(&a, &b), before);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Cosine.name(), "cosine");
        assert_eq!(Jaccard.name(), "jaccard");
        assert_eq!(Overlap.name(), "overlap");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_profile() -> impl Strategy<Value = Profile> {
            proptest::collection::vec(0u32..500, 0..60).prop_map(Profile::from_liked)
        }

        proptest! {
            #[test]
            fn scores_are_within_unit_interval(a in arb_profile(), b in arb_profile()) {
                for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
                    let s = metric.score(&a, &b);
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
                }
            }

            #[test]
            fn scores_are_symmetric(a in arb_profile(), b in arb_profile()) {
                for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
                    prop_assert!((metric.score(&a, &b) - metric.score(&b, &a)).abs() < 1e-12);
                }
            }

            #[test]
            fn self_similarity_is_one_when_nonempty(a in arb_profile()) {
                prop_assume!(a.liked_len() > 0);
                for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
                    prop_assert!((metric.score(&a, &a) - 1.0).abs() < 1e-12);
                }
            }

            #[test]
            fn disjoint_profiles_score_zero(
                xs in proptest::collection::vec(0u32..100, 1..30),
                ys in proptest::collection::vec(200u32..300, 1..30),
            ) {
                let a = Profile::from_liked(xs);
                let b = Profile::from_liked(ys);
                for metric in [&Cosine as &dyn Similarity, &Jaccard, &Overlap] {
                    prop_assert_eq!(metric.score(&a, &b), 0.0);
                }
            }

            #[test]
            fn jaccard_never_exceeds_cosine_never_exceeds_overlap(
                a in arb_profile(), b in arb_profile()
            ) {
                // For binary sets: J <= C <= O (AM-GM: sqrt(|A||B|) <= union size; min <= sqrt).
                let j = Jaccard.score(&a, &b);
                let c = Cosine.score(&a, &b);
                let o = Overlap.score(&a, &b);
                prop_assert!(j <= c + 1e-12);
                prop_assert!(c <= o + 1e-12);
            }
        }
    }
}
