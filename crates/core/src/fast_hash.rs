//! A fast, non-cryptographic hasher for the request hot path.
//!
//! Every candidate pushed into a job costs several hash-map operations
//! (shard-map lookup, dedup-index insert, encoder-cache probe). The
//! standard library's SipHash is DoS-resistant but ~5× slower than needed
//! for 4-byte [`crate::UserId`] keys that already sit behind the server's
//! anonymization layer. This is the Fx/rustc multiply-rotate hash:
//! word-at-a-time, two arithmetic ops per word.
//!
//! Use for internal, trusted-key tables only (user/item ids). Anything
//! keyed by attacker-controlled byte strings should stay on SipHash.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash (Firefox/rustc): a single odd constant with
/// good bit diffusion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (the rustc `FxHasher`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Rarely used for our integer keys; fold bytes into words.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by trusted internal ids.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` of trusted internal ids.
pub type FastHashSet<T> = std::collections::HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_sequential_ids() {
        // Sequential uids must spread across low bits (hash maps mask by
        // capacity), or every shard map degenerates into one bucket chain.
        let mut buckets = [0u32; 64];
        for id in 0u32..64_000 {
            let mut h = FastHasher::default();
            h.write_u32(id);
            buckets[(h.finish() & 63) as usize] += 1;
        }
        let (min, max) = (
            *buckets.iter().min().unwrap(),
            *buckets.iter().max().unwrap(),
        );
        assert!(min > 500, "bucket starvation: min {min}");
        assert!(max < 2000, "bucket pileup: max {max}");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FastHashMap<u32, u32> = FastHashMap::default();
        let mut set: FastHashSet<u32> = FastHashSet::default();
        for i in 0..1000u32 {
            map.insert(i, i * 2);
            set.insert(i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&500], 1000);
        assert!(set.contains(&999));
        assert!(!set.contains(&1000));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FastHasher::default();
        a.write(b"hello world");
        let mut b = FastHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
