//! # hyrec-core
//!
//! Domain model and collaborative-filtering algorithms for **HyRec**, the
//! hybrid browser-offloaded recommender of Boutet et al. (Middleware 2014).
//!
//! This crate is the foundation of the workspace. It contains everything that
//! both the server and the (browser-side) client need:
//!
//! * [`UserId`] / [`ItemId`] — newtype identifiers ([`id`]).
//! * [`Profile`] — a user's binary rating profile ([`profile`]).
//! * [`similarity`] — the pluggable similarity metrics (cosine by default).
//! * [`knn`] — *Algorithm 1* of the paper: KNN selection `γ(P_u, S_u)`.
//! * [`recommend`] — *Algorithm 2*: most-popular item recommendation
//!   `α(S_u, P_u)`.
//! * [`candidate`] — the candidate set `S_u` shipped to clients.
//! * [`tables`] — the server-side global Profile and KNN tables.
//!
//! Everything here is deliberately free of I/O so the same code runs inside
//! the server, the simulator, and a `wasm32` build of the client widget.
//!
//! ## Quickstart
//!
//! ```
//! use hyrec_core::prelude::*;
//!
//! // Two users with overlapping tastes and one odd one out.
//! let alice = Profile::from_liked([1, 2, 3, 4]);
//! let bob = Profile::from_liked([2, 3, 4, 5]);
//! let carol = Profile::from_liked([900, 901]);
//!
//! let cosine = Cosine;
//! assert!(cosine.score(&alice, &bob) > cosine.score(&alice, &carol));
//!
//! // Algorithm 1: select alice's nearest neighbours among the candidates.
//! let candidates = vec![
//!     (UserId(1), bob.clone()),
//!     (UserId(2), carol.clone()),
//! ];
//! let knn = knn::select(&alice, candidates.iter().map(|(u, p)| (*u, p)), 1, &cosine);
//! assert_eq!(knn.users().collect::<Vec<_>>(), vec![UserId(1)]);
//!
//! // Algorithm 2: recommend the most popular unseen items.
//! let recs = recommend::most_popular(&alice, candidates.iter().map(|(_, p)| p), 2);
//! assert!(recs.iter().any(|r| r.item == ItemId(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod error;
pub mod fast_hash;
pub mod id;
pub mod knn;
pub mod profile;
pub mod recommend;
pub mod similarity;
pub mod tables;
pub mod topk;

pub use candidate::{CandidateProfile, CandidateSet};
pub use error::CoreError;
pub use fast_hash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use id::{ItemId, UserId};
pub use knn::{Neighbor, Neighborhood};
pub use profile::{Profile, SharedProfile, Vote};
pub use recommend::Recommendation;
pub use similarity::{Cosine, Jaccard, Overlap, Similarity};
pub use tables::{KnnTable, ProfileTable};

/// Convenient glob import for downstream code and doc examples.
pub mod prelude {
    pub use crate::candidate::{CandidateProfile, CandidateSet};
    pub use crate::id::{ItemId, UserId};
    pub use crate::knn::{self, Neighbor, Neighborhood};
    pub use crate::profile::{Profile, SharedProfile, Vote};
    pub use crate::recommend::{self, Recommendation};
    pub use crate::similarity::{Cosine, Jaccard, Overlap, Similarity};
    pub use crate::tables::{KnnTable, ProfileTable};
}

/// The maximum candidate-set size produced by the paper's sampler:
/// `|S_u| <= 2k + k^2` (Section 3.1).
///
/// The candidate set aggregates the user's current KNN (`k` entries), the KNN
/// of each of those neighbours (`k^2` entries) and `k` random users; duplicate
/// users are merged, so this is an upper bound.
///
/// ```
/// assert_eq!(hyrec_core::candidate_set_bound(10), 120);
/// assert_eq!(hyrec_core::candidate_set_bound(5), 35);
/// assert_eq!(hyrec_core::candidate_set_bound(20), 440);
/// ```
#[must_use]
pub const fn candidate_set_bound(k: usize) -> usize {
    2 * k + k * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_bound_matches_paper_values() {
        // Section 5.2: for k = 10 the upper bound is 120.
        assert_eq!(candidate_set_bound(10), 120);
        assert_eq!(candidate_set_bound(0), 0);
        assert_eq!(candidate_set_bound(1), 3);
    }
}
