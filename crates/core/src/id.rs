//! Newtype identifiers for users and items.
//!
//! HyRec's anonymous mapping (Section 3.1 of the paper) relies on identifiers
//! being opaque tokens that can be re-shuffled at any time, so the rest of the
//! code never assumes identifiers are dense or stable. The newtypes keep user
//! and item spaces statically distinct (Rust API guideline C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user.
///
/// In the real deployment this is the pseudonym assigned by the server's
/// anonymous mapping, *not* a durable account id; see
/// `hyrec_server::anonymize`.
///
/// ```
/// use hyrec_core::UserId;
/// let u = UserId(42);
/// assert_eq!(u.0, 42);
/// assert_eq!(u.to_string(), "u42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserId(pub u32);

/// Identifier of an item (a movie, a news story, ...).
///
/// ```
/// use hyrec_core::ItemId;
/// let i = ItemId(7);
/// assert_eq!(i.to_string(), "i7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ItemId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(raw: u32) -> Self {
        UserId(raw)
    }
}

impl From<UserId> for u32 {
    fn from(id: UserId) -> Self {
        id.0
    }
}

impl From<u32> for ItemId {
    fn from(raw: u32) -> Self {
        ItemId(raw)
    }
}

impl From<ItemId> for u32 {
    fn from(id: ItemId) -> Self {
        id.0
    }
}

impl UserId {
    /// Returns the raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl ItemId {
    /// Returns the raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(3).to_string(), "i3");
    }

    #[test]
    fn conversions_round_trip() {
        let u: UserId = 9u32.into();
        let raw: u32 = u.into();
        assert_eq!(raw, 9);
        let i: ItemId = 11u32.into();
        let raw: u32 = i.into();
        assert_eq!(raw, 11);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(UserId(1));
        set.insert(UserId(1));
        assert_eq!(set.len(), 1);
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(5) > ItemId(4));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UserId::default(), UserId(0));
        assert_eq!(ItemId::default(), ItemId(0));
    }
}
