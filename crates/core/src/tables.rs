//! The server's global data structures: the Profile Table and the KNN Table.
//!
//! Section 2.2/3.1 of the paper: "the server maintains two global data
//! structures: a Profile Table, recording the profiles of all the users in
//! the system, and the KNN Table containing the k nearest neighbors of each
//! user". Both tables sit on the request path of every online user, so they
//! are sharded and guarded by `parking_lot` RwLocks: reads (sampler pulling
//! candidate profiles) massively dominate writes (one profile update and one
//! KNN write-back per request).

use crate::id::UserId;
use crate::knn::Neighborhood;
use crate::profile::{Profile, Vote};
use crate::ItemId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Number of lock shards. Power of two so the shard of a user is a mask away.
const SHARDS: usize = 64;

fn shard_of(user: UserId) -> usize {
    // Fibonacci hashing spreads sequential uids across shards.
    ((user.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (SHARDS - 1)
}

/// Sharded, thread-safe map from user to profile.
///
/// ```
/// use hyrec_core::{ItemId, Profile, ProfileTable, UserId, Vote};
/// let table = ProfileTable::new();
/// table.record(UserId(1), ItemId(10), Vote::Like);
/// assert_eq!(table.get(UserId(1)).unwrap().liked_len(), 1);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProfileTable {
    shards: Vec<RwLock<HashMap<UserId, Profile>>>,
}

impl Default for ProfileTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Records a vote into `user`'s profile, creating the profile if absent.
    ///
    /// Returns `true` when the vote changed the profile — the signal the
    /// orchestrator uses to decide whether a new KNN iteration is worthwhile.
    pub fn record(&self, user: UserId, item: ItemId, vote: Vote) -> bool {
        let mut shard = self.shards[shard_of(user)].write();
        shard.entry(user).or_default().record(item, vote)
    }

    /// Replaces `user`'s whole profile, returning the previous one if any.
    pub fn insert(&self, user: UserId, profile: Profile) -> Option<Profile> {
        let mut shard = self.shards[shard_of(user)].write();
        shard.insert(user, profile)
    }

    /// Returns a clone of `user`'s profile.
    ///
    /// Clones are intentional: candidate profiles get serialized into a
    /// personalization job anyway, and cloning under a short read lock beats
    /// holding the shard across serialization.
    #[must_use]
    pub fn get(&self, user: UserId) -> Option<Profile> {
        self.shards[shard_of(user)].read().get(&user).cloned()
    }

    /// Runs `f` on the profile without cloning (read lock held during `f`).
    pub fn with<R>(&self, user: UserId, f: impl FnOnce(&Profile) -> R) -> Option<R> {
        self.shards[shard_of(user)].read().get(&user).map(f)
    }

    /// Whether the table has a profile for `user`.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.shards[shard_of(user)].read().contains_key(&user)
    }

    /// Total number of users with a profile.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no user has a profile.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Snapshot of all user ids (unordered).
    #[must_use]
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids = Vec::with_capacity(self.len());
        for shard in &self.shards {
            ids.extend(shard.read().keys().copied());
        }
        ids
    }

    /// Snapshot of the whole table (unordered), for offline back-ends that
    /// batch over every user (Offline-Ideal, Offline-CRec, Mahout-like).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(UserId, Profile)> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.read().iter().map(|(u, p)| (*u, p.clone())));
        }
        all
    }
}

/// Sharded, thread-safe map from user to current KNN approximation.
///
/// ```
/// use hyrec_core::{KnnTable, Neighborhood, UserId};
/// let table = KnnTable::new();
/// table.update(UserId(1), Neighborhood::new());
/// assert!(table.get(UserId(1)).is_some());
/// ```
#[derive(Debug)]
pub struct KnnTable {
    shards: Vec<RwLock<HashMap<UserId, Neighborhood>>>,
}

impl Default for KnnTable {
    fn default() -> Self {
        Self::new()
    }
}

impl KnnTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Stores the new KNN approximation sent back by a widget (Arrow 3 in
    /// Figure 1), replacing the previous one.
    pub fn update(&self, user: UserId, hood: Neighborhood) {
        self.shards[shard_of(user)].write().insert(user, hood);
    }

    /// Returns a clone of `user`'s current neighbourhood.
    #[must_use]
    pub fn get(&self, user: UserId) -> Option<Neighborhood> {
        self.shards[shard_of(user)].read().get(&user).cloned()
    }

    /// Runs `f` on the neighbourhood without cloning.
    pub fn with<R>(&self, user: UserId, f: impl FnOnce(&Neighborhood) -> R) -> Option<R> {
        self.shards[shard_of(user)].read().get(&user).map(f)
    }

    /// Whether the table has an entry for `user`.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.shards[shard_of(user)].read().contains_key(&user)
    }

    /// Number of users with a stored neighbourhood.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no neighbourhood is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Mean view similarity across all users with a non-empty neighbourhood —
    /// the paper's *average view similarity* metric (Figures 3–4).
    ///
    /// Summation runs in user-id order so the floating-point result is
    /// identical across runs (hash-map iteration order is per-instance
    /// random, and f64 addition is not associative).
    #[must_use]
    pub fn average_view_similarity(&self) -> f64 {
        let mut values: Vec<(UserId, f64)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            values.extend(
                shard
                    .read()
                    .iter()
                    .map(|(u, hood)| (*u, hood.view_similarity())),
            );
        }
        if values.is_empty() {
            return 0.0;
        }
        values.sort_unstable_by_key(|(u, _)| *u);
        values.iter().map(|(_, v)| v).sum::<f64>() / values.len() as f64
    }

    /// Snapshot of the whole table (unordered).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(UserId, Neighborhood)> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.read().iter().map(|(u, n)| (*u, n.clone())));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Neighbor;
    use std::sync::Arc;

    #[test]
    fn profile_record_and_get() {
        let t = ProfileTable::new();
        assert!(t.record(UserId(1), ItemId(5), Vote::Like));
        assert!(!t.record(UserId(1), ItemId(5), Vote::Like));
        assert!(t.contains(UserId(1)));
        assert_eq!(t.get(UserId(1)).unwrap().liked_len(), 1);
        assert_eq!(t.get(UserId(2)), None);
    }

    #[test]
    fn profile_with_avoids_clone() {
        let t = ProfileTable::new();
        t.record(UserId(3), ItemId(1), Vote::Like);
        let n = t.with(UserId(3), |p| p.liked_len());
        assert_eq!(n, Some(1));
        assert_eq!(t.with(UserId(99), |p| p.liked_len()), None);
    }

    #[test]
    fn snapshot_contains_everything() {
        let t = ProfileTable::new();
        for u in 0..100u32 {
            t.record(UserId(u), ItemId(u), Vote::Like);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.snapshot().len(), 100);
        assert_eq!(t.user_ids().len(), 100);
    }

    #[test]
    fn knn_update_and_view_similarity() {
        let t = KnnTable::new();
        t.update(
            UserId(1),
            Neighborhood::from_neighbors([Neighbor { user: UserId(2), similarity: 0.8 }]),
        );
        t.update(
            UserId(2),
            Neighborhood::from_neighbors([Neighbor { user: UserId(1), similarity: 0.4 }]),
        );
        assert!((t.average_view_similarity() - 0.6).abs() < 1e-12);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_tables() {
        let p = ProfileTable::new();
        let k = KnnTable::new();
        assert!(p.is_empty());
        assert!(k.is_empty());
        assert_eq!(k.average_view_similarity(), 0.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let table = Arc::new(ProfileTable::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    table.record(UserId(t * 1000 + i), ItemId(i), Vote::Like);
                    let _ = table.get(UserId(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.len(), 8 * 500);
    }

    #[test]
    fn shard_distribution_is_reasonable() {
        // Sequential uids must not all land in one shard.
        let mut counts = [0usize; SHARDS];
        for u in 0..10_000u32 {
            counts[shard_of(UserId(u))] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 10_000 / 8, "shard imbalance: max={max} min={min}");
    }
}
