//! The server's global data structures: the Profile Table and the KNN Table.
//!
//! Section 2.2/3.1 of the paper: "the server maintains two global data
//! structures: a Profile Table, recording the profiles of all the users in
//! the system, and the KNN Table containing the k nearest neighbors of each
//! user". Both tables sit on the request path of every online user, so they
//! are sharded and guarded by `parking_lot` RwLocks: reads (sampler pulling
//! candidate profiles) massively dominate writes (one profile update and one
//! KNN write-back per request).

use crate::fast_hash::FastHashMap;
use crate::id::UserId;
use crate::knn::Neighborhood;
use crate::profile::{Profile, Vote};
use crate::ItemId;
use parking_lot::RwLock;
use std::sync::Arc;

/// Number of lock shards. Power of two so the shard of a user is a mask away.
const SHARDS: usize = 64;

fn shard_of(user: UserId) -> usize {
    // Fibonacci hashing spreads sequential uids across shards.
    ((user.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (SHARDS - 1)
}

/// Groups `keys` by shard so a batch operation takes each shard lock once.
///
/// Returns, per touched shard, the list of *positions* into `keys` (so the
/// caller can write results back in input order).
fn group_by_shard(keys: &[UserId]) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
    for (pos, &user) in keys.iter().enumerate() {
        groups[shard_of(user)].push(pos);
    }
    groups
        .into_iter()
        .enumerate()
        .filter(|(_, positions)| !positions.is_empty())
        .collect()
}

/// Sharded, thread-safe map from user to profile.
///
/// Profiles are stored behind [`Arc`] so that readers — the sampler
/// assembling candidate sets, the job encoder serializing them — share the
/// stored allocation instead of deep-cloning item vectors. Writers use
/// clone-on-write ([`Arc::make_mut`]): a vote on a profile that is
/// concurrently referenced by an in-flight job clones once, then mutates in
/// place until the next job pins it again.
///
/// ```
/// use hyrec_core::{ItemId, Profile, ProfileTable, UserId, Vote};
/// let table = ProfileTable::new();
/// table.record(UserId(1), ItemId(10), Vote::Like);
/// assert_eq!(table.get(UserId(1)).unwrap().liked_len(), 1);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProfileTable {
    shards: Vec<RwLock<FastHashMap<UserId, Arc<Profile>>>>,
}

impl Default for ProfileTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FastHashMap::default()))
                .collect(),
        }
    }

    /// Records a vote into `user`'s profile, creating the profile if absent.
    ///
    /// Returns `true` when the vote changed the profile — the signal the
    /// orchestrator uses to decide whether a new KNN iteration is worthwhile.
    pub fn record(&self, user: UserId, item: ItemId, vote: Vote) -> bool {
        let mut shard = self.shards[shard_of(user)].write();
        Arc::make_mut(shard.entry(user).or_default()).record(item, vote)
    }

    /// Batched [`Self::record`]: ingests many votes while taking each
    /// touched shard's *write* lock exactly once.
    ///
    /// Results are in input order and semantically identical to calling
    /// `record` once per vote in order: votes for the same user always land
    /// in the same shard, and positions within a shard group preserve input
    /// order, so later votes see the effect of earlier ones. This is the
    /// ingestion half of request coalescing — a burst of `/rate/` traffic
    /// costs one lock acquisition per touched shard instead of one per vote.
    #[must_use]
    pub fn record_many(&self, votes: &[(UserId, ItemId, Vote)]) -> Vec<bool> {
        let keys: Vec<UserId> = votes.iter().map(|&(user, _, _)| user).collect();
        let mut out = vec![false; votes.len()];
        for (shard_idx, positions) in group_by_shard(&keys) {
            let mut shard = self.shards[shard_idx].write();
            for pos in positions {
                let (user, item, vote) = votes[pos];
                out[pos] = Arc::make_mut(shard.entry(user).or_default()).record(item, vote);
            }
        }
        out
    }

    /// Replaces `user`'s whole profile, returning the previous one if any.
    pub fn insert(&self, user: UserId, profile: impl Into<Arc<Profile>>) -> Option<Arc<Profile>> {
        let mut shard = self.shards[shard_of(user)].write();
        shard.insert(user, profile.into())
    }

    /// Returns a shared handle to `user`'s profile.
    ///
    /// This is an `Arc` bump, not a deep clone: candidate assembly, job
    /// construction and serialization all borrow the same stored allocation
    /// (the zero-copy hot path), and the short read lock is released before
    /// any of that work happens.
    #[must_use]
    pub fn get(&self, user: UserId) -> Option<Arc<Profile>> {
        self.shards[shard_of(user)].read().get(&user).cloned()
    }

    /// Batched [`Self::get`]: fetches many profiles while taking each
    /// touched shard lock exactly once.
    ///
    /// Results are in input order. This is the profile-fetch path of
    /// `HyRecServer::build_jobs`: for a batch of jobs the per-user lock
    /// traffic (one acquisition per candidate) collapses into at most
    /// one acquisition per shard.
    #[must_use]
    pub fn get_many(&self, users: &[UserId]) -> Vec<Option<Arc<Profile>>> {
        let mut out = vec![None; users.len()];
        for (shard_idx, positions) in group_by_shard(users) {
            let shard = self.shards[shard_idx].read();
            for pos in positions {
                out[pos] = shard.get(&users[pos]).cloned();
            }
        }
        out
    }

    /// Runs `f` on the profile without cloning (read lock held during `f`).
    pub fn with<R>(&self, user: UserId, f: impl FnOnce(&Profile) -> R) -> Option<R> {
        self.shards[shard_of(user)].read().get(&user).map(|p| f(p))
    }

    /// Whether the table has a profile for `user`.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.shards[shard_of(user)].read().contains_key(&user)
    }

    /// Total number of users with a profile.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no user has a profile.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Snapshot of all user ids (unordered).
    #[must_use]
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids = Vec::with_capacity(self.len());
        for shard in &self.shards {
            ids.extend(shard.read().keys().copied());
        }
        ids
    }

    /// Snapshot of the whole table (unordered), for offline back-ends that
    /// batch over every user (Offline-Ideal, Offline-CRec, Mahout-like).
    ///
    /// Shares the stored profiles (`Arc` bumps, no deep copies), so a
    /// snapshot of millions of users costs one pointer pair per user.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(UserId, Arc<Profile>)> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.read().iter().map(|(u, p)| (*u, Arc::clone(p))));
        }
        all
    }
}

/// Sharded, thread-safe map from user to current KNN approximation.
///
/// ```
/// use hyrec_core::{KnnTable, Neighborhood, UserId};
/// let table = KnnTable::new();
/// table.update(UserId(1), Neighborhood::new());
/// assert!(table.get(UserId(1)).is_some());
/// ```
#[derive(Debug)]
pub struct KnnTable {
    shards: Vec<RwLock<FastHashMap<UserId, Neighborhood>>>,
}

impl Default for KnnTable {
    fn default() -> Self {
        Self::new()
    }
}

impl KnnTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FastHashMap::default()))
                .collect(),
        }
    }

    /// Stores the new KNN approximation sent back by a widget (Arrow 3 in
    /// Figure 1), replacing the previous one.
    pub fn update(&self, user: UserId, hood: Neighborhood) {
        self.shards[shard_of(user)].write().insert(user, hood);
    }

    /// Batched [`Self::update`]: applies many write-backs while taking each
    /// touched shard's write lock exactly once — the write half of
    /// `HyRecServer::apply_updates`.
    pub fn update_many(&self, entries: Vec<(UserId, Neighborhood)>) {
        let keys: Vec<UserId> = entries.iter().map(|(u, _)| *u).collect();
        let mut slots: Vec<Option<Neighborhood>> =
            entries.into_iter().map(|(_, h)| Some(h)).collect();
        for (shard_idx, positions) in group_by_shard(&keys) {
            let mut shard = self.shards[shard_idx].write();
            for pos in positions {
                let hood = slots[pos].take().expect("each position visited once");
                shard.insert(keys[pos], hood);
            }
        }
    }

    /// Returns a clone of `user`'s current neighbourhood.
    #[must_use]
    pub fn get(&self, user: UserId) -> Option<Neighborhood> {
        self.shards[shard_of(user)].read().get(&user).cloned()
    }

    /// Batched [`Self::get`]: fetches many neighbourhoods while taking each
    /// touched shard lock exactly once. Results are in input order.
    #[must_use]
    pub fn get_many(&self, users: &[UserId]) -> Vec<Option<Neighborhood>> {
        self.map_many(users, Neighborhood::clone)
    }

    /// Batched [`Self::with`]: runs `f` on each present neighbourhood under
    /// its shard's read lock (taken once per touched shard), returning
    /// results in input order. The zero-clone read path of the batched
    /// sampler: extracting just the neighbour ids never copies a
    /// [`Neighborhood`].
    pub fn map_many<R>(
        &self,
        users: &[UserId],
        mut f: impl FnMut(&Neighborhood) -> R,
    ) -> Vec<Option<R>> {
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(users.len()).collect();
        for (shard_idx, positions) in group_by_shard(users) {
            let shard = self.shards[shard_idx].read();
            for pos in positions {
                out[pos] = shard.get(&users[pos]).map(&mut f);
            }
        }
        out
    }

    /// Runs `f` on the neighbourhood without cloning.
    pub fn with<R>(&self, user: UserId, f: impl FnOnce(&Neighborhood) -> R) -> Option<R> {
        self.shards[shard_of(user)].read().get(&user).map(f)
    }

    /// Whether the table has an entry for `user`.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.shards[shard_of(user)].read().contains_key(&user)
    }

    /// Number of users with a stored neighbourhood.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no neighbourhood is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Mean view similarity across all users with a non-empty neighbourhood —
    /// the paper's *average view similarity* metric (Figures 3–4).
    ///
    /// Summation runs in user-id order so the floating-point result is
    /// identical across runs (hash-map iteration order is per-instance
    /// random, and f64 addition is not associative).
    #[must_use]
    pub fn average_view_similarity(&self) -> f64 {
        let mut values: Vec<(UserId, f64)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            values.extend(
                shard
                    .read()
                    .iter()
                    .map(|(u, hood)| (*u, hood.view_similarity())),
            );
        }
        if values.is_empty() {
            return 0.0;
        }
        values.sort_unstable_by_key(|(u, _)| *u);
        values.iter().map(|(_, v)| v).sum::<f64>() / values.len() as f64
    }

    /// Snapshot of the whole table (unordered).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(UserId, Neighborhood)> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.read().iter().map(|(u, n)| (*u, n.clone())));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Neighbor;
    use std::sync::Arc;

    #[test]
    fn profile_record_and_get() {
        let t = ProfileTable::new();
        assert!(t.record(UserId(1), ItemId(5), Vote::Like));
        assert!(!t.record(UserId(1), ItemId(5), Vote::Like));
        assert!(t.contains(UserId(1)));
        assert_eq!(t.get(UserId(1)).unwrap().liked_len(), 1);
        assert_eq!(t.get(UserId(2)), None);
    }

    #[test]
    fn profile_with_avoids_clone() {
        let t = ProfileTable::new();
        t.record(UserId(3), ItemId(1), Vote::Like);
        let n = t.with(UserId(3), |p| p.liked_len());
        assert_eq!(n, Some(1));
        assert_eq!(t.with(UserId(99), |p| p.liked_len()), None);
    }

    #[test]
    fn snapshot_contains_everything() {
        let t = ProfileTable::new();
        for u in 0..100u32 {
            t.record(UserId(u), ItemId(u), Vote::Like);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.snapshot().len(), 100);
        assert_eq!(t.user_ids().len(), 100);
    }

    #[test]
    fn knn_update_and_view_similarity() {
        let t = KnnTable::new();
        t.update(
            UserId(1),
            Neighborhood::from_neighbors([Neighbor {
                user: UserId(2),
                similarity: 0.8,
            }]),
        );
        t.update(
            UserId(2),
            Neighborhood::from_neighbors([Neighbor {
                user: UserId(1),
                similarity: 0.4,
            }]),
        );
        assert!((t.average_view_similarity() - 0.6).abs() < 1e-12);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_tables() {
        let p = ProfileTable::new();
        let k = KnnTable::new();
        assert!(p.is_empty());
        assert!(k.is_empty());
        assert_eq!(k.average_view_similarity(), 0.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let table = Arc::new(ProfileTable::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    table.record(UserId(t * 1000 + i), ItemId(i), Vote::Like);
                    let _ = table.get(UserId(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.len(), 8 * 500);
    }

    #[test]
    fn get_returns_shared_handle_not_copy() {
        let t = ProfileTable::new();
        t.record(UserId(5), ItemId(1), Vote::Like);
        let a = t.get(UserId(5)).unwrap();
        let b = t.get(UserId(5)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "get must share the stored allocation");
        // A write through record() must not mutate the held handle.
        t.record(UserId(5), ItemId(2), Vote::Like);
        assert_eq!(a.liked_len(), 1);
        assert_eq!(t.get(UserId(5)).unwrap().liked_len(), 2);
    }

    #[test]
    fn get_many_matches_get_in_input_order() {
        let t = ProfileTable::new();
        for u in 0..200u32 {
            t.record(UserId(u), ItemId(u), Vote::Like);
        }
        let query: Vec<UserId> = [7u32, 500, 3, 3, 199, 0, 42]
            .into_iter()
            .map(UserId)
            .collect();
        let batch = t.get_many(&query);
        assert_eq!(batch.len(), query.len());
        for (user, got) in query.iter().zip(&batch) {
            assert_eq!(got.is_some(), t.get(*user).is_some(), "mismatch for {user}");
            if let Some(profile) = got {
                assert!(Arc::ptr_eq(profile, &t.get(*user).unwrap()));
            }
        }
    }

    #[test]
    fn record_many_matches_sequential_record() {
        let batched = ProfileTable::new();
        let sequential = ProfileTable::new();
        // A churn-heavy stream: repeats, flips, and cross-shard users.
        let votes: Vec<(UserId, ItemId, Vote)> = (0..500u32)
            .map(|i| {
                let user = UserId(i % 37);
                let item = ItemId(i % 11);
                let vote = if i % 3 == 0 {
                    Vote::Dislike
                } else {
                    Vote::Like
                };
                (user, item, vote)
            })
            .collect();
        let batch_flags = batched.record_many(&votes);
        let seq_flags: Vec<bool> = votes
            .iter()
            .map(|&(user, item, vote)| sequential.record(user, item, vote))
            .collect();
        assert_eq!(batch_flags, seq_flags);
        assert_eq!(batched.len(), sequential.len());
        for &(user, _, _) in &votes {
            assert_eq!(batched.get(user), sequential.get(user), "user {user}");
        }
        // Empty batch is a no-op.
        assert!(batched.record_many(&[]).is_empty());
    }

    #[test]
    fn knn_batch_ops_match_scalar_ops() {
        let t = KnnTable::new();
        let entries: Vec<(UserId, Neighborhood)> = (0..100u32)
            .map(|u| {
                (
                    UserId(u),
                    Neighborhood::from_neighbors([Neighbor {
                        user: UserId(u + 1),
                        similarity: f64::from(u) / 100.0,
                    }]),
                )
            })
            .collect();
        t.update_many(entries.clone());
        assert_eq!(t.len(), 100);
        let users: Vec<UserId> = entries.iter().map(|(u, _)| *u).collect();
        let fetched = t.get_many(&users);
        for ((user, hood), got) in entries.iter().zip(fetched) {
            assert_eq!(got.as_ref(), Some(hood), "mismatch for {user}");
        }
        assert_eq!(t.get_many(&[UserId(999)]), vec![None]);
    }

    #[test]
    fn shard_distribution_is_reasonable() {
        // Sequential uids must not all land in one shard.
        let mut counts = [0usize; SHARDS];
        for u in 0..10_000u32 {
            counts[shard_of(UserId(u))] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 10_000 / 8, "shard imbalance: max={max} min={min}");
    }
}
