//! Item recommendation — *Algorithm 2* of the paper: `α(S_u, P_u)`.
//!
//! Recommends to user `u` the `r` items most popular among the candidate
//! profiles that `u` has not been exposed to. This runs in the browser widget
//! in HyRec and on the front-end server in the CRec baseline.

use crate::id::ItemId;
use crate::profile::Profile;
use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One recommended item with the popularity evidence that ranked it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended item.
    pub item: ItemId,
    /// How many candidate profiles liked the item.
    pub popularity: u32,
}

/// *Algorithm 2*: the `r` most-popular unseen items across `candidates`.
///
/// Popularity counts how many candidate profiles *like* each item; items the
/// target profile was already exposed to (liked or disliked) are excluded.
/// Results are ranked by descending popularity; ties broken by ascending item
/// id so the output is deterministic.
///
/// ```
/// use hyrec_core::{recommend, ItemId, Profile};
/// let me = Profile::from_liked([1]);
/// let others = vec![
///     Profile::from_liked([1, 2, 3]),
///     Profile::from_liked([2, 3]),
///     Profile::from_liked([2]),
/// ];
/// let recs = recommend::most_popular(&me, others.iter(), 2);
/// assert_eq!(recs[0].item, ItemId(2)); // liked by 3 candidates
/// assert_eq!(recs[0].popularity, 3);
/// assert_eq!(recs[1].item, ItemId(3));
/// ```
pub fn most_popular<'a, I>(profile: &Profile, candidates: I, r: usize) -> Vec<Recommendation>
where
    I: IntoIterator<Item = &'a Profile>,
{
    let counts = popularity_counts(profile, candidates);
    rank(counts, r)
}

/// Computes the raw popularity table of Algorithm 2 (lines 1–8): unseen item
/// → number of candidate profiles that like it.
///
/// Exposed for callers that need the intermediate result (C-INTERMEDIATE),
/// e.g. to re-rank with a custom policy via [`rank_with`].
pub fn popularity_counts<'a, I>(profile: &Profile, candidates: I) -> HashMap<ItemId, u32>
where
    I: IntoIterator<Item = &'a Profile>,
{
    let mut popularity: HashMap<ItemId, u32> = HashMap::new();
    for candidate in candidates {
        for item in candidate.liked() {
            if !profile.contains(item) {
                *popularity.entry(item).or_insert(0) += 1;
            }
        }
    }
    popularity
}

/// Ranks a popularity table into the final top-`r` recommendation list
/// (Algorithm 2, line 9: `subList(r, sort(popularity))`).
#[must_use]
pub fn rank(counts: HashMap<ItemId, u32>, r: usize) -> Vec<Recommendation> {
    // Tie-break by ascending item id for determinism: fold the id into the
    // score so equal popularities order stably.
    rank_with(counts, r, |item, count| {
        f64::from(count) - f64::from(item.raw()) * 1e-12
    })
}

/// Ranks a popularity table with a caller-supplied scoring function — the
/// `setRecommendedItems()` customization hook of Table 1 in the paper.
///
/// `score(item, popularity)` returns the ranking key (higher = better).
pub fn rank_with<F>(counts: HashMap<ItemId, u32>, r: usize, score: F) -> Vec<Recommendation>
where
    F: Fn(ItemId, u32) -> f64,
{
    let mut top = TopK::new(r);
    for (item, count) in counts {
        top.push(
            Recommendation {
                item,
                popularity: count,
            },
            score(item, count),
        );
    }
    top.into_sorted_vec()
        .into_iter()
        .map(|(rec, _)| rec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Profile> {
        vec![
            Profile::from_liked([1u32, 2, 3]),
            Profile::from_liked([2u32, 3, 4]),
            Profile::from_liked([2u32, 5]),
        ]
    }

    #[test]
    fn excludes_exposed_items() {
        let me = Profile::from_votes([2u32], [3u32]); // liked 2, disliked 3
        let pool = candidates();
        let recs = most_popular(&me, pool.iter(), 10);
        assert!(recs.iter().all(|r| r.item != ItemId(2)));
        assert!(recs.iter().all(|r| r.item != ItemId(3)));
    }

    #[test]
    fn ranks_by_popularity() {
        let me = Profile::new();
        let pool = candidates();
        let recs = most_popular(&me, pool.iter(), 2);
        assert_eq!(recs[0].item, ItemId(2));
        assert_eq!(recs[0].popularity, 3);
        assert_eq!(recs[1].item, ItemId(3));
        assert_eq!(recs[1].popularity, 2);
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        let me = Profile::new();
        let pool = [Profile::from_liked([9u32, 4, 7])];
        let recs = most_popular(&me, pool.iter(), 3);
        assert_eq!(
            recs.iter().map(|r| r.item).collect::<Vec<_>>(),
            vec![ItemId(4), ItemId(7), ItemId(9)]
        );
    }

    #[test]
    fn empty_candidates_yield_no_recommendations() {
        let me = Profile::from_liked([1u32]);
        let recs = most_popular(&me, std::iter::empty(), 5);
        assert!(recs.is_empty());
    }

    #[test]
    fn r_zero_yields_nothing() {
        let me = Profile::new();
        let pool = candidates();
        assert!(most_popular(&me, pool.iter(), 0).is_empty());
    }

    #[test]
    fn custom_rank_hook_can_invert_order() {
        let me = Profile::new();
        let pool = candidates();
        let counts = popularity_counts(&me, pool.iter());
        // Serendipity-style hook: prefer *less* popular items.
        let recs = rank_with(counts, 1, |_, count| -f64::from(count));
        assert_eq!(recs[0].popularity, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_profile() -> impl Strategy<Value = Profile> {
            proptest::collection::vec(0u32..80, 0..25).prop_map(Profile::from_liked)
        }

        proptest! {
            #[test]
            fn never_recommends_seen_items(
                me in arb_profile(),
                pool in proptest::collection::vec(arb_profile(), 0..20),
                r in 0usize..15,
            ) {
                let recs = most_popular(&me, pool.iter(), r);
                prop_assert!(recs.len() <= r);
                for rec in &recs {
                    prop_assert!(!me.contains(rec.item));
                }
            }

            #[test]
            fn popularity_counts_are_exact(
                me in arb_profile(),
                pool in proptest::collection::vec(arb_profile(), 0..20),
            ) {
                let recs = most_popular(&me, pool.iter(), usize::MAX);
                for rec in &recs {
                    let expect = pool.iter().filter(|p| p.likes(rec.item)).count() as u32;
                    prop_assert_eq!(rec.popularity, expect);
                }
            }

            #[test]
            fn output_is_sorted_by_popularity(
                me in arb_profile(),
                pool in proptest::collection::vec(arb_profile(), 0..20),
                r in 1usize..10,
            ) {
                let recs = most_popular(&me, pool.iter(), r);
                prop_assert!(recs.windows(2).all(|w| w[0].popularity >= w[1].popularity));
            }
        }
    }
}
