//! Generic bounded top-k selection.
//!
//! Both Algorithm 1 (`subList(k, sort(similarity))`) and Algorithm 2
//! (`subList(r, sort(popularity))`) of the paper are "sort then take a
//! prefix" operations. [`TopK`] implements them with a bounded min-heap so a
//! client widget never materialises or sorts the full candidate score array —
//! `O(n log k)` instead of `O(n log n)`, which matters on the smartphone-class
//! devices of Section 5.6.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in a [`TopK`] collector: a value with its score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored<T> {
    score: f64,
    value: T,
}

// Min-heap ordering on score (ties broken by nothing: equal scores compare
// equal, so eviction among equals is arbitrary but bounded).
impl<T: PartialEq> Eq for Scored<T> {}

impl<T: PartialEq> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* on top.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// Bounded top-k collector over `(value, score)` pairs.
///
/// Keeps the `k` highest-scoring values seen so far. NaN scores are rejected
/// by [`TopK::push`] returning `false`.
///
/// ```
/// use hyrec_core::topk::TopK;
/// let mut top = TopK::new(2);
/// top.push("a", 0.1);
/// top.push("b", 0.9);
/// top.push("c", 0.5);
/// let ranked = top.into_sorted_vec();
/// assert_eq!(ranked.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec!["b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Scored<T>>,
}

impl<T: PartialEq> TopK<T> {
    /// Creates a collector that retains at most `k` values.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            // Capacity is a hint only: callers may pass k = usize::MAX to
            // mean "keep everything", which must not pre-allocate.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offers a value; returns `false` if it was rejected (not in the top-k,
    /// `k == 0`, or a NaN score).
    pub fn push(&mut self, value: T, score: f64) -> bool {
        if self.k == 0 || score.is_nan() {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Scored { score, value });
            return true;
        }
        // Heap top is the current minimum.
        if let Some(min) = self.heap.peek() {
            if score > min.score {
                self.heap.pop();
                self.heap.push(Scored { score, value });
                return true;
            }
        }
        false
    }

    /// Number of values currently retained (`<= k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no value has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best (lowest retained) score, if any.
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|s| s.score)
        }
    }

    /// Consumes the collector, returning `(value, score)` pairs sorted by
    /// descending score.
    #[must_use]
    pub fn into_sorted_vec(self) -> Vec<(T, f64)> {
        let mut items: Vec<(T, f64)> = self.heap.into_iter().map(|s| (s.value, s.score)).collect();
        items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut top = TopK::new(3);
        for (i, s) in [0.2, 0.9, 0.4, 0.7, 0.1].iter().enumerate() {
            top.push(i, *s);
        }
        let got: Vec<usize> = top.into_sorted_vec().into_iter().map(|(v, _)| v).collect();
        assert_eq!(got, vec![1, 3, 2]);
    }

    #[test]
    fn zero_k_rejects_everything() {
        let mut top = TopK::new(0);
        assert!(!top.push(1, 1.0));
        assert!(top.is_empty());
    }

    #[test]
    fn nan_scores_are_rejected() {
        let mut top = TopK::new(2);
        assert!(!top.push(1, f64::NAN));
        assert!(top.push(2, 0.5));
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut top = TopK::new(2);
        assert_eq!(top.threshold(), None);
        top.push(1, 0.3);
        assert_eq!(top.threshold(), None);
        top.push(2, 0.8);
        assert_eq!(top.threshold(), Some(0.3));
        top.push(3, 0.5);
        assert_eq!(top.threshold(), Some(0.5));
    }

    #[test]
    fn fewer_items_than_k() {
        let mut top = TopK::new(10);
        top.push("only", 0.4);
        let v = top.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, "only");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn matches_naive_sort(
                scores in proptest::collection::vec(0.0f64..1.0, 0..200),
                k in 1usize..20,
            ) {
                let mut top = TopK::new(k);
                for (i, s) in scores.iter().enumerate() {
                    top.push(i, *s);
                }
                let got: Vec<f64> = top.into_sorted_vec().into_iter().map(|(_, s)| s).collect();

                let mut naive = scores.clone();
                naive.sort_by(|a, b| b.partial_cmp(a).unwrap());
                naive.truncate(k);

                prop_assert_eq!(got.len(), naive.len());
                for (g, n) in got.iter().zip(naive.iter()) {
                    prop_assert!((g - n).abs() < 1e-12);
                }
            }

            #[test]
            fn never_exceeds_k(
                scores in proptest::collection::vec(0.0f64..1.0, 0..100),
                k in 0usize..10,
            ) {
                let mut top = TopK::new(k);
                for (i, s) in scores.iter().enumerate() {
                    top.push(i, *s);
                }
                prop_assert!(top.len() <= k);
            }
        }
    }
}
