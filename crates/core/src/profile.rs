//! User profiles: binary rating vectors over items.
//!
//! The paper (Section 2.1) models a profile as a set of `<user, item, vote>`
//! triples and — for simplicity — projects every rating to a binary
//! liked/disliked vote. Similarity and recommendation only ever consult the
//! *liked* set, so [`Profile`] stores liked items in a sorted `Vec<ItemId>`
//! (cheap set intersection, cache-friendly, compact on the wire) and keeps a
//! separate sorted list of disliked items so that "already exposed" items are
//! never re-recommended (Algorithm 2 filters on *exposure*, not on likes).

use crate::id::ItemId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A user's binary opinion about one item.
///
/// The MovieLens projection of the paper maps star ratings above the user's
/// personal mean to [`Vote::Like`] and the rest to [`Vote::Dislike`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// The user liked the item (a positive binary rating).
    Like,
    /// The user was exposed to the item but did not like it.
    Dislike,
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vote::Like => f.write_str("like"),
            Vote::Dislike => f.write_str("dislike"),
        }
    }
}

/// A shared, immutable handle to a [`Profile`] — the currency of the
/// zero-copy job pipeline. The profile table stores these; samplers, job
/// builders, encoders and offline back-ends pass them around by bumping the
/// reference count instead of copying item vectors.
pub type SharedProfile = std::sync::Arc<Profile>;

/// A user's binary rating profile `P_u`.
///
/// Stores the liked and disliked item sets as sorted, deduplicated vectors.
/// The *liked* set is what similarity metrics and popularity counting operate
/// on; the union of both sets is the user's *exposure* (used to filter items
/// the user has already seen out of recommendations).
///
/// ```
/// use hyrec_core::{ItemId, Profile, Vote};
///
/// let mut p = Profile::new();
/// p.record(ItemId(3), Vote::Like);
/// p.record(ItemId(1), Vote::Like);
/// p.record(ItemId(2), Vote::Dislike);
///
/// assert_eq!(p.liked_len(), 2);
/// assert_eq!(p.exposure_len(), 3);
/// assert!(p.likes(ItemId(1)));
/// assert!(!p.likes(ItemId(2)));
/// assert!(p.contains(ItemId(2)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Sorted, deduplicated liked items.
    liked: Vec<ItemId>,
    /// Sorted, deduplicated disliked items.
    disliked: Vec<ItemId>,
}

impl Profile {
    /// Creates an empty profile (a brand-new user).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from raw liked item ids; duplicates are merged.
    ///
    /// ```
    /// use hyrec_core::Profile;
    /// let p = Profile::from_liked([5, 1, 5, 3]);
    /// assert_eq!(p.liked_len(), 3);
    /// ```
    #[must_use]
    pub fn from_liked<I>(items: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ItemId>,
    {
        let mut liked: Vec<ItemId> = items.into_iter().map(Into::into).collect();
        liked.sort_unstable();
        liked.dedup();
        Self {
            liked,
            disliked: Vec::new(),
        }
    }

    /// Builds a profile from separate liked and disliked id collections.
    ///
    /// An item present in both collections is treated as liked (the like
    /// wins, mirroring "the most recent positive signal dominates").
    #[must_use]
    pub fn from_votes<L, D>(liked: L, disliked: D) -> Self
    where
        L: IntoIterator,
        L::Item: Into<ItemId>,
        D: IntoIterator,
        D::Item: Into<ItemId>,
    {
        let mut profile = Self::from_liked(liked);
        for item in disliked {
            let item = item.into();
            if !profile.likes(item) {
                if let Err(pos) = profile.disliked.binary_search(&item) {
                    profile.disliked.insert(pos, item);
                }
            }
        }
        profile
    }

    /// Records a vote, replacing any previous vote for the same item.
    ///
    /// Returns `true` if this vote changed the profile (new item, or the vote
    /// flipped), which is what triggers a new personalization job upstream.
    pub fn record(&mut self, item: ItemId, vote: Vote) -> bool {
        match vote {
            Vote::Like => {
                if let Ok(pos) = self.disliked.binary_search(&item) {
                    self.disliked.remove(pos);
                }
                match self.liked.binary_search(&item) {
                    Ok(_) => false,
                    Err(pos) => {
                        self.liked.insert(pos, item);
                        true
                    }
                }
            }
            Vote::Dislike => {
                if let Ok(pos) = self.liked.binary_search(&item) {
                    self.liked.remove(pos);
                    // Flipping like -> dislike changes the profile.
                    if let Err(ins) = self.disliked.binary_search(&item) {
                        self.disliked.insert(ins, item);
                    }
                    return true;
                }
                match self.disliked.binary_search(&item) {
                    Ok(_) => false,
                    Err(pos) => {
                        self.disliked.insert(pos, item);
                        true
                    }
                }
            }
        }
    }

    /// Whether the user liked `item`.
    #[must_use]
    pub fn likes(&self, item: ItemId) -> bool {
        self.liked.binary_search(&item).is_ok()
    }

    /// Whether the user has been exposed to `item` (liked *or* disliked).
    ///
    /// Algorithm 2 of the paper filters candidate items with "if `P_u` does
    /// not contain `iid`", i.e. on exposure.
    #[must_use]
    pub fn contains(&self, item: ItemId) -> bool {
        self.likes(item) || self.disliked.binary_search(&item).is_ok()
    }

    /// Number of liked items (the L2-relevant support of the binary vector).
    #[must_use]
    pub fn liked_len(&self) -> usize {
        self.liked.len()
    }

    /// Number of items the user has been exposed to.
    #[must_use]
    pub fn exposure_len(&self) -> usize {
        self.liked.len() + self.disliked.len()
    }

    /// True when the user has no recorded opinion at all (cold start).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.liked.is_empty() && self.disliked.is_empty()
    }

    /// Iterates over liked items in ascending id order.
    pub fn liked(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.liked.iter().copied()
    }

    /// Iterates over disliked items in ascending id order.
    pub fn disliked(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.disliked.iter().copied()
    }

    /// Returns the liked items as a sorted slice (for zero-copy intersection).
    #[must_use]
    pub fn liked_slice(&self) -> &[ItemId] {
        &self.liked
    }

    /// Size of the intersection of the liked sets of `self` and `other`.
    ///
    /// Linear two-pointer merge over the sorted vectors: `O(|a| + |b|)`.
    ///
    /// ```
    /// use hyrec_core::Profile;
    /// let a = Profile::from_liked([1, 2, 3]);
    /// let b = Profile::from_liked([2, 3, 4]);
    /// assert_eq!(a.liked_intersection_len(&b), 2);
    /// ```
    #[must_use]
    pub fn liked_intersection_len(&self, other: &Profile) -> usize {
        intersection_len(&self.liked, &other.liked)
    }

    /// Truncates the profile to the `max` most recent liked items by id order.
    ///
    /// Content providers can bound profile size (Section 6: "constrain
    /// profiles by selecting only specific subsets of items"). Items are kept
    /// from the *largest* ids downward because the synthetic traces allocate
    /// ids in arrival order, so large ids are the most recent items.
    pub fn truncate_liked(&mut self, max: usize) {
        if self.liked.len() > max {
            let cut = self.liked.len() - max;
            self.liked.drain(..cut);
        }
    }
}

impl FromIterator<ItemId> for Profile {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Profile::from_liked(iter)
    }
}

impl Extend<ItemId> for Profile {
    fn extend<T: IntoIterator<Item = ItemId>>(&mut self, iter: T) {
        for item in iter {
            self.record(item, Vote::Like);
        }
    }
}

/// Length of the intersection of two sorted, deduplicated id slices.
pub(crate) fn intersection_len(a: &[ItemId], b: &[ItemId]) -> usize {
    // Galloping would help for very asymmetric sizes but profiles are small
    // (tens to hundreds of items), so the simple merge wins in practice.
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_deduplicates_and_sorts() {
        let mut p = Profile::new();
        assert!(p.record(ItemId(5), Vote::Like));
        assert!(p.record(ItemId(1), Vote::Like));
        assert!(!p.record(ItemId(5), Vote::Like));
        assert_eq!(p.liked().collect::<Vec<_>>(), vec![ItemId(1), ItemId(5)]);
    }

    #[test]
    fn dislike_then_like_flips_vote() {
        let mut p = Profile::new();
        assert!(p.record(ItemId(9), Vote::Dislike));
        assert!(!p.likes(ItemId(9)));
        assert!(p.contains(ItemId(9)));
        assert!(p.record(ItemId(9), Vote::Like));
        assert!(p.likes(ItemId(9)));
        assert_eq!(p.exposure_len(), 1);
    }

    #[test]
    fn like_then_dislike_flips_vote() {
        let mut p = Profile::new();
        p.record(ItemId(9), Vote::Like);
        assert!(p.record(ItemId(9), Vote::Dislike));
        assert!(!p.likes(ItemId(9)));
        assert!(p.contains(ItemId(9)));
        assert_eq!(p.exposure_len(), 1);
    }

    #[test]
    fn duplicate_dislike_is_not_a_change() {
        let mut p = Profile::new();
        assert!(p.record(ItemId(2), Vote::Dislike));
        assert!(!p.record(ItemId(2), Vote::Dislike));
    }

    #[test]
    fn from_votes_like_wins_conflicts() {
        let p = Profile::from_votes([1u32, 2], [2u32, 3]);
        assert!(p.likes(ItemId(2)));
        assert!(!p.likes(ItemId(3)));
        assert!(p.contains(ItemId(3)));
        assert_eq!(p.exposure_len(), 3);
    }

    #[test]
    fn intersection_len_basic() {
        let a = Profile::from_liked([1u32, 3, 5, 7]);
        let b = Profile::from_liked([3u32, 4, 5, 6]);
        assert_eq!(a.liked_intersection_len(&b), 2);
        assert_eq!(b.liked_intersection_len(&a), 2);
        let empty = Profile::new();
        assert_eq!(a.liked_intersection_len(&empty), 0);
    }

    #[test]
    fn truncate_keeps_most_recent_ids() {
        let mut p = Profile::from_liked([1u32, 2, 3, 4, 5]);
        p.truncate_liked(2);
        assert_eq!(p.liked().collect::<Vec<_>>(), vec![ItemId(4), ItemId(5)]);
        // Truncating to a larger bound is a no-op.
        p.truncate_liked(10);
        assert_eq!(p.liked_len(), 2);
    }

    #[test]
    fn collect_and_extend() {
        let p: Profile = [ItemId(2), ItemId(1), ItemId(2)].into_iter().collect();
        assert_eq!(p.liked_len(), 2);
        let mut q = Profile::new();
        q.extend([ItemId(7), ItemId(8)]);
        assert_eq!(q.liked_len(), 2);
    }
}
