//! Error type for core operations.

use crate::id::UserId;
use std::error::Error;
use std::fmt;

/// Errors produced by core-level operations.
///
/// Kept deliberately small: most core functions are total over their inputs;
/// errors only arise at lookup boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The referenced user has no profile in the table.
    UnknownUser(UserId),
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownUser(user) => write!(f, "unknown user {user}"),
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::UnknownUser(UserId(7));
        assert_eq!(e.to_string(), "unknown user u7");
        let e = CoreError::InvalidParameter {
            name: "k",
            reason: "must be positive",
        };
        assert!(e.to_string().contains('k'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CoreError>();
    }
}
