//! KNN selection — *Algorithm 1* of the paper: `γ(P_u, S_u)`.
//!
//! Given a user's profile and a candidate set, compute the similarity with
//! every candidate and retain the `k` most similar users. In HyRec this runs
//! inside the browser widget; in the centralized baselines it runs on the
//! server. The same function serves both, which is exactly the paper's point
//! about the locality of user-based CF computations.

use crate::id::UserId;
use crate::profile::Profile;
use crate::similarity::Similarity;
use crate::topk::TopK;
use serde::{Deserialize, Serialize};

/// One selected neighbour: a user and the similarity that ranked them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighbour's (pseudonymous) user id.
    pub user: UserId,
    /// Similarity between the owner's profile and this neighbour's profile.
    pub similarity: f64,
}

/// A user's current k-nearest-neighbour approximation `N_u`, ranked by
/// descending similarity.
///
/// ```
/// use hyrec_core::{knn, Cosine, Profile, UserId};
/// let me = Profile::from_liked([1, 2, 3]);
/// let others = vec![
///     (UserId(7), Profile::from_liked([1, 2, 3])),
///     (UserId(8), Profile::from_liked([3])),
///     (UserId(9), Profile::from_liked([50])),
/// ];
/// let hood = knn::select(&me, others.iter().map(|(u, p)| (*u, p)), 2, &Cosine);
/// assert_eq!(hood.len(), 2);
/// assert_eq!(hood.best().unwrap().user, UserId(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Neighborhood {
    neighbors: Vec<Neighbor>,
}

impl Neighborhood {
    /// Creates an empty neighbourhood (a brand-new user's `N_u`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a neighbourhood from pre-ranked neighbours.
    ///
    /// The input is re-sorted by descending similarity so the invariant holds
    /// regardless of caller ordering; duplicate users keep their best score.
    #[must_use]
    pub fn from_neighbors<I: IntoIterator<Item = Neighbor>>(neighbors: I) -> Self {
        let mut neighbors: Vec<Neighbor> = neighbors.into_iter().collect();
        neighbors.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut seen = std::collections::HashSet::new();
        neighbors.retain(|n| seen.insert(n.user));
        Self { neighbors }
    }

    /// Number of neighbours currently held (`<= k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True for a user with no neighbours yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The most similar neighbour, if any.
    #[must_use]
    pub fn best(&self) -> Option<&Neighbor> {
        self.neighbors.first()
    }

    /// Iterates neighbours in descending similarity order.
    pub fn iter(&self) -> impl Iterator<Item = &Neighbor> {
        self.neighbors.iter()
    }

    /// Iterates just the neighbour ids, best first.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.neighbors.iter().map(|n| n.user)
    }

    /// Whether `user` is currently a neighbour.
    #[must_use]
    pub fn contains(&self, user: UserId) -> bool {
        self.neighbors.iter().any(|n| n.user == user)
    }

    /// Mean similarity of the neighbourhood — the paper's *view similarity*
    /// for one user (Section 5.1, Metrics). Empty neighbourhoods score `0.0`.
    #[must_use]
    pub fn view_similarity(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.neighbors.iter().map(|n| n.similarity).sum();
        sum / self.neighbors.len() as f64
    }

    /// Consumes the neighbourhood, returning the ranked neighbour list.
    #[must_use]
    pub fn into_vec(self) -> Vec<Neighbor> {
        self.neighbors
    }
}

impl IntoIterator for Neighborhood {
    type Item = Neighbor;
    type IntoIter = std::vec::IntoIter<Neighbor>;

    fn into_iter(self) -> Self::IntoIter {
        self.neighbors.into_iter()
    }
}

impl<'a> IntoIterator for &'a Neighborhood {
    type Item = &'a Neighbor;
    type IntoIter = std::slice::Iter<'a, Neighbor>;

    fn into_iter(self) -> Self::IntoIter {
        self.neighbors.iter()
    }
}

impl FromIterator<Neighbor> for Neighborhood {
    fn from_iter<T: IntoIterator<Item = Neighbor>>(iter: T) -> Self {
        Neighborhood::from_neighbors(iter)
    }
}

/// *Algorithm 1*: selects the `k` candidates most similar to `profile`.
///
/// `candidates` yields `(user, profile)` pairs — the candidate set `S_u`
/// assembled by the server's sampler. Candidates with zero similarity are
/// still eligible (a new user must acquire *some* neighbours for the random
/// walk to bootstrap), exactly as in the paper where the initial KNN is
/// random.
///
/// Duplicate users in the iterator are scored twice but deduplicated in the
/// result (first-retained wins; scores are equal anyway).
pub fn select<'a, I>(
    profile: &Profile,
    candidates: I,
    k: usize,
    metric: &dyn Similarity,
) -> Neighborhood
where
    I: IntoIterator<Item = (UserId, &'a Profile)>,
{
    let mut top = TopK::new(k);
    for (user, candidate) in candidates {
        let score = metric.score(profile, candidate);
        top.push(user, score);
    }
    let mut seen = std::collections::HashSet::new();
    let neighbors = top
        .into_sorted_vec()
        .into_iter()
        .filter(|(user, _)| seen.insert(*user))
        .map(|(user, similarity)| Neighbor { user, similarity })
        .collect();
    Neighborhood { neighbors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Cosine;

    fn pool() -> Vec<(UserId, Profile)> {
        vec![
            (UserId(1), Profile::from_liked([1u32, 2, 3, 4])),
            (UserId(2), Profile::from_liked([1u32, 2])),
            (UserId(3), Profile::from_liked([100u32])),
            (UserId(4), Profile::from_liked([1u32, 2, 3])),
        ]
    }

    #[test]
    fn select_ranks_by_similarity() {
        let me = Profile::from_liked([1u32, 2, 3, 4]);
        let pool = pool();
        let hood = select(&me, pool.iter().map(|(u, p)| (*u, p)), 3, &Cosine);
        let users: Vec<UserId> = hood.users().collect();
        assert_eq!(users[0], UserId(1)); // identical profile first
        assert_eq!(users.len(), 3);
        assert!(!hood.contains(UserId(3)) || users[2] == UserId(3));
        // Similarities are non-increasing.
        let sims: Vec<f64> = hood.iter().map(|n| n.similarity).collect();
        assert!(sims.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn select_with_k_larger_than_pool() {
        let me = Profile::from_liked([1u32]);
        let pool = pool();
        let hood = select(&me, pool.iter().map(|(u, p)| (*u, p)), 100, &Cosine);
        assert_eq!(hood.len(), 4);
    }

    #[test]
    fn select_from_empty_candidates() {
        let me = Profile::from_liked([1u32]);
        let hood = select(&me, std::iter::empty(), 5, &Cosine);
        assert!(hood.is_empty());
        assert_eq!(hood.view_similarity(), 0.0);
        assert!(hood.best().is_none());
    }

    #[test]
    fn zero_similarity_candidates_are_still_selected() {
        // Bootstrap: a new user has nothing in common with anyone yet but
        // must still acquire neighbours for the gossip walk to start.
        let me = Profile::from_liked([999u32]);
        let pool = pool();
        let hood = select(&me, pool.iter().map(|(u, p)| (*u, p)), 2, &Cosine);
        assert_eq!(hood.len(), 2);
        assert_eq!(hood.view_similarity(), 0.0);
    }

    #[test]
    fn duplicate_candidates_are_deduplicated() {
        let me = Profile::from_liked([1u32, 2]);
        let p = Profile::from_liked([1u32, 2]);
        let dup = vec![(UserId(5), &p), (UserId(5), &p), (UserId(5), &p)];
        let hood = select(&me, dup, 3, &Cosine);
        assert_eq!(hood.len(), 1);
    }

    #[test]
    fn view_similarity_is_mean() {
        let hood = Neighborhood::from_neighbors([
            Neighbor {
                user: UserId(1),
                similarity: 1.0,
            },
            Neighbor {
                user: UserId(2),
                similarity: 0.5,
            },
        ]);
        assert!((hood.view_similarity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_neighbors_sorts_and_dedups() {
        let hood = Neighborhood::from_neighbors([
            Neighbor {
                user: UserId(1),
                similarity: 0.2,
            },
            Neighbor {
                user: UserId(2),
                similarity: 0.9,
            },
            Neighbor {
                user: UserId(1),
                similarity: 0.8,
            },
        ]);
        assert_eq!(hood.len(), 2);
        assert_eq!(hood.best().unwrap().user, UserId(2));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_profile() -> impl Strategy<Value = Profile> {
            proptest::collection::vec(0u32..200, 0..40).prop_map(Profile::from_liked)
        }

        proptest! {
            #[test]
            fn select_matches_naive(me in arb_profile(),
                                    pool in proptest::collection::vec(arb_profile(), 0..40),
                                    k in 1usize..10) {
                let pool: Vec<(UserId, Profile)> = pool
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| (UserId(i as u32), p))
                    .collect();
                let hood = select(&me, pool.iter().map(|(u, p)| (*u, p)), k, &Cosine);

                // Naive: sort all by similarity descending, take k.
                let mut naive: Vec<(UserId, f64)> = pool
                    .iter()
                    .map(|(u, p)| (*u, Cosine.score(&me, p)))
                    .collect();
                naive.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                naive.truncate(k);

                prop_assert_eq!(hood.len(), naive.len());
                // Score multiset must match (user identity may differ on ties).
                let got: Vec<f64> = hood.iter().map(|n| n.similarity).collect();
                for (g, (_, n)) in got.iter().zip(naive.iter()) {
                    prop_assert!((g - n).abs() < 1e-12);
                }
            }

            #[test]
            fn neighborhood_never_exceeds_k(me in arb_profile(),
                                            pool in proptest::collection::vec(arb_profile(), 0..30),
                                            k in 0usize..8) {
                let pool: Vec<(UserId, Profile)> = pool
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| (UserId(i as u32), p))
                    .collect();
                let hood = select(&me, pool.iter().map(|(u, p)| (*u, p)), k, &Cosine);
                prop_assert!(hood.len() <= k);
            }
        }
    }
}
