//! Widget-kernel micro-benches: the computations HyRec offloads to
//! browsers (Figures 12–13's primitive costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyrec_client::Widget;
use hyrec_core::{knn, recommend, Cosine, Jaccard, Overlap, Profile, Similarity};
use hyrec_sim::device::synthetic_job;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.sample_size(30);
    for ps in [10usize, 100, 500] {
        let a = Profile::from_liked((0..ps as u32).map(|i| i * 3).collect::<Vec<_>>());
        let b = Profile::from_liked((0..ps as u32).map(|i| i * 2 + 1).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("cosine", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(Cosine.score(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("jaccard", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(Jaccard.score(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("overlap", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(Overlap.score(&a, &b)));
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("widget-kernel");
    group.sample_size(20);
    // The paper's worst-case: |S_u| = 2k + k^2 candidates.
    for ps in [10usize, 100, 500] {
        let job = synthetic_job(ps, 10, hyrec_core::candidate_set_bound(10));
        group.bench_with_input(BenchmarkId::new("algorithm1-knn", ps), &ps, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(knn::select(
                    &job.profile,
                    job.candidates.pairs(),
                    job.k,
                    &Cosine,
                ))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("algorithm2-recommend", ps),
            &ps,
            |bench, _| {
                bench.iter(|| {
                    std::hint::black_box(recommend::most_popular(
                        &job.profile,
                        job.candidates.profiles(),
                        job.r,
                    ))
                });
            },
        );
        let widget = Widget::new();
        group.bench_with_input(BenchmarkId::new("full-widget-run", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(widget.run_job(&job)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_algorithms);
criterion_main!(benches);
