//! Offline back-end micro-benches — the Figure 7 comparison at fixed small
//! scale, one measurement per architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_server::offline::{CRecBackend, ExhaustiveBackend, MahoutLikeBackend, OfflineBackend};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline-knn");
    group.sample_size(10);
    let profiles = TraceGenerator::new(DatasetSpec::ML1.scaled(0.2), 3)
        .generate()
        .binarize()
        .final_profiles();
    let n = profiles.len();
    let k = 10;

    group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |bench, _| {
        let backend = ExhaustiveBackend::default();
        bench.iter(|| std::hint::black_box(backend.compute(&profiles, k)));
    });
    group.bench_with_input(BenchmarkId::new("mahout-single", n), &n, |bench, _| {
        let backend = MahoutLikeBackend::single();
        bench.iter(|| std::hint::black_box(backend.compute(&profiles, k)));
    });
    group.bench_with_input(BenchmarkId::new("clus-mahout", n), &n, |bench, _| {
        let backend = MahoutLikeBackend::cluster();
        bench.iter(|| std::hint::black_box(backend.compute(&profiles, k)));
    });
    group.bench_with_input(BenchmarkId::new("crec-sampling", n), &n, |bench, _| {
        let backend = CRecBackend::default();
        bench.iter(|| std::hint::black_box(backend.compute(&profiles, k)));
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
