//! Front-end service-time micro-benches — the per-request work compared in
//! Figures 8 and 9: HyRec's orchestration vs CRec's server-side
//! recommendation vs the online-ideal full scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyrec_core::{recommend, Cosine, UserId};
use hyrec_server::OnlineIdeal;
use hyrec_sim::load::{build_converged_population, build_population, warm_cache};

fn bench_frontends(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    for ps in [100usize, 300] {
        let population = build_population(1_000, ps, 10, 42);
        // Warm the fragment cache (batched job build).
        warm_cache(&population, 64);

        group.bench_with_input(BenchmarkId::new("hyrec-job-build", ps), &ps, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let user = population.users[i % population.users.len()];
                i += 1;
                std::hint::black_box(population.server.build_job(user))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("hyrec-job-build+encode", ps),
            &ps,
            |bench, _| {
                let mut i = 0usize;
                bench.iter(|| {
                    let user = population.users[i % population.users.len()];
                    i += 1;
                    let job = population.server.build_job(user);
                    std::hint::black_box(population.encoder.encode(&job))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("crec-recommend", ps), &ps, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let user = population.users[i % population.users.len()];
                i += 1;
                let job = population.server.build_job(user);
                std::hint::black_box(recommend::most_popular(
                    &job.profile,
                    job.candidates.profiles(),
                    job.r,
                ))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("online-ideal-recommend", ps),
            &ps,
            |bench, _| {
                let ideal = OnlineIdeal::new(population.server.profiles(), Cosine, 10);
                let mut i = 0usize;
                bench.iter(|| {
                    let user = population.users[i % population.users.len()];
                    i += 1;
                    std::hint::black_box(ideal.recommend(user, 10))
                });
            },
        );
    }
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    // The acceptance bench for the batched pipeline: on a 10k-user
    // population, building a coalesced batch of jobs through `build_jobs`
    // must beat the same work done as N sequential `build_job` calls
    // (shard locks, RNG lock and anonymizer taken per batch, profile and
    // KNN reads staged through `get_many`).
    let mut group = c.benchmark_group("batched");
    group.sample_size(15);
    let population = build_population(10_000, 100, 10, 11);
    const BATCH: usize = 256;
    let n = population.users.len();

    group.bench_with_input(
        BenchmarkId::new("sequential-build_job", BATCH),
        &BATCH,
        |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let jobs: Vec<_> = (0..BATCH)
                    .map(|j| population.server.build_job(population.users[(i + j) % n]))
                    .collect();
                i = (i + BATCH) % n;
                std::hint::black_box(jobs)
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("build_jobs", BATCH), &BATCH, |bench, _| {
        let mut i = 0usize;
        bench.iter(|| {
            let users: Vec<UserId> = (0..BATCH).map(|j| population.users[(i + j) % n]).collect();
            i = (i + BATCH) % n;
            std::hint::black_box(population.server.build_jobs(&users))
        });
    });

    // Steady state: a converged KNN table, where a batch's candidate pool
    // collapses onto shared communities and the batched sampler fetches
    // each neighbourhood and profile once per batch instead of once per
    // requester.
    let converged = build_converged_population(10_000, 100, 10, 12);
    let n_converged = converged.users.len();
    group.bench_with_input(
        BenchmarkId::new("converged-sequential-build_job", BATCH),
        &BATCH,
        |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let jobs: Vec<_> = (0..BATCH)
                    .map(|j| {
                        converged
                            .server
                            .build_job(converged.users[(i + j) % n_converged])
                    })
                    .collect();
                i = (i + BATCH) % n_converged;
                std::hint::black_box(jobs)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("converged-build_jobs", BATCH),
        &BATCH,
        |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let users: Vec<UserId> = (0..BATCH)
                    .map(|j| converged.users[(i + j) % n_converged])
                    .collect();
                i = (i + BATCH) % n_converged;
                std::hint::black_box(converged.server.build_jobs(&users))
            });
        },
    );
    group.finish();
}

fn bench_batched_encoder(c: &mut Criterion) {
    // The coalescing front-end's serialization path: one encode_jobs call
    // over a warm fragment cache vs the same jobs encoded one by one. The
    // batch variant resolves the cache under one lock round-trip and reuses
    // one scratch buffer across prefixes and misses.
    let mut group = c.benchmark_group("encoder");
    group.sample_size(15);
    let population = build_population(10_000, 100, 10, 11);
    const BATCH: usize = 256;
    let users: Vec<UserId> = population.users[..BATCH].to_vec();
    let jobs = population.server.build_jobs(&users);
    let _ = population.encoder.encode_jobs(&jobs); // warm the cache

    group.bench_with_input(
        BenchmarkId::new("scalar-encode", BATCH),
        &BATCH,
        |bench, _| {
            bench.iter(|| {
                let bodies: Vec<_> = jobs
                    .iter()
                    .map(|job| population.encoder.encode(job))
                    .collect();
                std::hint::black_box(bodies)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("encode_jobs", BATCH),
        &BATCH,
        |bench, _| {
            bench.iter(|| std::hint::black_box(population.encoder.encode_jobs(&jobs)));
        },
    );
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler");
    group.sample_size(30);
    for k in [10usize, 20] {
        let population = build_population(2_000, 100, k, 7);
        group.bench_with_input(BenchmarkId::new("candidate-set", k), &k, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let user = population.users[i % population.users.len()];
                i += 1;
                std::hint::black_box(population.server.build_job(UserId(user.0)))
            });
        });
    }
    group.finish();
}

fn bench_http_framing(c: &mut Criterion) {
    // The reactor's per-request framing cost: `Request::try_parse` over a
    // rolling buffer holding 1–16 pipelined Table 1 calls — the hot loop
    // every kept-alive connection runs on every read.
    let mut group = c.benchmark_group("http-framing");
    group.sample_size(30);
    for pipeline in [1usize, 4, 16] {
        let mut wire = Vec::new();
        for uid in 0..pipeline {
            wire.extend_from_slice(
                format!(
                    "GET /online/?uid={uid} HTTP/1.1\r\nhost: hyrec\r\n\
                     connection: keep-alive\r\naccept-encoding: gzip\r\n\r\n"
                )
                .as_bytes(),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("try_parse-pipelined", pipeline),
            &pipeline,
            |bench, _| {
                bench.iter(|| {
                    let mut offset = 0usize;
                    let mut framed = 0usize;
                    while let Some((request, consumed)) =
                        hyrec_http::Request::try_parse(&wire[offset..]).expect("valid frames")
                    {
                        offset += consumed;
                        framed += 1;
                        std::hint::black_box(request);
                    }
                    assert_eq!(framed, pipeline);
                    std::hint::black_box(offset)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frontends,
    bench_batched,
    bench_batched_encoder,
    bench_sampler,
    bench_http_framing
);
criterion_main!(benches);
