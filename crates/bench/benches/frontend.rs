//! Front-end service-time micro-benches — the per-request work compared in
//! Figures 8 and 9: HyRec's orchestration vs CRec's server-side
//! recommendation vs the online-ideal full scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyrec_core::{recommend, Cosine, UserId};
use hyrec_server::OnlineIdeal;
use hyrec_sim::load::build_population;

fn bench_frontends(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    for ps in [100usize, 300] {
        let population = build_population(1_000, ps, 10, 42);
        // Warm the fragment cache.
        for &user in population.users.iter().take(64) {
            let job = population.server.build_job(user);
            let _ = population.encoder.encode(&job);
        }

        group.bench_with_input(BenchmarkId::new("hyrec-job-build", ps), &ps, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let user = population.users[i % population.users.len()];
                i += 1;
                std::hint::black_box(population.server.build_job(user))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("hyrec-job-build+encode", ps),
            &ps,
            |bench, _| {
                let mut i = 0usize;
                bench.iter(|| {
                    let user = population.users[i % population.users.len()];
                    i += 1;
                    let job = population.server.build_job(user);
                    std::hint::black_box(population.encoder.encode(&job))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("crec-recommend", ps),
            &ps,
            |bench, _| {
                let mut i = 0usize;
                bench.iter(|| {
                    let user = population.users[i % population.users.len()];
                    i += 1;
                    let job = population.server.build_job(user);
                    std::hint::black_box(recommend::most_popular(
                        &job.profile,
                        job.candidates.profiles(),
                        job.r,
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("online-ideal-recommend", ps),
            &ps,
            |bench, _| {
                let ideal = OnlineIdeal::new(population.server.profiles(), Cosine, 10);
                let mut i = 0usize;
                bench.iter(|| {
                    let user = population.users[i % population.users.len()];
                    i += 1;
                    std::hint::black_box(ideal.recommend(user, 10))
                });
            },
        );
    }
    group.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler");
    group.sample_size(30);
    for k in [10usize, 20] {
        let population = build_population(2_000, 100, k, 7);
        group.bench_with_input(BenchmarkId::new("candidate-set", k), &k, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                let user = population.users[i % population.users.len()];
                i += 1;
                std::hint::black_box(population.server.build_job(UserId(user.0)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontends, bench_sampler);
criterion_main!(benches);
