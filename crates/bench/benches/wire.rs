//! Wire-substrate micro-benches: JSON codec and DEFLATE/gzip throughput
//! (the per-message costs behind Figures 8 and 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrec_sim::device::synthetic_job;
use hyrec_wire::deflate::lz77::Effort;
use hyrec_wire::json::JsonValue;
use hyrec_wire::{gzip, PersonalizationJob};

fn job_bytes(ps: usize) -> Vec<u8> {
    synthetic_job(ps, 10, hyrec_core::candidate_set_bound(10))
        .to_json()
        .to_bytes()
}

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("json");
    group.sample_size(20);
    for ps in [10usize, 100, 300] {
        let job = synthetic_job(ps, 10, hyrec_core::candidate_set_bound(10));
        let raw = job_bytes(ps);
        let text = String::from_utf8(raw.clone()).unwrap();
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_with_input(BenchmarkId::new("serialize", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(job.to_json().to_bytes()));
        });
        group.bench_with_input(BenchmarkId::new("parse", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(JsonValue::parse(&text).unwrap()));
        });
    }
    group.finish();
}

fn bench_gzip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gzip");
    group.sample_size(20);
    for ps in [100usize, 300] {
        let raw = job_bytes(ps);
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_with_input(BenchmarkId::new("compress-fast", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(gzip::compress_with(&raw, Effort::FAST)));
        });
        group.bench_with_input(BenchmarkId::new("compress-default", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(gzip::compress_with(&raw, Effort::DEFAULT)));
        });
        let packed = gzip::compress(&raw);
        group.bench_with_input(BenchmarkId::new("decompress", ps), &ps, |bench, _| {
            bench.iter(|| std::hint::black_box(gzip::decompress(&packed).unwrap()));
        });
    }
    group.finish();
}

fn bench_messages(c: &mut Criterion) {
    let mut group = c.benchmark_group("messages");
    group.sample_size(20);
    let job = synthetic_job(100, 10, hyrec_core::candidate_set_bound(10));
    let encoded = job.encode();
    group.bench_function("job-encode-uncached", |bench| {
        bench.iter(|| std::hint::black_box(job.encode()));
    });
    group.bench_function("job-decode", |bench| {
        bench.iter(|| std::hint::black_box(PersonalizationJob::decode(&encoded).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_json, bench_gzip, bench_messages);
criterion_main!(benches);
