//! HTTP front-end load harness.
//!
//! * `http_load bench` — measures closed-loop `/online/` throughput of
//!   three front-ends at several concurrency levels and prints
//!   `BENCH_http.json`-style lines to stdout:
//!   * `seed-threadpool` — the seed architecture: thread-per-connection
//!     server, scalar `/online/` re-gzipping the whole job per request.
//!   * `threadpool-cached` — the same blocking server, but `/online/`
//!     served through the fragment-cache encoder (batch of one).
//!   * `reactor-coalesced` — the epoll reactor gathering concurrent
//!     requests into `build_jobs` + `encode_jobs` batches.
//!
//!   All three series run in `Connection: close` mode so the numbers stay
//!   comparable with the recorded `BENCH_http.json` history.
//! * `http_load bench-keepalive` — the connection-lifetime experiment:
//!   the reactor front-end driven closed-loop over `/online/` in
//!   `Connection: close` vs keep-alive mode at 64–1024 connections
//!   (`BENCH_keepalive.json`).
//! * `http_load bench-sharded` — the multi-reactor experiment: keep-alive
//!   load against a 1-reactor front-end vs one sharded across `--reactors`
//!   event loops (default 4) over the same total worker count
//!   (`BENCH_sharded.json`). On a single-core box the two should tie —
//!   the point of recording it is the multi-core rerun.
//! * `http_load bench-churn` — the job-lifecycle experiment: the full
//!   browser loop (fetch a job, abandon it with `--abandon` probability,
//!   otherwise post the completion) against the lease-free and the leased
//!   (scheduled) reactor front-end (`BENCH_sched.json`). `--smoke`
//!   shrinks it to a CI gate asserting zero hard errors.
//! * `http_load smoke` — CI gate: fires a few hundred concurrent requests
//!   at the reactor front-end, asserts every response is 200 and that the
//!   server drains cleanly on shutdown.
//!
//! Flags: `--keep-alive` switches the smoke clients to persistent
//! connections; `--requests-per-conn N` rotates each persistent client
//! connection after `N` requests (exercising the reconnect path);
//! `--reactors N` shards the server under test across `N` reactor event
//! loops (smoke additionally asserts the shards all saw traffic).
//!
//! ```text
//! cargo run --release -p hyrec-bench --bin http_load -- bench > BENCH_http.json
//! cargo run --release -p hyrec-bench --bin http_load -- bench-keepalive > BENCH_keepalive.json
//! cargo run --release -p hyrec-bench --bin http_load -- bench-sharded --reactors 4 > BENCH_sharded.json
//! cargo run --release -p hyrec-bench --bin http_load -- smoke --keep-alive --reactors 4
//! ```

use hyrec_http::{BatchPolicy, HttpServer};
use hyrec_sched::SchedConfig;
use hyrec_sim::load::{
    build_population, measure_churn_loop, measure_throughput_with, seed_frontend_router,
    spawn_benchmark_server, spawn_reactor_server, spawn_scheduled_reactor_server,
    spawn_sharded_reactor_server, warm_cache, ChurnLoad, LoadOptions, Population, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

/// Users in the benchmark population.
const USERS: usize = 2_000;
/// Liked items per user profile.
const PROFILE_SIZE: usize = 60;
/// Neighbourhood size.
const K: usize = 10;
/// Worker threads for the blocking thread-pool server.
const POOL_WORKERS: usize = 8;
/// Worker threads behind the reactor's event loop.
const REACTOR_WORKERS: usize = 4;
/// Total requests targeted per series (split across the clients).
const TARGET_REQUESTS: usize = 2_048;

/// Parsed command line: mode + connection knobs. `reactors` stays `None`
/// unless the flag was given, so each mode can pick its own default
/// (1 for smoke, 4 for bench-sharded) while an explicit `--reactors 1` is
/// still honoured.
struct Args {
    mode: String,
    keep_alive: bool,
    requests_per_conn: usize,
    reactors: Option<usize>,
    /// Base browser-abandonment probability for `bench-churn`.
    abandon: f64,
    /// Shrinks `bench-churn` to a CI-sized smoke run that asserts zero
    /// errors instead of recording a benchmark series.
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: "bench".to_owned(),
        keep_alive: false,
        requests_per_conn: 0,
        reactors: None,
        abandon: 0.3,
        smoke: false,
    };
    let mut raw = std::env::args().skip(1);
    let mut mode_seen = false;
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--keep-alive" => args.keep_alive = true,
            "--requests-per-conn" => {
                let value = raw
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--requests-per-conn needs a number");
                        std::process::exit(2);
                    });
                args.requests_per_conn = value;
                // Rotating connections implies keeping them alive between
                // rotations.
                args.keep_alive = true;
            }
            "--abandon" => {
                let value = raw
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| {
                        eprintln!("--abandon needs a probability in [0, 1]");
                        std::process::exit(2);
                    });
                args.abandon = value;
            }
            "--smoke" => args.smoke = true,
            "--reactors" => {
                let value = raw
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--reactors needs a number ≥ 1");
                        std::process::exit(2);
                    });
                args.reactors = Some(value);
            }
            mode if !mode_seen => {
                args.mode = mode.to_owned();
                mode_seen = true;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // `bench` and `bench-keepalive` pin their front-end configuration for
    // cross-PR comparability; refusing the flag beats silently recording a
    // 1-reactor run the user believes was sharded.
    if args.reactors.is_some() && matches!(args.mode.as_str(), "bench" | "bench-keepalive") {
        eprintln!(
            "--reactors is not supported by `{}` (use `bench-sharded` or `smoke`)",
            args.mode
        );
        std::process::exit(2);
    }
    match args.mode.as_str() {
        "bench" => bench(),
        "bench-keepalive" => bench_keepalive(args.requests_per_conn),
        "bench-sharded" => bench_sharded(&args),
        "bench-churn" => bench_churn(&args),
        "smoke" => smoke(&args),
        other => {
            eprintln!(
                "unknown mode `{other}` (expected `bench`, `bench-keepalive`, \
                 `bench-sharded`, `bench-churn` or `smoke`)"
            );
            std::process::exit(2);
        }
    }
}

/// Splits the worker budget across `reactors` shards (at least one worker
/// per shard — so past `REACTOR_WORKERS` shards the total grows with the
/// shard count; `bench-sharded` sizes its baseline off the same product to
/// keep the two series at equal total compute regardless).
fn workers_per_reactor(reactors: usize) -> usize {
    (REACTOR_WORKERS / reactors.max(1)).max(1)
}

fn emit(id: &str, clients: usize, result: &Throughput) {
    println!(
        "{{\"group\":\"http-load\",\"id\":\"{id}/{clients}\",\"clients\":{clients},\
         \"ok\":{},\"errors\":{},\"elapsed_ms\":{:.1},\"rps\":{:.1}}}",
        result.ok,
        result.errors,
        result.elapsed.as_secs_f64() * 1e3,
        result.rps,
    );
    eprintln!(
        "  {id:>20} @ {clients:>4} clients: {:>8.1} req/s ({} ok, {} err, {:.1} ms)",
        result.rps,
        result.ok,
        result.errors,
        result.elapsed.as_secs_f64() * 1e3
    );
}

fn bench_population() -> Population {
    eprintln!("building {USERS}-user population (profile size {PROFILE_SIZE}, k={K})…");
    let population = build_population(USERS, PROFILE_SIZE, K, 42);
    eprintln!("warming the fragment cache…");
    warm_cache(&population, USERS);
    population
}

/// The reactor's coalescing policy for throughput runs. A 64-job cap keeps
/// batches inside the workers' sweet spot (bigger caps serialize too much
/// encode work behind one worker).
fn bench_policy() -> BatchPolicy {
    BatchPolicy {
        max_batch: 64,
        gather_window: Duration::from_millis(1),
    }
}

fn bench() {
    let population = bench_population();
    for clients in [64usize, 256, 1024] {
        let per_client = (TARGET_REQUESTS / clients).max(2);
        eprintln!("== {clients} concurrent connections ({per_client} requests each)");

        // Baseline: the seed thread-per-connection front-end.
        let seed = HttpServer::bind("127.0.0.1:0", POOL_WORKERS).expect("bind seed server");
        let addr = seed.local_addr();
        let handle = seed.serve(seed_frontend_router(Arc::clone(&population.server)));
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::close_per_request(),
        );
        emit("seed-threadpool", clients, &result);
        handle.stop();

        // Same blocking server, cached encoder (isolates the encoder win
        // from the front-end win).
        let (handle, addr) = spawn_benchmark_server(&population, POOL_WORKERS);
        let result = measure_throughput_with(
            addr,
            "/online-fast/",
            USERS,
            clients,
            per_client,
            LoadOptions::close_per_request(),
        );
        emit("threadpool-cached", clients, &result);
        handle.stop();

        // The reactor + coalescing front-end.
        let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, bench_policy());
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::close_per_request(),
        );
        let stats = handle.stats();
        eprintln!(
            "  {:>20}   coalescing: {} requests in {} batches (mean {:.1}/flush)",
            "",
            stats.batched_requests(),
            stats.batches(),
            stats.batched_requests() as f64 / stats.batches().max(1) as f64
        );
        emit("reactor-coalesced", clients, &result);
        handle.stop();
    }
}

/// Keep-alive vs `Connection: close` on the reactor front-end — the
/// experiment behind `BENCH_keepalive.json`. Per-client request counts are
/// raised above the plain bench so connection reuse has something to
/// amortize.
fn bench_keepalive(requests_per_conn: usize) {
    let population = bench_population();
    for clients in [64usize, 256, 1024] {
        let per_client = (2 * TARGET_REQUESTS / clients).max(4);
        eprintln!("== {clients} concurrent connections ({per_client} requests each)");

        let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, bench_policy());
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::close_per_request(),
        );
        emit("reactor-close", clients, &result);
        handle.stop();

        let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, bench_policy());
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::persistent(requests_per_conn),
        );
        let stats = handle.stats();
        eprintln!(
            "  {:>20}   reuse: {} requests over {} connections (mean {:.1}/conn), \
             {} batched in {} flushes",
            "",
            stats.requests(),
            stats.connections(),
            stats.requests() as f64 / stats.connections().max(1) as f64,
            stats.batched_requests(),
            stats.batches(),
        );
        emit("reactor-keepalive", clients, &result);
        handle.stop();
    }
}

/// 1 reactor vs `--reactors` N (default 4) under keep-alive load — the
/// experiment behind `BENCH_sharded.json`. Both series run the same total
/// worker count; on a single-core container the kernel time-slices the
/// event loops onto one CPU, so parity is the expected result here and the
/// series exists to be re-run on a many-core box.
fn bench_sharded(args: &Args) {
    let reactors = args.reactors.unwrap_or(4);
    // The baseline runs the *same total* worker count as the sharded
    // series (which is reactors × workers_per_reactor, possibly more than
    // REACTOR_WORKERS when reactors exceed it), so the comparison isolates
    // the front-end architecture, not pool sizing.
    let total_workers = reactors * workers_per_reactor(reactors);
    let population = bench_population();
    for clients in [64usize, 256, 1024] {
        let per_client = (2 * TARGET_REQUESTS / clients).max(4);
        eprintln!("== {clients} concurrent connections ({per_client} requests each)");

        let (handle, addr) =
            spawn_sharded_reactor_server(&population, 1, total_workers, bench_policy());
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::persistent(0),
        );
        emit("reactor-x1", clients, &result);
        handle.stop();

        let (handle, addr) = spawn_sharded_reactor_server(
            &population,
            reactors,
            workers_per_reactor(reactors),
            bench_policy(),
        );
        let result = measure_throughput_with(
            addr,
            "/online/",
            USERS,
            clients,
            per_client,
            LoadOptions::persistent(0),
        );
        let stats = handle.stats();
        let spread: Vec<String> = stats
            .shards()
            .iter()
            .map(|shard| format!("{}c/{}r", shard.connections(), shard.requests()))
            .collect();
        eprintln!(
            "  {:>20}   shards: [{}], {} batched in {} flushes",
            "",
            spread.join(", "),
            stats.batched_requests(),
            stats.batches(),
        );
        emit(&format!("reactor-x{reactors}"), clients, &result);
        handle.stop();
    }
}

fn emit_churn(id: &str, clients: usize, abandon: f64, result: &ChurnLoad) {
    println!(
        "{{\"group\":\"http-churn\",\"id\":\"{id}/{clients}\",\"clients\":{clients},\
         \"abandon\":{abandon},\"fetched\":{},\"completed\":{},\"superseded\":{},\
         \"abandoned\":{},\"errors\":{},\"elapsed_ms\":{:.1},\"rps\":{:.1}}}",
        result.fetched,
        result.completed,
        result.superseded,
        result.abandoned,
        result.errors,
        result.elapsed.as_secs_f64() * 1e3,
        result.rps,
    );
    eprintln!(
        "  {id:>20} @ {clients:>4} clients: {:>8.1} fetch/s ({} fetched, {} completed, \
         {} superseded, {} abandoned, {} err)",
        result.rps,
        result.fetched,
        result.completed,
        result.superseded,
        result.abandoned,
        result.errors,
    );
}

/// Leases on vs leases off under the full browser loop (fetch → maybe
/// abandon → post completion) — the experiment behind `BENCH_sched.json`.
/// Both series run the *same* client behaviour against the same
/// population; the only difference is whether the server routes jobs
/// through the job-lifecycle scheduler. In `--smoke` mode the run shrinks
/// to CI size and asserts zero hard errors plus live churn recovery.
fn bench_churn(args: &Args) {
    let abandon = args.abandon;
    // Each series gets its own identically-seeded, identically-warmed
    // population: the plain run mutates KNN tables and the fragment cache,
    // so sharing one server would hand the second series warm state and
    // bias the overhead comparison.
    let build_series_population = || {
        if args.smoke {
            let population = build_population(200, 20, 5, 7);
            warm_cache(&population, 200);
            population
        } else {
            bench_population()
        }
    };
    let (clients_series, per_client) = if args.smoke {
        (vec![32usize], 6)
    } else {
        (vec![256usize], 16)
    };
    // Lease timeout sized to the environment: with hundreds of closed-loop
    // clients time-slicing one core, p95 completion latency runs seconds,
    // so a too-tight deadline would expire *in-flight* work and measure
    // recovery compute instead of lease bookkeeping. 10 s stays far below
    // the 60 s client timeout while keeping honest abandonment (which
    // never posts) recoverable right after the run.
    let sched_config = SchedConfig {
        lease_timeout: 10_000, // ms
        max_reissues: 2,
        ..SchedConfig::default()
    };
    for clients in clients_series {
        eprintln!(
            "== {clients} concurrent browsers ({per_client} interactions each, \
             {:.0}% abandonment)",
            abandon * 100.0
        );

        // Lease-free baseline: the plain coalescing router ignores lease
        // fields and applies whatever comes back.
        let population = build_series_population();
        let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, bench_policy());
        let plain = measure_churn_loop(
            addr,
            population.users.len(),
            clients,
            per_client,
            abandon,
            42,
        );
        emit_churn("reactor-plain", clients, abandon, &plain);
        handle.stop();

        // Leases on: every job leased, completions validated, sweeper
        // recovering abandoned work in the background — over a fresh twin
        // population.
        let population = build_series_population();
        let (handle, addr, scheduled, sweeper) = spawn_scheduled_reactor_server(
            &population,
            REACTOR_WORKERS,
            bench_policy(),
            sched_config,
        );
        let leased = measure_churn_loop(
            addr,
            population.users.len(),
            clients,
            per_client,
            abandon,
            42,
        );
        let stats = scheduled.scheduler().stats().snapshot();
        eprintln!(
            "  {:>20}   sched: {} issued, {} completed, {} expired, {} reissued, \
             {} fallbacks, {} rejected",
            "",
            stats.issued,
            stats.completed,
            stats.expired,
            stats.reissued,
            stats.fallbacks,
            stats.rejected_total(),
        );
        emit_churn("reactor-leased", clients, abandon, &leased);
        sweeper.stop();
        handle.stop();

        let overhead = (plain.rps - leased.rps) / plain.rps.max(1e-9) * 100.0;
        eprintln!("  lease overhead at {clients} clients: {overhead:+.1}% fetch throughput");

        if args.smoke {
            assert_eq!(plain.errors, 0, "lease-free churn run had hard errors");
            assert_eq!(leased.errors, 0, "leased churn run had hard errors");
            assert_eq!(
                leased.fetched,
                clients * per_client,
                "every fetch must be served"
            );
            if abandon > 0.0 {
                assert!(leased.abandoned > 0, "smoke churn never abandoned a job");
            }
            eprintln!(
                "churn smoke ok: {} + {} interactions, zero errors",
                plain.fetched, leased.fetched
            );
        }
    }
}

fn smoke(args: &Args) {
    const CLIENTS: usize = 64;
    const PER_CLIENT: usize = 5;
    let reactors = args.reactors.unwrap_or(1);
    let options = if args.keep_alive {
        LoadOptions::persistent(args.requests_per_conn)
    } else {
        LoadOptions::close_per_request()
    };
    eprintln!(
        "http smoke: {CLIENTS} concurrent clients × {PER_CLIENT} requests ({}, {} reactor{})…",
        if args.keep_alive {
            "keep-alive"
        } else {
            "connection: close"
        },
        reactors,
        if reactors == 1 { "" } else { "s" },
    );
    let population = build_population(200, 20, 5, 7);
    let policy = BatchPolicy::default();
    let (handle, addr) = if reactors > 1 {
        spawn_sharded_reactor_server(&population, reactors, workers_per_reactor(reactors), policy)
    } else {
        spawn_reactor_server(&population, REACTOR_WORKERS, policy)
    };

    // Interleaved /rate/ and /online/ traffic.
    let rate = measure_throughput_with(
        addr,
        "/rate/?item=9000&like=1",
        200,
        CLIENTS,
        PER_CLIENT,
        options,
    );
    assert_eq!(
        (rate.ok, rate.errors),
        (CLIENTS * PER_CLIENT, 0),
        "rate traffic must be all-200"
    );
    let online = measure_throughput_with(addr, "/online/", 200, CLIENTS, PER_CLIENT, options);
    assert_eq!(
        (online.ok, online.errors),
        (CLIENTS * PER_CLIENT, 0),
        "online traffic must be all-200"
    );
    let served = handle.request_count();
    assert_eq!(
        served as usize,
        2 * CLIENTS * PER_CLIENT,
        "request accounting"
    );
    if args.keep_alive {
        let connections = handle.stats().connections();
        assert!(
            (connections as usize) < 2 * CLIENTS * PER_CLIENT,
            "keep-alive smoke opened one connection per request ({connections})"
        );
        eprintln!("  keep-alive reuse: {served} requests over {connections} connections");
    }
    if reactors > 1 {
        let stats = handle.stats();
        let shard_requests: u64 = stats.shards().iter().map(|s| s.requests()).sum();
        assert_eq!(
            shard_requests,
            stats.requests(),
            "per-shard request counts must sum to the aggregate"
        );
        let active = stats
            .shards()
            .iter()
            .filter(|s| s.connections() > 0)
            .count();
        assert!(
            active >= 2,
            "accept sharding left every connection on one of {reactors} shards"
        );
        let spread: Vec<String> = stats
            .shards()
            .iter()
            .map(|shard| format!("{}c/{}r", shard.connections(), shard.requests()))
            .collect();
        eprintln!("  shard spread: [{}]", spread.join(", "));
    }

    // Drain: stop() must return promptly with nothing left in flight.
    let start = std::time::Instant::now();
    handle.stop();
    let drain = start.elapsed();
    assert!(
        drain < Duration::from_secs(3),
        "shutdown took {drain:?}; drain is stuck"
    );
    eprintln!(
        "smoke ok: {} requests all 200 ({:.0} + {:.0} req/s), drained in {drain:?}",
        served, rate.rps, online.rps
    );
}
