//! HTTP front-end load harness.
//!
//! * `http_load bench` — measures closed-loop `/online/` throughput of
//!   three front-ends at several concurrency levels and prints
//!   `BENCH_http.json`-style lines to stdout:
//!   * `seed-threadpool` — the seed architecture: thread-per-connection
//!     server, scalar `/online/` re-gzipping the whole job per request.
//!   * `threadpool-cached` — the same blocking server, but `/online/`
//!     served through the fragment-cache encoder (batch of one).
//!   * `reactor-coalesced` — the epoll reactor gathering concurrent
//!     requests into `build_jobs` + `encode_jobs` batches.
//! * `http_load smoke` — CI gate: fires a few hundred concurrent requests
//!   at the reactor front-end, asserts every response is 200 and that the
//!   server drains cleanly on shutdown.
//!
//! ```text
//! cargo run --release -p hyrec-bench --bin http_load -- bench > BENCH_http.json
//! cargo run --release -p hyrec-bench --bin http_load -- smoke
//! ```

use hyrec_http::{BatchPolicy, HttpServer};
use hyrec_sim::load::{
    build_population, measure_throughput, seed_frontend_router, spawn_benchmark_server,
    spawn_reactor_server, warm_cache, Population, Throughput,
};
use std::sync::Arc;
use std::time::Duration;

/// Users in the benchmark population.
const USERS: usize = 2_000;
/// Liked items per user profile.
const PROFILE_SIZE: usize = 60;
/// Neighbourhood size.
const K: usize = 10;
/// Worker threads for the blocking thread-pool server.
const POOL_WORKERS: usize = 8;
/// Worker threads behind the reactor's event loop.
const REACTOR_WORKERS: usize = 4;
/// Total requests targeted per series (split across the clients).
const TARGET_REQUESTS: usize = 2_048;

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench".to_owned());
    match mode.as_str() {
        "bench" => bench(),
        "smoke" => smoke(),
        other => {
            eprintln!("unknown mode `{other}` (expected `bench` or `smoke`)");
            std::process::exit(2);
        }
    }
}

fn emit(id: &str, clients: usize, result: &Throughput) {
    println!(
        "{{\"group\":\"http-load\",\"id\":\"{id}/{clients}\",\"clients\":{clients},\
         \"ok\":{},\"errors\":{},\"elapsed_ms\":{:.1},\"rps\":{:.1}}}",
        result.ok,
        result.errors,
        result.elapsed.as_secs_f64() * 1e3,
        result.rps,
    );
    eprintln!(
        "  {id:>20} @ {clients:>4} clients: {:>8.1} req/s ({} ok, {} err, {:.1} ms)",
        result.rps,
        result.ok,
        result.errors,
        result.elapsed.as_secs_f64() * 1e3
    );
}

fn bench_population() -> Population {
    eprintln!("building {USERS}-user population (profile size {PROFILE_SIZE}, k={K})…");
    let population = build_population(USERS, PROFILE_SIZE, K, 42);
    eprintln!("warming the fragment cache…");
    warm_cache(&population, USERS);
    population
}

fn bench() {
    let population = bench_population();
    for clients in [64usize, 256, 1024] {
        let per_client = (TARGET_REQUESTS / clients).max(2);
        eprintln!("== {clients} concurrent connections ({per_client} requests each)");

        // Baseline: the seed thread-per-connection front-end.
        let seed = HttpServer::bind("127.0.0.1:0", POOL_WORKERS).expect("bind seed server");
        let addr = seed.local_addr();
        let handle = seed.serve(seed_frontend_router(Arc::clone(&population.server)));
        let result = measure_throughput(addr, "/online/", USERS, clients, per_client);
        emit("seed-threadpool", clients, &result);
        handle.stop();

        // Same blocking server, cached encoder (isolates the encoder win
        // from the front-end win).
        let (handle, addr) = spawn_benchmark_server(&population, POOL_WORKERS);
        let result = measure_throughput(addr, "/online-fast/", USERS, clients, per_client);
        emit("threadpool-cached", clients, &result);
        handle.stop();

        // The reactor + coalescing front-end. A 64-job cap keeps batches
        // inside the workers' sweet spot (bigger caps serialize too much
        // encode work behind one worker).
        let policy = BatchPolicy {
            max_batch: 64,
            gather_window: Duration::from_millis(1),
        };
        let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, policy);
        let result = measure_throughput(addr, "/online/", USERS, clients, per_client);
        let stats = handle.stats();
        eprintln!(
            "  {:>20}   coalescing: {} requests in {} batches (mean {:.1}/flush)",
            "",
            stats.batched_requests(),
            stats.batches(),
            stats.batched_requests() as f64 / stats.batches().max(1) as f64
        );
        emit("reactor-coalesced", clients, &result);
        handle.stop();
    }
}

fn smoke() {
    const CLIENTS: usize = 64;
    const PER_CLIENT: usize = 5;
    eprintln!("http smoke: {CLIENTS} concurrent clients × {PER_CLIENT} requests…");
    let population = build_population(200, 20, 5, 7);
    let policy = BatchPolicy::default();
    let (handle, addr) = spawn_reactor_server(&population, REACTOR_WORKERS, policy);

    // Interleaved /rate/ and /online/ traffic.
    let rate = measure_throughput(addr, "/rate/?item=9000&like=1", 200, CLIENTS, PER_CLIENT);
    assert_eq!(
        (rate.ok, rate.errors),
        (CLIENTS * PER_CLIENT, 0),
        "rate traffic must be all-200"
    );
    let online = measure_throughput(addr, "/online/", 200, CLIENTS, PER_CLIENT);
    assert_eq!(
        (online.ok, online.errors),
        (CLIENTS * PER_CLIENT, 0),
        "online traffic must be all-200"
    );
    let served = handle.request_count();
    assert_eq!(
        served as usize,
        2 * CLIENTS * PER_CLIENT,
        "request accounting"
    );

    // Drain: stop() must return promptly with nothing left in flight.
    let start = std::time::Instant::now();
    handle.stop();
    let drain = start.elapsed();
    assert!(
        drain < Duration::from_secs(3),
        "shutdown took {drain:?}; drain is stuck"
    );
    eprintln!(
        "smoke ok: {} requests all 200 ({:.0} + {:.0} req/s), drained in {drain:?}",
        served, rate.rps, online.rps
    );
}
