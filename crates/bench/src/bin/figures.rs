//! Regenerates every table and figure of the HyRec paper's evaluation.
//!
//! ```text
//! figures -- all                 # everything at laptop scale
//! figures -- fig3 fig6           # selected artifacts
//! figures -- fig7 --full         # one artifact at full paper scale
//! figures -- table2 --scale 0.5  # custom dataset scale
//! ```

use hyrec_bench::figures;
use hyrec_bench::RunOptions;

const USAGE: &str = "usage: figures [--scale F] [--full] [--seed N] <artifact>...
artifacts: table2 fig3 fig4 fig5 fig6 fig7 table3 fig8 fig9 fig10 fig11 fig12 fig13 bandwidth all";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = RunOptions::default();
    let mut targets: Vec<String> = Vec::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--scale needs a value\n{USAGE}");
                    std::process::exit(2);
                });
                options.scale = value.parse::<f64>().ok();
                if options.scale.is_none() {
                    eprintln!("invalid --scale {value}\n{USAGE}");
                    std::process::exit(2);
                }
            }
            "--full" => options.full = true,
            "--seed" => {
                let value = iter.next().map(|v| v.parse::<u64>());
                match value {
                    Some(Ok(seed)) => options.seed = seed,
                    _ => {
                        eprintln!("--seed needs an integer\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7+table3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "bandwidth",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    for target in &targets {
        match target.as_str() {
            "table2" => figures::table2::run(&options),
            "fig3" => figures::fig3::run(&options),
            "fig4" => figures::fig4::run(&options),
            "fig5" => figures::fig5::run(&options),
            "fig6" => figures::fig6::run(&options),
            "fig7" => {
                let _ = figures::fig7::run(&options);
            }
            "table3" => figures::table3::run(&options),
            // Shared run: fig7's measurements feed table3 directly.
            "fig7+table3" => {
                let results = figures::fig7::run(&options);
                figures::table3::run_with(&results);
            }
            "fig8" => figures::fig8::run(&options),
            "fig9" => figures::fig9::run(&options),
            "fig10" => figures::fig10::run(&options),
            "fig11" => figures::fig11::run(&options),
            "fig12" => figures::fig12::run(&options),
            "fig13" => figures::fig13::run(&options),
            "bandwidth" => figures::bandwidth::run(&options),
            other => {
                eprintln!("unknown artifact `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
