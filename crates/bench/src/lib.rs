//! # hyrec-bench
//!
//! The experiment harness of the HyRec reproduction. One module per paper
//! artifact (`figures::fig3` … `figures::table3`), each regenerating the
//! corresponding table or figure: same workloads, same parameter sweeps,
//! same series — printed as tab-separated columns with the paper's axes.
//!
//! Run everything through the `figures` binary:
//!
//! ```text
//! cargo run --release -p hyrec-bench --bin figures -- all
//! cargo run --release -p hyrec-bench --bin figures -- fig3 --scale 0.5
//! cargo run --release -p hyrec-bench --bin figures -- fig7 --full
//! ```
//!
//! Criterion micro-benches live under `benches/` and cover the kernels the
//! figures aggregate (similarity, KNN step, wire codecs, job encoding).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use std::time::Duration;

/// Common options threaded into every figure runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Dataset scale factor in `(0, 1]`; figures pick per-figure defaults
    /// when `None`.
    pub scale: Option<f64>,
    /// Run at full paper scale (overrides `scale`).
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: None,
            full: false,
            seed: 0xB005,
        }
    }
}

impl RunOptions {
    /// Resolves the effective scale given a figure's default.
    #[must_use]
    pub fn effective_scale(&self, default_scale: f64) -> f64 {
        if self.full {
            1.0
        } else {
            self.scale.unwrap_or(default_scale).clamp(1e-4, 1.0)
        }
    }
}

/// Prints a figure banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id}: {caption} ===");
}

/// Prints a tab-separated header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Formats a duration in adaptive units for series output.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_scale_resolution() {
        let default = RunOptions::default();
        assert_eq!(default.effective_scale(0.3), 0.3);
        let explicit = RunOptions {
            scale: Some(0.7),
            ..Default::default()
        };
        assert_eq!(explicit.effective_scale(0.3), 0.7);
        let full = RunOptions {
            full: true,
            scale: Some(0.1),
            ..Default::default()
        };
        assert_eq!(full.effective_scale(0.3), 1.0);
        let wild = RunOptions {
            scale: Some(9.0),
            ..Default::default()
        };
        assert_eq!(wild.effective_scale(0.3), 1.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0us");
    }
}
