//! Table 3: cost reduction of HyRec vs a centralized back-end.
//!
//! Uses the Figure 7 CRec runtimes (linearly extrapolated from the measured
//! scale to full dataset size — CRec's cost is `rounds × N × |S_u| × ps`,
//! linear in users at fixed per-user statistics) and the paper's 2014 EC2
//! prices. Paper values: ML1 8.6/15.8/27.4%, ML2 31/47.6/49.2%,
//! ML3 49.2% flat (reserved cap), Digg 2.5/5.0/9.5%.

use crate::figures::fig7::Fig7Results;
use crate::{banner, header, RunOptions};
use hyrec_sim::cost::{cost_reduction, Ec2Pricing};
use std::time::Duration;

/// Runs the Table 3 regeneration from fresh Figure 7 measurements.
pub fn run(options: &RunOptions) {
    let fig7 = crate::figures::fig7::run(options);
    run_with(&fig7);
}

/// The paper's own CRec back-end runtimes (2014 Java/map-reduce stack),
/// read off Figure 7's log axis and cross-checked against the Table 3
/// percentages: `(dataset, seconds per KNN pass)`.
const PAPER_RUNTIMES: [(&str, u64); 4] = [
    ("ML1", 2_100),
    ("ML2", 10_100),
    ("ML3", 40_000),
    ("Digg", 145),
];

/// Runs Table 3 from existing Figure 7 results.
pub fn run_with(fig7: &Fig7Results) {
    banner(
        "Table 3",
        "Cost reduction vs centralized back-end (paper: up to 49.2% on ML3, small on Digg)",
    );
    let pricing = Ec2Pricing::default();
    let periods_for = |name: &str| -> &'static [(u64, &str)] {
        if name == "Digg" {
            &[(12, "12h"), (6, "6h"), (2, "2h")]
        } else {
            &[(48, "48h"), (24, "24h"), (12, "12h")]
        }
    };

    println!("-- (a) with the paper's 2014 back-end runtimes (validates the cost model):");
    header(&[
        "dataset",
        "period",
        "knn-runtime",
        "backend-$/yr",
        "reserved?",
        "savings",
    ]);
    for (name, secs) in PAPER_RUNTIMES {
        let runtime = Duration::from_secs(secs);
        for &(hours, label) in periods_for(name) {
            let b = cost_reduction(&pricing, runtime, Duration::from_secs(hours * 3600));
            println!(
                "{name}\t{label}\t{}\t${:.0}\t{}\t{:.1}%",
                crate::fmt_duration(runtime),
                b.backend_yearly,
                if b.backend_reserved { "yes" } else { "no" },
                b.savings * 100.0,
            );
        }
    }
    println!(
        "# paper: ML1 8.6/15.8/27.4% | ML2 31/47.6/49.2% | ML3 49.2% flat | Digg 2.5/5.0/9.5%"
    );

    println!("-- (b) with OUR measured Rust runtimes (linear extrapolation to full scale):");
    header(&[
        "dataset",
        "period",
        "knn-runtime(extrap)",
        "backend-$/yr",
        "reserved?",
        "savings",
    ]);
    for &(name, measured_users, full_users, runtime) in &fig7.crec_runtimes {
        let factor = full_users as f64 / measured_users.max(1) as f64;
        let full_runtime = Duration::from_secs_f64(runtime.as_secs_f64() * factor);
        for &(hours, label) in periods_for(name) {
            let b = cost_reduction(&pricing, full_runtime, Duration::from_secs(hours * 3600));
            println!(
                "{name}\t{label}\t{}\t${:.2}\t{}\t{:.2}%",
                crate::fmt_duration(full_runtime),
                b.backend_yearly,
                if b.backend_reserved { "yes" } else { "no" },
                b.savings * 100.0,
            );
        }
    }
    println!("# finding: an optimized Rust back-end is ~1000x faster than the 2014 stack,");
    println!("# collapsing the back-end cost HyRec avoids — the paper's economics are");
    println!("# stack-dependent, while the scalability benefits (Figs 8-9) are architectural.");
}
