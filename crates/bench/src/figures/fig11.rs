//! Figure 11: impact of the widget on a loaded client machine.
//!
//! The paper runs a monitoring loop (counting iterations) under `stress`
//! load while different applications co-run: nothing (baseline), the HyRec
//! widget loop, an RSS display loop, and a decentralized recommender. We
//! reproduce the mechanism with the fair-share CPU model over the paper's
//! 8-core laptop: each co-running app contributes its CPU demand; the
//! monitor's progress is its proportional share.
//!
//! Demands are calibrated from measurement: the widget kernel runs ~5 ms
//! per job against ~50 ms of fetch/render wait (demand ≈ 0.1); the display
//! loop is fetch-bound (≈ 0.15); the P2P recommender gossips once a minute
//! (≈ 0.02, but constant).

use crate::{banner, header, RunOptions};
use hyrec_sim::device::FairShareCpu;

/// Co-running application demands (fraction of one core).
const HYREC_DEMAND: f64 = 0.10;
const DISPLAY_DEMAND: f64 = 0.15;
const DECENTRALIZED_DEMAND: f64 = 0.02;
/// The paper's laptop: bi-quad-core.
const CORES: f64 = 8.0;
/// Calibration: monitor loop iterations at an idle machine (paper: ~190M).
const IDLE_LOOPS_MILLIONS: f64 = 190.0;

fn monitor_progress(load: f64, other_demand: f64) -> f64 {
    // Stress drives `load` of the *whole* machine: load × CORES of demand.
    let total = load * CORES + 1.0 + other_demand;

    if total <= CORES {
        1.0
    } else {
        CORES / total
    }
}

/// Runs the Figure 11 regeneration.
pub fn run(_options: &RunOptions) {
    banner(
        "Figure 11",
        "Monitor progress under CPU load with co-running apps (paper: widget ≈ display op; small impact)",
    );
    header(&[
        "cpu-load(%)",
        "baseline(M)",
        "hyrec-op(M)",
        "display-op(M)",
        "decentralized(M)",
    ]);
    for load_pct in (0..=100).step_by(10) {
        let load = f64::from(load_pct) / 100.0;
        let loops = |other: f64| IDLE_LOOPS_MILLIONS * monitor_progress(load, other);
        println!(
            "{load_pct}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            loops(0.0),
            loops(HYREC_DEMAND),
            loops(DISPLAY_DEMAND),
            loops(DECENTRALIZED_DEMAND),
        );
    }
    // Sanity hooks into the shared model used by Figure 12.
    let single_core = FairShareCpu::new(1.0);
    println!(
        "# model check: single-core share at 100% load = {:.2} (halved, as Figure 12 uses)",
        single_core.foreground_share()
    );
    println!(
        "# paper shape: HyRec's impact ≈ a display operation; decentralized lower but constant"
    );
}
