//! Figure 10: personalization-job message size vs profile size.
//!
//! Paper: raw JSON grows ~linearly with profile size; gzip keeps it under
//! 10 kB even at ps=500 (~71% compression).

use crate::{banner, header, RunOptions};
use hyrec_sim::load::build_population;

/// Runs the Figure 10 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 10",
        "Job message size vs profile size (paper: <10kB gzipped at ps=500, ~71% compression)",
    );
    let users = 500;
    println!("({users} users, k=10, worst-case candidate sets)");
    header(&[
        "profile-size",
        "json(kB)",
        "gzip(kB)",
        "compression",
        "candidates",
    ]);
    for ps in [10usize, 50, 100, 200, 300, 400, 500] {
        let population = build_population(users, ps, 10, options.seed);
        // Average over a few users for stability.
        let mut json_total = 0usize;
        let mut gzip_total = 0usize;
        let mut cands = 0usize;
        let samples = 8;
        for i in 0..samples {
            let job = population.server.build_job(population.users[i * 7]);
            json_total += job.json_bytes();
            gzip_total += job.gzip_bytes();
            cands += job.candidates.len();
        }
        let json = json_total as f64 / samples as f64 / 1024.0;
        let gz = gzip_total as f64 / samples as f64 / 1024.0;
        println!(
            "{ps}\t{json:.1}\t{gz:.1}\t{:.0}%\t{}",
            100.0 * (1.0 - gz / json),
            cands / samples
        );
    }
    println!("# paper shape: linear json growth; gzip ~70% smaller");
}
