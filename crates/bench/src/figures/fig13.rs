//! Figure 13: widget task time vs profile size.
//!
//! Real kernel measurements across profile sizes and k, scaled to the two
//! device classes. Paper: ≤1.5× growth on the laptop and ≤7.2× on the
//! smartphone from ps=10 to ps=500 — the widget scales gracefully.

use crate::{banner, header, RunOptions};
use hyrec_core::candidate_set_bound;
use hyrec_sim::device::{
    contended_time, measure_widget_kernel, synthetic_job, Device, FairShareCpu,
};

/// Runs the Figure 13 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 13",
        "Widget task time vs profile size (paper: modest growth; smartphone slower but parallel)",
    );
    let iterations = if options.full { 100 } else { 30 };
    let idle = FairShareCpu::new(0.0);
    header(&[
        "profile-size",
        "laptop-k10(ms)",
        "laptop-k20(ms)",
        "smartphone-k10(ms)",
        "smartphone-k20(ms)",
    ]);
    let sizes = [10usize, 50, 100, 200, 300, 400, 500];
    let mut first_k10 = None;
    let mut last_k10 = 0.0f64;
    for &ps in &sizes {
        let mut row = Vec::new();
        for k in [10usize, 20] {
            let job = synthetic_job(ps, k, candidate_set_bound(k));
            let kernel = measure_widget_kernel(&job, iterations);
            let laptop = contended_time(kernel, Device::LAPTOP, idle).as_secs_f64() * 1e3;
            let phone = contended_time(kernel, Device::SMARTPHONE, idle).as_secs_f64() * 1e3;
            row.push((laptop, phone));
        }
        println!(
            "{ps}\t{:.3}\t{:.3}\t{:.2}\t{:.2}",
            row[0].0, row[1].0, row[0].1, row[1].1
        );
        if first_k10.is_none() {
            first_k10 = Some(row[0].0);
        }
        last_k10 = row[0].0;
    }
    if let Some(first) = first_k10 {
        println!(
            "# laptop k=10 growth ps=10 -> ps=500: {:.1}x (paper: ~1.5x laptop, ~7.2x smartphone)",
            last_k10 / first.max(1e-9)
        );
    }
}
