//! Figure 3: average view similarity over time on ML1.
//!
//! Series: HyRec k=10, HyRec k=10 IR=7d, HyRec k=20, Offline-Ideal k=10
//! (weekly recompute), plus the ideal upper bound at each probe.

use crate::{banner, header, RunOptions};
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_sim::replay::{self, ReplayConfig};

/// Runs the Figure 3 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 3",
        "Average view similarity vs time, ML1 (paper: HyRec within 10-20% of ideal; offline staircase)",
    );
    let scale = options.effective_scale(1.0);
    let spec = DatasetSpec::ML1.scaled(scale);
    println!("({spec})");
    let trace = TraceGenerator::new(spec, options.seed)
        .generate()
        .binarize();
    let probe = 5 * 86_400; // every 5 simulated days
    let week = 7 * 86_400;

    let base = ReplayConfig {
        probe_interval: probe,
        compute_ideal: true,
        seed: options.seed,
        ..ReplayConfig::default()
    };
    let k10 = replay::replay_hyrec(
        &trace,
        &ReplayConfig {
            k: 10,
            ..base.clone()
        },
    );
    let k10_ir7 = replay::replay_hyrec(
        &trace,
        &ReplayConfig {
            k: 10,
            inter_request_bound: Some(week),
            compute_ideal: false,
            ..base.clone()
        },
    );
    let k20 = replay::replay_hyrec(
        &trace,
        &ReplayConfig {
            k: 20,
            compute_ideal: false,
            ..base.clone()
        },
    );
    let offline = replay::replay_offline_ideal(&trace, 10, week, probe);

    header(&[
        "day",
        "hyrec-k10",
        "hyrec-k10-ir7",
        "hyrec-k20",
        "offline-ideal-k10",
        "ideal-k10",
    ]);
    let rows = k10.probes.len();
    for i in 0..rows {
        let day = k10.probes[i].time.days();
        let col = |probes: &[replay::ProbePoint]| {
            probes
                .get(i)
                .map_or(String::from("-"), |p| format!("{:.4}", p.view_similarity))
        };
        let ideal = k10.probes[i]
            .ideal_view_similarity
            .map_or(String::from("-"), |v| format!("{v:.4}"));
        println!(
            "{day:.0}\t{:.4}\t{}\t{}\t{}\t{}",
            k10.probes[i].view_similarity,
            col(&k10_ir7.probes),
            col(&k20.probes),
            col(&offline),
            ideal
        );
    }

    let last = k10.probes.last().expect("probes");
    let ideal = last.ideal_view_similarity.unwrap_or(0.0).max(1e-9);
    let pct = |v: f64, bound: f64| 100.0 * (1.0 - v / bound);
    // k=20's absolute mean is over 20 neighbours, so compare it against the
    // ideal top-20 bound, not top-10 (mean similarity decays with rank).
    let profiles: std::collections::HashMap<_, _> = trace.final_profiles().into_iter().collect();
    let ideal20 = hyrec_sim::metrics::ideal_view_similarity(&profiles, 20).max(1e-9);
    println!(
        "# final gap to own-k ideal: k10 {:.0}% | k10+IR7 {:.0}% | k20 {:.0}% (paper: ~20% / ~10% / k20 converges faster)",
        pct(last.view_similarity, ideal),
        pct(k10_ir7.probes.last().map_or(0.0, |p| p.view_similarity), ideal),
        pct(k20.probes.last().map_or(0.0, |p| p.view_similarity), ideal20),
    );
    // Early-convergence check: the paper's k=20 claim is about speed.
    let early = k10.probes.len() / 4;
    if let (Some(a), Some(b)) = (k10.probes.get(early), k20.probes.get(early)) {
        let ratio10 = a.view_similarity / ideal;
        let ratio20 = b.view_similarity / ideal20;
        println!(
            "# early convergence (day {:.0}): k10 at {:.0}% of its bound, k20 at {:.0}% (paper: k20 faster)",
            a.time.days(),
            ratio10 * 100.0,
            ratio20 * 100.0
        );
    }
}
