//! Figure 6: recommendation quality vs number of recommendations.
//!
//! Paper ordering: Online-Ideal > HyRec > Offline p=1h > Offline p=24h,
//! with HyRec up to 12% above offline p=24h and ~13% below Online-Ideal.

use crate::{banner, header, RunOptions};
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_sim::quality;

/// Runs the Figure 6 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 6",
        "Recommendation quality vs #recommendations, ML1 k=10 (paper: ideal > HyRec > p=1h > p=24h)",
    );
    let scale = options.effective_scale(0.5);
    let spec = DatasetSpec::ML1.scaled(scale);
    println!("({spec})");
    let trace = TraceGenerator::new(spec, options.seed)
        .generate()
        .binarize();
    let (train, test) = trace.split_chronological(0.8);
    let k = 10;
    let max_n = 10;

    let hyrec = quality::quality_hyrec(&train, &test, k, max_n, options.seed);
    let offline_24h = quality::quality_offline(&train, &test, k, max_n, 24 * 3600);
    let offline_1h = quality::quality_offline(&train, &test, k, max_n, 3600);
    let online = quality::quality_online_ideal(&train, &test, k, max_n);
    let popularity = quality::quality_global_popularity(&train, &test, max_n);

    header(&[
        "n",
        "hyrec",
        "offline-p24h",
        "offline-p1h",
        "online-ideal",
        "global-pop",
    ]);
    for n in 1..=max_n {
        println!(
            "{n}\t{}\t{}\t{}\t{}\t{}",
            hyrec.hits[n - 1],
            offline_24h.hits[n - 1],
            offline_1h.hits[n - 1],
            online.hits[n - 1],
            popularity.hits[n - 1],
        );
    }
    println!("# positives evaluated: {}", hyrec.positives);
    let at10 = |c: &quality::QualityCurve| c.hits[max_n - 1] as f64;
    if at10(&offline_24h) > 0.0 && at10(&online) > 0.0 {
        println!(
            "# HyRec vs offline-24h: {:+.0}% (paper: up to +12%) | vs online ideal: {:+.0}% (paper: ~-13%)",
            100.0 * (at10(&hyrec) / at10(&offline_24h) - 1.0),
            100.0 * (at10(&hyrec) / at10(&online) - 1.0),
        );
    }
}
