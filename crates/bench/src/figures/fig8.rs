//! Figure 8: front-end response time vs profile size.
//!
//! Paper: HyRec consistently ~33% faster than CRec, gap growing with
//! profile size; Online-Ideal orders of magnitude slower.

use crate::{banner, header, RunOptions};
use hyrec_sim::load::{
    build_population, measure_crec_response, measure_hyrec_response, measure_online_ideal_response,
};

/// Runs the Figure 8 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 8",
        "Avg response time vs profile size (paper: HyRec < CRec by ~33%; online ideal way above)",
    );
    let users = if options.full { 6_000 } else { 2_000 };
    let requests = if options.full { 500 } else { 120 };
    println!("({users} users, {requests} requests per point)");
    header(&[
        "profile-size",
        "hyrec-k10(ms)",
        "hyrec-k20(ms)",
        "crec-k10(ms)",
        "crec-k20(ms)",
        "online-ideal-k10(ms)",
    ]);
    let ms = |stats: hyrec_sim::load::LatencyStats| stats.mean.as_secs_f64() * 1e3;
    let mut gaps = Vec::new();
    for ps in [10usize, 50, 100, 200, 300, 500] {
        let pop10 = build_population(users, ps, 10, options.seed);
        let pop20 = build_population(users, ps, 20, options.seed + 1);
        let hyrec10 = ms(measure_hyrec_response(&pop10, requests, options.seed));
        let hyrec20 = ms(measure_hyrec_response(&pop20, requests, options.seed));
        let crec10 = ms(measure_crec_response(&pop10, requests, options.seed));
        let crec20 = ms(measure_crec_response(&pop20, requests, options.seed));
        // The full-scan baseline is slow; sample fewer requests.
        let ideal10 = ms(measure_online_ideal_response(
            &pop10,
            requests / 4,
            options.seed,
        ));
        println!("{ps}\t{hyrec10:.3}\t{hyrec20:.3}\t{crec10:.3}\t{crec20:.3}\t{ideal10:.3}");
        gaps.push(1.0 - hyrec10 / crec10.max(1e-9));
    }
    let avg_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!(
        "# HyRec faster than CRec by {:.0}% on average (paper: ~33%); gap at ps=500: {:.0}%",
        avg_gap * 100.0,
        gaps.last().unwrap_or(&0.0) * 100.0
    );
}
