//! Section 5.6 bandwidth comparison: P2P vs HyRec per-client traffic.
//!
//! Paper: on the Digg workload "each node in a P2P recommender exchanges
//! approximately 24 MB in the whole experiment, while a HyRec widget only
//! exchanges 8 kB in the same setting (3%... of the bandwidth)".
//!
//! We run the gossip network at reduced node count for a sampled number of
//! cycles and extrapolate linearly to the full two-week, one-cycle-per-
//! minute schedule (per-node traffic is linear in cycles and independent of
//! network size). HyRec's side is computed exactly from the wire encoding
//! of the average user's requests.

use crate::{banner, header, RunOptions};
use hyrec_client::Widget;
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_gossip::{GossipConfig, GossipNetwork};
use hyrec_server::{HyRecConfig, HyRecServer};

/// Runs the Section 5.6 bandwidth comparison.
pub fn run(options: &RunOptions) {
    banner(
        "Section 5.6",
        "Per-client bandwidth, Digg workload (paper: P2P ~24MB vs HyRec ~8kB)",
    );
    let scale = options.effective_scale(0.01);
    let spec = DatasetSpec::DIGG.scaled(scale);
    let trace = TraceGenerator::new(spec, options.seed)
        .generate()
        .binarize();
    let profiles = trace.final_profiles();
    println!(
        "({} users; extrapolating to the 2-week / 1-cycle-per-minute schedule)",
        profiles.len()
    );

    // --- P2P side: sample cycles, extrapolate.
    let full_cycles = (spec.period_days * 24.0 * 60.0) as u64; // one per minute
    let sampled_cycles = if options.full { 2_000 } else { 300 };
    // Gossip nodes own (and mutate) their profiles — the P2P baseline has
    // no shared table to borrow from, so materialize owned copies here.
    let owned_profiles: Vec<_> = profiles.iter().map(|(u, p)| (*u, (**p).clone())).collect();
    let mut network = GossipNetwork::new(
        owned_profiles,
        GossipConfig {
            k: 10,
            ..GossipConfig::default()
        },
    );
    network.run(sampled_cycles);
    let report = network.bandwidth_report();
    let per_node_sampled = report.mean_bytes_per_node;
    let per_node_full = per_node_sampled * full_cycles as f64 / sampled_cycles as f64;

    // --- HyRec side: exact wire bytes for the average user's activity.
    let server = HyRecServer::with_config(HyRecConfig::builder().k(10).seed(options.seed).build());
    let widget = Widget::new();
    let mut total_bytes = 0u64;
    let mut requests = 0u64;
    for event in trace.iter() {
        server.record(event.user, event.item, event.vote);
        let job = server.build_job(event.user);
        let out = widget.run_job(&job);
        // Down: gzipped job. Up: gzipped KNN update.
        total_bytes += job.gzip_bytes() as u64 + out.update.encode().len() as u64;
        server.apply_update(&out.update);
        requests += 1;
    }
    let users = trace.user_ids().len().max(1) as u64;
    let hyrec_per_user = total_bytes as f64 / users as f64;

    header(&["architecture", "per-client-bytes", "notes"]);
    println!(
        "P2P\t{:.1}MB\t({} sampled cycles -> {} full cycles)",
        per_node_full / 1e6,
        sampled_cycles,
        full_cycles
    );
    println!(
        "HyRec\t{:.1}kB\t({:.1} requests/user avg)",
        hyrec_per_user / 1e3,
        requests as f64 / users as f64
    );
    println!(
        "# HyRec uses {:.2}% of the P2P bandwidth (paper: ~3%; ~24MB vs ~8kB)",
        100.0 * hyrec_per_user / per_node_full.max(1.0)
    );
}
