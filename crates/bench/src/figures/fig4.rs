//! Figure 4: per-user KNN quality vs activity.
//!
//! Plots each user's achieved view similarity as a percentage of their
//! ideal, against their number of KNN iterations (which tracks profile
//! size). Paper: strong positive correlation, "the vast majority of users
//! have view-similarity ratios above 70%".

use crate::{banner, header, RunOptions};
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_sim::replay::{self, ReplayConfig};

/// Runs the Figure 4 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 4",
        "Per-user % of ideal view similarity vs iterations, ML1 k=10 (paper: most users above 70%)",
    );
    let scale = options.effective_scale(1.0);
    let spec = DatasetSpec::ML1.scaled(scale);
    println!("({spec})");
    let trace = TraceGenerator::new(spec, options.seed)
        .generate()
        .binarize();
    let result = replay::replay_hyrec(
        &trace,
        &ReplayConfig {
            k: 10,
            probe_interval: 30 * 86_400,
            compute_ideal: true,
            seed: options.seed,
            ..ReplayConfig::default()
        },
    );

    let points = result.figure4_points();
    // Bucket by iteration count for a readable curve.
    header(&[
        "iterations-bucket",
        "users",
        "mean-%-of-ideal",
        "min-%",
        "max-%",
    ]);
    let buckets = [
        (1u64, 25u64),
        (25, 50),
        (50, 100),
        (100, 200),
        (200, 400),
        (400, 800),
    ];
    for (lo, hi) in buckets {
        let in_bucket: Vec<f64> = points
            .iter()
            .filter(|(i, _)| *i >= lo && *i < hi)
            .map(|(_, r)| *r * 100.0)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mean = in_bucket.iter().sum::<f64>() / in_bucket.len() as f64;
        let min = in_bucket.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = in_bucket.iter().cloned().fold(0.0, f64::max);
        println!(
            "{lo}-{hi}\t{}\t{mean:.0}\t{min:.0}\t{max:.0}",
            in_bucket.len()
        );
    }
    let above70 = points.iter().filter(|(_, r)| *r >= 0.7).count();
    println!(
        "# {}/{} users ({:.0}%) above 70% of ideal (paper: 'vast majority')",
        above70,
        points.len(),
        100.0 * above70 as f64 / points.len().max(1) as f64
    );
}
