//! Figure 5: convergence of the candidate-set size.
//!
//! Paper: for k=10 the average candidate set quickly converges to ≈55
//! instead of the 120 upper bound; small fluctuations come from new users.

use crate::{banner, header, RunOptions};
use hyrec_core::candidate_set_bound;
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_sim::replay::{self, ReplayConfig};

/// Runs the Figure 5 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 5",
        "Average candidate-set size vs time, ML1 (paper: k=10 converges to ~55 of 120)",
    );
    let scale = options.effective_scale(0.5);
    let spec = DatasetSpec::ML1.scaled(scale);
    println!("({spec})");
    let trace = TraceGenerator::new(spec, options.seed)
        .generate()
        .binarize();

    let ks = [5usize, 10, 20];
    let mut series = Vec::new();
    for &k in &ks {
        let result = replay::replay_hyrec(
            &trace,
            &ReplayConfig {
                k,
                probe_interval: 5 * 86_400,
                seed: options.seed,
                ..ReplayConfig::default()
            },
        );
        series.push(result.probes);
    }

    header(&["minute", "k=5", "k=10", "k=20"]);
    let rows = series[0].len();
    for i in 0..rows {
        let minute = series[0][i].time.minutes();
        let cols: Vec<String> = series
            .iter()
            .map(|probes| {
                probes.get(i).map_or(String::from("-"), |p| {
                    format!("{:.1}", p.avg_candidate_size)
                })
            })
            .collect();
        println!("{minute:.0}\t{}", cols.join("\t"));
    }
    for (i, &k) in ks.iter().enumerate() {
        let last = series[i].last().map_or(0.0, |p| p.avg_candidate_size);
        println!(
            "# k={k}: final avg {last:.1} vs bound {} ({:.0}%)",
            candidate_set_bound(k),
            100.0 * last / candidate_set_bound(k) as f64
        );
    }
    println!("# paper shape: converged size well below the 2k+k^2 bound (≈46% for k=10)");
}
