//! Table 2: dataset statistics.
//!
//! Regenerates the paper's dataset table from the synthetic generators.
//! At `--full` the counts match the paper row-for-row; at reduced scale the
//! per-user average is preserved while users/ratings shrink.

use crate::{banner, header, RunOptions};
use hyrec_datasets::{DatasetSpec, TraceGenerator, TraceStats};

/// Runs the Table 2 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Table 2",
        "Dataset statistics (paper: 943/1.7k/100k/106 … 59k/7.7k/783k/13)",
    );
    let scale = options.effective_scale(0.1);
    println!("(scale factor {scale})");
    header(&["dataset", "users", "items", "ratings", "avg-ratings"]);
    for spec in DatasetSpec::paper_presets() {
        let scaled = spec.scaled(scale);
        let trace = TraceGenerator::new(scaled, options.seed)
            .generate()
            .binarize();
        let stats = TraceStats::compute(&trace);
        println!(
            "{}\t{}\t{}\t{}\t{:.0}",
            spec.name, stats.users, stats.items, stats.ratings, stats.avg_ratings_per_user
        );
    }
    println!("# shape check: avg ratings/user ≈ paper (106 / 166 / 143 / 13) at any scale");
}
