//! Figure 9: response time under growing concurrency.
//!
//! Closed-loop clients against the real HTTP stack. Paper: HyRec serves as
//! many concurrent requests at ps=1000 as CRec at ps=10 (a 100-fold
//! scalability gain); both degrade as the worker pool saturates.

use crate::{banner, header, RunOptions};
use hyrec_sim::load::{build_population, closed_loop, spawn_benchmark_server};

/// Runs the Figure 9 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 9",
        "Avg response time vs concurrent clients (paper: HyRec sustains ~100x the load)",
    );
    let users = 500;
    let workers = 8;
    let clients_axis: &[usize] = if options.full {
        &[1, 2, 5, 10, 20, 50, 100, 200, 400]
    } else {
        &[1, 2, 5, 10, 20, 50]
    };
    let requests_per_client = if options.full { 20 } else { 10 };
    println!("({users} users, {workers} HTTP workers, {requests_per_client} req/client)");

    header(&[
        "clients",
        "hyrec-ps10(ms)",
        "hyrec-ps100(ms)",
        "crec-ps10(ms)",
        "crec-ps100(ms)",
    ]);
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &clients in clients_axis {
        let mut row = [0.0f64; 4];
        for (i, (ps, path)) in [
            (10usize, "/online-fast/"),
            (100, "/online-fast/"),
            (10, "/crecommend/"),
            (100, "/crecommend/"),
        ]
        .iter()
        .enumerate()
        {
            let population = build_population(users, *ps, 10, options.seed + i as u64);
            let (handle, addr) = spawn_benchmark_server(&population, workers);
            let stats = closed_loop(addr, path, users, clients, requests_per_client);
            row[i] = stats.mean.as_secs_f64() * 1e3;
            handle.stop();
        }
        println!(
            "{clients}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            row[0], row[1], row[2], row[3]
        );
        rows.push(row);
    }
    if let Some(last) = rows.last() {
        println!(
            "# at max concurrency: HyRec ps=100 {:.1}ms vs CRec ps=100 {:.1}ms (paper: HyRec sustains far more)",
            last[1], last[3]
        );
    }
}
