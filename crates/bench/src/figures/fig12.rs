//! Figure 12: widget task time vs client CPU load.
//!
//! The widget kernel time is *measured* on this machine (ps=100, k=10,
//! worst-case candidate set), then scaled through the device model
//! (laptop = this machine, smartphone ≈ 6.5×) and the fair-share
//! contention model. Paper: <10 ms laptop / <60 ms smartphone at 50% load,
//! and only slow growth with load.

use crate::{banner, header, RunOptions};
use hyrec_sim::device::{
    contended_time, measure_widget_kernel, synthetic_job, Device, FairShareCpu,
};

/// Runs the Figure 12 regeneration.
pub fn run(options: &RunOptions) {
    banner(
        "Figure 12",
        "Widget task time vs CPU load, ps=100 (paper: <10ms laptop / <60ms smartphone at 50%)",
    );
    let job = synthetic_job(100, 10, hyrec_core::candidate_set_bound(10));
    let iterations = if options.full { 200 } else { 50 };
    let kernel = measure_widget_kernel(&job, iterations);
    println!(
        "(measured kernel on this machine: {:.2}ms per job)",
        kernel.as_secs_f64() * 1e3
    );
    header(&["cpu-load(%)", "laptop(ms)", "smartphone(ms)"]);
    for load_pct in (0..=100).step_by(10) {
        let cpu = FairShareCpu::new(f64::from(load_pct) / 100.0);
        let laptop = contended_time(kernel, Device::LAPTOP, cpu);
        let phone = contended_time(kernel, Device::SMARTPHONE, cpu);
        println!(
            "{load_pct}\t{:.2}\t{:.2}",
            laptop.as_secs_f64() * 1e3,
            phone.as_secs_f64() * 1e3
        );
    }
    println!("# paper shape: ≤2x degradation from idle to fully loaded; smartphone ~6-7x laptop");
}
