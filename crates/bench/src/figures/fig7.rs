//! Figure 7: wall-clock time of offline KNN selection per back-end.
//!
//! Paper: Offline-CRec fastest everywhere (except ClusMahout on ML1), gap
//! growing with dataset size; Exhaustive worst at scale.

use crate::{banner, fmt_duration, header, RunOptions};
use hyrec_datasets::{DatasetSpec, TraceGenerator};
use hyrec_server::offline::{CRecBackend, ExhaustiveBackend, MahoutLikeBackend, OfflineBackend};
use std::time::{Duration, Instant};

/// Default scale per dataset: a strictly growing user count so the
/// size-dependence of each back-end shows, while keeping the sweep to about
/// a minute on a laptop.
fn default_scales() -> [(DatasetSpec, f64); 4] {
    [
        (DatasetSpec::ML1, 1.0),
        (DatasetSpec::ML2, 0.25),
        (DatasetSpec::ML3, 0.06),
        (DatasetSpec::DIGG, 0.08),
    ]
}

/// Measured CRec runtimes per dataset (used by Table 3).
#[derive(Debug, Clone)]
pub struct Fig7Results {
    /// `(dataset name, scaled users, full users, measured CRec runtime)`.
    pub crec_runtimes: Vec<(&'static str, usize, usize, Duration)>,
}

/// Runs the Figure 7 regeneration, returning CRec timings for Table 3.
pub fn run(options: &RunOptions) -> Fig7Results {
    banner(
        "Figure 7",
        "Wall-clock KNN selection time per back-end (paper: CRec fastest, gap grows with size)",
    );
    let k = 10;
    let mut crec_runtimes = Vec::new();
    header(&[
        "dataset",
        "users",
        "exhaustive",
        "mahout-single",
        "clus-mahout",
        "crec",
        "crec-rounds",
    ]);
    for (spec, default_scale) in default_scales() {
        let scale = options.effective_scale(default_scale);
        let scaled = spec.scaled(scale);
        let trace = TraceGenerator::new(scaled, options.seed)
            .generate()
            .binarize();
        let profiles = trace.final_profiles();

        let time = |backend: &dyn OfflineBackend| {
            let start = Instant::now();
            let table = backend.compute(&profiles, k);
            let elapsed = start.elapsed();
            std::hint::black_box(table);
            elapsed
        };

        let exhaustive = time(&ExhaustiveBackend::default());
        let mahout_single = time(&MahoutLikeBackend::single());
        let clus_mahout = time(&MahoutLikeBackend::cluster());
        let crec = CRecBackend::default();
        let start = Instant::now();
        let (_, rounds) = crec.compute_with_rounds(&profiles, k);
        let crec_time = start.elapsed();

        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            spec.name,
            profiles.len(),
            fmt_duration(exhaustive),
            fmt_duration(mahout_single),
            fmt_duration(clus_mahout),
            fmt_duration(crec_time),
            rounds,
        );
        crec_runtimes.push((spec.name, profiles.len(), spec.users, crec_time));
    }
    println!("# paper shape: CRec ≪ exhaustive at scale; Mahout between; gap grows with dataset");
    Fig7Results { crec_runtimes }
}
