//! Server configuration.

use std::fmt;

/// Configuration of a [`crate::HyRecServer`].
///
/// Defaults follow the paper: `k = 10` neighbours ("k is a system parameter
/// ranging from ten to a few tens of nodes"), `r = 10` recommendations, `k`
/// random users per candidate set, anonymization epoch of one day.
#[derive(Debug, Clone, PartialEq)]
pub struct HyRecConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Recommendation list size `r`.
    pub r: usize,
    /// Number of uniformly random users added to every candidate set
    /// (the paper uses `k`; exposed separately for ablations).
    pub random_candidates: usize,
    /// Whether candidate user ids are pseudonymized (Section 3.1).
    pub anonymize_users: bool,
    /// Seconds between pseudonym reshuffles ("periodically, the identifiers
    /// … are anonymously shuffled").
    pub anonymize_epoch_seconds: u64,
    /// Optional cap on profile sizes shipped in jobs (Section 6 suggests
    /// content providers may constrain profiles). `None` = unbounded.
    pub profile_cap: Option<usize>,
    /// RNG seed for the sampler (determinism for experiments).
    pub seed: u64,
}

impl Default for HyRecConfig {
    fn default() -> Self {
        Self {
            k: 10,
            r: 10,
            random_candidates: 10,
            anonymize_users: true,
            anonymize_epoch_seconds: 86_400,
            profile_cap: None,
            seed: 0xC0FFEE,
        }
    }
}

impl HyRecConfig {
    /// Starts a builder with default values.
    #[must_use]
    pub fn builder() -> HyRecConfigBuilder {
        HyRecConfigBuilder::default()
    }

    /// The paper's candidate-set size bound for this configuration:
    /// `k + k² + random_candidates` (equals `2k + k²` at defaults).
    #[must_use]
    pub fn candidate_bound(&self) -> usize {
        self.k + self.k * self.k + self.random_candidates
    }
}

impl fmt::Display for HyRecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} r={} rand={} anon={} cap={:?}",
            self.k, self.r, self.random_candidates, self.anonymize_users, self.profile_cap
        )
    }
}

/// Builder for [`HyRecConfig`] (Rust guideline C-BUILDER).
///
/// ```
/// use hyrec_server::HyRecConfig;
/// let config = HyRecConfig::builder().k(20).r(5).build();
/// assert_eq!(config.k, 20);
/// assert_eq!(config.candidate_bound(), 2 * 20 + 20 * 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HyRecConfigBuilder {
    config: HyRecConfig,
    random_explicit: bool,
}

impl HyRecConfigBuilder {
    /// Sets the neighbourhood size `k`. Unless overridden, the number of
    /// random candidates follows `k` as in the paper.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        if !self.random_explicit {
            self.config.random_candidates = k;
        }
        self
    }

    /// Sets the recommendation list size `r`.
    #[must_use]
    pub fn r(mut self, r: usize) -> Self {
        self.config.r = r;
        self
    }

    /// Overrides the number of random users per candidate set.
    #[must_use]
    pub fn random_candidates(mut self, n: usize) -> Self {
        self.config.random_candidates = n;
        self.random_explicit = true;
        self
    }

    /// Enables or disables user-id pseudonymization.
    #[must_use]
    pub fn anonymize_users(mut self, on: bool) -> Self {
        self.config.anonymize_users = on;
        self
    }

    /// Sets the pseudonym reshuffle period in seconds.
    #[must_use]
    pub fn anonymize_epoch_seconds(mut self, seconds: u64) -> Self {
        self.config.anonymize_epoch_seconds = seconds;
        self
    }

    /// Caps profile sizes shipped in personalization jobs.
    #[must_use]
    pub fn profile_cap(mut self, cap: usize) -> Self {
        self.config.profile_cap = Some(cap);
        self
    }

    /// Seeds the sampler RNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` — a recommender with no neighbours is meaningless
    /// and would make every candidate set empty.
    #[must_use]
    pub fn build(self) -> HyRecConfig {
        assert!(self.config.k > 0, "k must be positive");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HyRecConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.r, 10);
        assert_eq!(c.random_candidates, 10);
        assert!(c.anonymize_users);
        assert_eq!(c.candidate_bound(), 120); // 2k + k^2 for k = 10
    }

    #[test]
    fn builder_random_follows_k() {
        let c = HyRecConfig::builder().k(20).build();
        assert_eq!(c.random_candidates, 20);
        assert_eq!(c.candidate_bound(), 440);
    }

    #[test]
    fn builder_random_override_sticks() {
        let c = HyRecConfig::builder().random_candidates(5).k(20).build();
        assert_eq!(c.random_candidates, 5);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_is_rejected() {
        let _ = HyRecConfig::builder().k(0).build();
    }

    #[test]
    fn display_and_cap() {
        let c = HyRecConfig::builder().profile_cap(100).build();
        assert_eq!(c.profile_cap, Some(100));
        assert!(c.to_string().contains("cap=Some(100)"));
    }
}
