//! The anonymous mapping of Section 3.1.
//!
//! "HyRec hides the user/profile association through an anonymous mapping
//! that associates identifiers with users … and periodically changes these
//! identifiers to prevent curious users from determining which user
//! corresponds to which profile in the received candidate set."
//!
//! [`AnonymousMapping`] maintains a bijection from real user ids to
//! per-epoch pseudonyms. Jobs go out under the current epoch; KNN updates
//! may legitimately come back under the *previous* epoch (a widget can hold
//! a job across a reshuffle), so the mapping resolves pseudonyms from the
//! last two epochs.

use hyrec_core::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One epoch's bijective pseudonym table.
#[derive(Debug, Clone, Default)]
struct Epoch {
    forward: HashMap<UserId, UserId>,
    inverse: HashMap<UserId, UserId>,
}

impl Epoch {
    fn pseudonym(&mut self, real: UserId, rng: &mut StdRng) -> UserId {
        if let Some(&p) = self.forward.get(&real) {
            return p;
        }
        // Draw until unused; the 32-bit space dwarfs any real user count.
        loop {
            let candidate = UserId(rng.gen());
            if !self.inverse.contains_key(&candidate) {
                self.forward.insert(real, candidate);
                self.inverse.insert(candidate, real);
                return candidate;
            }
        }
    }
}

/// Epoch-based bijective user pseudonymization.
///
/// ```
/// use hyrec_core::UserId;
/// use hyrec_server::anonymize::AnonymousMapping;
///
/// let mut map = AnonymousMapping::new(42);
/// let p = map.pseudonymize(UserId(7));
/// assert_ne!(p, UserId(7));
/// assert_eq!(map.resolve(p), Some(UserId(7)));
///
/// map.reshuffle();
/// let p2 = map.pseudonymize(UserId(7));
/// assert_ne!(p, p2);              // new epoch, new pseudonym
/// assert_eq!(map.resolve(p), Some(UserId(7)));  // old epoch still resolves
/// ```
#[derive(Debug)]
pub struct AnonymousMapping {
    rng: StdRng,
    current: Epoch,
    previous: Epoch,
    reshuffles: u64,
}

impl AnonymousMapping {
    /// Creates a mapping with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            current: Epoch::default(),
            previous: Epoch::default(),
            reshuffles: 0,
        }
    }

    /// Returns the current-epoch pseudonym for `real`, minting one if new.
    pub fn pseudonymize(&mut self, real: UserId) -> UserId {
        self.current.pseudonym(real, &mut self.rng)
    }

    /// Resolves a pseudonym from the current or previous epoch.
    #[must_use]
    pub fn resolve(&self, pseudo: UserId) -> Option<UserId> {
        self.current
            .inverse
            .get(&pseudo)
            .or_else(|| self.previous.inverse.get(&pseudo))
            .copied()
    }

    /// Starts a new epoch: all pseudonyms are re-drawn; the previous epoch
    /// remains resolvable for in-flight updates; anything older is dropped.
    pub fn reshuffle(&mut self) {
        self.previous = std::mem::take(&mut self.current);
        self.reshuffles += 1;
    }

    /// Number of reshuffles so far.
    #[must_use]
    pub fn reshuffle_count(&self) -> u64 {
        self.reshuffles
    }

    /// Number of users with a pseudonym in the current epoch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.current.forward.len()
    }

    /// True when no pseudonym has been minted in the current epoch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.current.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_bijective_within_epoch() {
        let mut map = AnonymousMapping::new(1);
        let mut seen = std::collections::HashSet::new();
        for u in 0..1000u32 {
            let p = map.pseudonymize(UserId(u));
            assert!(seen.insert(p), "pseudonym collision for u{u}");
            assert_eq!(map.resolve(p), Some(UserId(u)));
        }
        assert_eq!(map.len(), 1000);
    }

    #[test]
    fn pseudonym_is_stable_within_epoch() {
        let mut map = AnonymousMapping::new(2);
        let a = map.pseudonymize(UserId(5));
        let b = map.pseudonymize(UserId(5));
        assert_eq!(a, b);
    }

    #[test]
    fn reshuffle_changes_pseudonyms_but_keeps_one_epoch_of_history() {
        let mut map = AnonymousMapping::new(3);
        let old = map.pseudonymize(UserId(5));
        map.reshuffle();
        let new = map.pseudonymize(UserId(5));
        assert_ne!(old, new);
        assert_eq!(map.resolve(old), Some(UserId(5)));
        assert_eq!(map.resolve(new), Some(UserId(5)));

        // Two reshuffles later the original pseudonym is gone.
        map.reshuffle();
        assert_eq!(map.resolve(old), None);
        assert_eq!(map.resolve(new), Some(UserId(5)));
        assert_eq!(map.reshuffle_count(), 2);
    }

    #[test]
    fn unknown_pseudonyms_do_not_resolve() {
        let mut map = AnonymousMapping::new(4);
        let p = map.pseudonymize(UserId(1));
        assert_eq!(map.resolve(UserId(p.0.wrapping_add(1))), None);
    }

    #[test]
    fn different_seeds_mint_different_pseudonyms() {
        let mut a = AnonymousMapping::new(5);
        let mut b = AnonymousMapping::new(6);
        assert_ne!(a.pseudonymize(UserId(1)), b.pseudonymize(UserId(1)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn resolve_inverts_pseudonymize(
                users in proptest::collection::vec(0u32..10_000, 1..200),
                seed in any::<u64>(),
            ) {
                let mut map = AnonymousMapping::new(seed);
                for &u in &users {
                    let p = map.pseudonymize(UserId(u));
                    prop_assert_eq!(map.resolve(p), Some(UserId(u)));
                }
            }
        }
    }
}
