//! Compressed-fragment caching for personalization jobs.
//!
//! The orchestrator's per-request work is "retrieve a candidate set … and
//! build a personalization job" (Section 3.1) — crucially *not* any
//! recommendation computation. The dominant cost of shipping a job is
//! serializing and gzip-compressing ~120 candidate profiles; since a
//! profile only changes when its owner rates something, this encoder caches
//! each candidate's **already-compressed** DEFLATE chunk (zlib
//! `Z_SYNC_FLUSH` framing, byte-aligned and freely concatenatable) together
//! with its CRC-32 and a cached CRC shift operator. Serving a request then
//! reduces to:
//!
//! 1. compress the tiny dynamic prefix (requester id + profile),
//! 2. memcpy the cached candidate chunks,
//! 3. fold the cached CRCs with [`hyrec_wire::crc::ShiftOp::combine`],
//! 4. append the stream terminator and gzip trailer.
//!
//! This is the engineering reason the HyRec front-end outruns the CRec
//! front-end in Figure 8: CRec must recompute item popularity over every
//! candidate profile per request, while HyRec's per-request CPU is a small
//! compress plus memcpys.
//!
//! The emitted JSON is schema-compatible with
//! [`PersonalizationJob::decode`]: the candidates array carries a leading
//! `null` sentinel (chunk-alignment artifact) which the decoder skips.

use hyrec_core::FastHashMap;
use hyrec_core::{Profile, UserId};
use hyrec_wire::crc::{crc32, ShiftOp};
use hyrec_wire::deflate::lz77::Effort;
use hyrec_wire::deflate::{compress_chunk, STREAM_TERMINATOR};
use hyrec_wire::gzip;
use hyrec_wire::PersonalizationJob;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bound on the number of cached candidate fragments.
///
/// At typical profile sizes a fragment is a few hundred bytes, so the
/// default bound keeps the cache in the tens of megabytes; million-user
/// deployments should size it to their hot set via
/// [`JobEncoder::with_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024;

/// FNV-1a over the profile's vote lists — cheap fingerprint for cache
/// validation.
fn fingerprint(profile: &Profile) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u32| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for item in profile.liked() {
        eat(item.raw());
    }
    eat(u32::MAX); // separator
    for item in profile.disliked() {
        eat(item.raw());
    }
    hash
}

/// Serializes one profile to the exact JSON shape of
/// `hyrec_wire::messages` (`{"liked":[…],"disliked":[…]}`).
fn profile_json(out: &mut String, profile: &Profile) {
    out.push_str("{\"liked\":[");
    for (i, item) in profile.liked().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.raw().to_string());
    }
    out.push_str("],\"disliked\":[");
    for (i, item) in profile.disliked().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.raw().to_string());
    }
    out.push_str("]}");
}

/// A cached, pre-compressed candidate fragment:
/// `,{"uid":<uid>,"profile":{…}}` (leading comma — the array opens with a
/// `null` sentinel so every candidate entry is comma-prefixed).
struct CachedFragment {
    fingerprint: u64,
    chunk: Arc<Vec<u8>>,
    crc: u32,
    raw_len: u64,
    shift: ShiftOp,
    /// Encoder tick of the last hit — the eviction clock. Atomic so cache
    /// hits can refresh it under the shard *read* lock.
    last_used: AtomicU64,
}

/// A fragment resolved for one batch: the cached metadata without the
/// eviction clock.
struct ResolvedFragment {
    chunk: Arc<Vec<u8>>,
    crc: u32,
    raw_len: u64,
    shift: ShiftOp,
}

/// Memoizing, chunk-assembling encoder for personalization jobs.
///
/// Thread-safe; share one per server. Output decodes with
/// [`PersonalizationJob::decode`].
///
/// ```
/// use hyrec_server::encoder::JobEncoder;
/// use hyrec_server::HyRecServer;
/// use hyrec_core::{ItemId, UserId, Vote};
/// use hyrec_wire::PersonalizationJob;
///
/// let server = HyRecServer::new();
/// server.record(UserId(1), ItemId(5), Vote::Like);
/// server.record(UserId(2), ItemId(5), Vote::Like);
/// let job = server.build_job(UserId(1));
///
/// let encoder = JobEncoder::new();
/// let bytes = encoder.encode(&job);
/// let decoded = PersonalizationJob::decode(&bytes)?;
/// assert_eq!(decoded, job);
/// # Ok::<(), hyrec_wire::WireError>(())
/// ```
pub struct JobEncoder {
    cache: RwLock<FastHashMap<UserId, CachedFragment>>,
    /// Fragment-count bound; exceeding it triggers an epoch sweep back down
    /// to half the bound (amortized O(1) per insert).
    capacity: usize,
    /// Monotonic batch counter driving `last_used` (one tick per
    /// encode/encode_jobs call, not per fragment — cheaper and just as good
    /// an LRU approximation).
    tick: AtomicU64,
}

impl Default for JobEncoder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for JobEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEncoder")
            .field("cached_profiles", &self.cache.read().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl JobEncoder {
    /// Creates an empty encoder with the default fragment-cache bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty encoder bounded to at most `capacity` cached
    /// fragments (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            cache: RwLock::new(FastHashMap::default()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// Number of cached candidate fragments.
    #[must_use]
    pub fn cached_profiles(&self) -> usize {
        self.cache.read().len()
    }

    /// The fragment-cache bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Encodes a job to a gzip member assembled from cached fragments.
    #[must_use]
    pub fn encode(&self, job: &PersonalizationJob) -> Vec<u8> {
        self.encode_jobs(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one body out")
    }

    /// Batched [`Self::encode`]: encodes a coalesced batch of jobs, one gzip
    /// member per job, byte-identical to encoding each job on its own.
    ///
    /// The batch amortizes what the scalar path pays per request: the
    /// fragment cache is consulted under **one** read lock for all jobs
    /// (per-fragment in the scalar path), freshly compressed fragments are
    /// installed under one write lock, and the JSON scratch buffer is reused
    /// across every miss and every prefix in the batch. Fragments shared by
    /// several jobs of the batch — the common case once KNN tables converge
    /// and candidate sets overlap — are resolved and (on miss) compressed
    /// exactly once.
    #[must_use]
    pub fn encode_jobs(&self, jobs: &[PersonalizationJob]) -> Vec<Vec<u8>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;

        // Pass 1 — resolve every distinct (user, fingerprint) against the
        // cache under a single read lock. Hits copy their metadata out;
        // misses remember the profile to compress after the lock drops.
        let mut slot_index: FastHashMap<(UserId, u64), u32> = FastHashMap::default();
        let mut slots: Vec<Option<ResolvedFragment>> = Vec::new();
        let mut misses: Vec<(UserId, &Profile, u64, u32)> = Vec::new();
        let mut job_slots: Vec<Vec<u32>> = Vec::with_capacity(jobs.len());
        {
            let cache = self.cache.read();
            for job in jobs {
                let mut per_job = Vec::with_capacity(job.candidates.len());
                for candidate in job.candidates.iter() {
                    let fp = fingerprint(&candidate.profile);
                    let slot = match slot_index.entry((candidate.user, fp)) {
                        std::collections::hash_map::Entry::Occupied(entry) => *entry.get(),
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            let slot = slots.len() as u32;
                            match cache.get(&candidate.user) {
                                Some(hit) if hit.fingerprint == fp => {
                                    hit.last_used.store(tick, Ordering::Relaxed);
                                    slots.push(Some(ResolvedFragment {
                                        chunk: Arc::clone(&hit.chunk),
                                        crc: hit.crc,
                                        raw_len: hit.raw_len,
                                        shift: hit.shift,
                                    }));
                                }
                                _ => {
                                    slots.push(None);
                                    misses.push((candidate.user, &candidate.profile, fp, slot));
                                }
                            }
                            entry.insert(slot);
                            slot
                        }
                    };
                    per_job.push(slot);
                }
                job_slots.push(per_job);
            }
        }

        // Pass 2 — compress the misses with no lock held, reusing one JSON
        // scratch buffer for the whole batch.
        let mut scratch = String::new();
        for &(user, profile, _, slot) in &misses {
            scratch.clear();
            scratch.push_str(",{\"uid\":");
            scratch.push_str(&user.raw().to_string());
            scratch.push_str(",\"profile\":");
            profile_json(&mut scratch, profile);
            scratch.push('}');
            let raw = scratch.as_bytes();
            slots[slot as usize] = Some(ResolvedFragment {
                chunk: Arc::new(compress_chunk(raw, Effort::FAST)),
                crc: crc32(raw),
                raw_len: raw.len() as u64,
                shift: ShiftOp::for_len(raw.len() as u64),
            });
        }

        // Pass 3 — install the misses under one write lock, then sweep if
        // the bound is exceeded. (If the same user appears with two distinct
        // fingerprints in one batch — impossible via `build_jobs`, which
        // snapshots each profile once — the later insert wins, matching the
        // bytes a sequential encode would produce for every job.)
        if !misses.is_empty() {
            let mut cache = self.cache.write();
            for &(user, _, fp, slot) in &misses {
                let resolved = slots[slot as usize].as_ref().expect("miss compressed");
                cache.insert(
                    user,
                    CachedFragment {
                        fingerprint: fp,
                        chunk: Arc::clone(&resolved.chunk),
                        crc: resolved.crc,
                        raw_len: resolved.raw_len,
                        shift: resolved.shift,
                        last_used: AtomicU64::new(tick),
                    },
                );
            }
            self.evict_excess(&mut cache);
        }

        // Pass 4 — assemble each job's gzip member from the resolved
        // fragments, reusing the scratch buffer for the dynamic prefixes.
        const SUFFIX: &[u8] = b"]}";
        let suffix_chunk = compress_chunk(SUFFIX, Effort::FAST);
        let suffix_crc = crc32(SUFFIX);
        let suffix_shift = ShiftOp::for_len(SUFFIX.len() as u64);

        jobs.iter()
            .zip(&job_slots)
            .map(|(job, per_job)| {
                // Dynamic prefix: requester id, parameters, requester
                // profile, and the `null` sentinel that makes candidate
                // fragments comma-prefixed.
                scratch.clear();
                scratch.push_str("{\"uid\":");
                scratch.push_str(&job.uid.raw().to_string());
                scratch.push_str(",\"k\":");
                scratch.push_str(&job.k.to_string());
                scratch.push_str(",\"r\":");
                scratch.push_str(&job.r.to_string());
                if job.lease != 0 || job.epoch != 0 {
                    // Same conditional shape as `PersonalizationJob::to_json`:
                    // unleased jobs keep the seed wire format byte-for-byte.
                    scratch.push_str(",\"lease\":");
                    scratch.push_str(&job.lease.to_string());
                    scratch.push_str(",\"epoch\":");
                    scratch.push_str(&job.epoch.to_string());
                }
                scratch.push_str(",\"profile\":");
                profile_json(&mut scratch, &job.profile);
                scratch.push_str(",\"candidates\":[null");
                let prefix = scratch.as_bytes();

                let mut out = Vec::with_capacity(1024 + job.candidates.len() * 256);
                out.extend_from_slice(&gzip::HEADER);
                out.extend_from_slice(&compress_chunk(prefix, Effort::FAST));

                let mut crc = crc32(prefix);
                let mut total_len = prefix.len() as u64;

                for &slot in per_job {
                    let frag = slots[slot as usize].as_ref().expect("slot resolved");
                    out.extend_from_slice(&frag.chunk);
                    crc = frag.shift.combine(crc, frag.crc);
                    total_len += frag.raw_len;
                }

                out.extend_from_slice(&suffix_chunk);
                crc = suffix_shift.combine(crc, suffix_crc);
                total_len += SUFFIX.len() as u64;

                out.extend_from_slice(&STREAM_TERMINATOR);
                out.extend_from_slice(&crc.to_le_bytes());
                out.extend_from_slice(&((total_len & 0xFFFF_FFFF) as u32).to_le_bytes());
                out
            })
            .collect()
    }

    /// Epoch sweep: when the cache exceeds its bound, drop the
    /// least-recently-used half so inserts stay amortized O(1).
    fn evict_excess(&self, cache: &mut FastHashMap<UserId, CachedFragment>) {
        if cache.len() <= self.capacity {
            return;
        }
        let target = self.capacity / 2;
        let mut ages: Vec<(u64, UserId)> = cache
            .iter()
            .map(|(user, entry)| (entry.last_used.load(Ordering::Relaxed), *user))
            .collect();
        ages.sort_unstable();
        let excess = cache.len() - target;
        for &(_, user) in ages.iter().take(excess) {
            cache.remove(&user);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::CandidateSet;

    fn job() -> PersonalizationJob {
        let mut candidates = CandidateSet::new();
        candidates.insert(UserId(2), Profile::from_liked([4u32, 5, 6]));
        candidates.insert(UserId(3), Profile::from_votes([7u32], [8u32]));
        PersonalizationJob {
            uid: UserId(1),
            k: 2,
            r: 3,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked([1u32, 2]).into(),
            candidates,
        }
    }

    #[test]
    fn output_is_decodable_and_equal() {
        let job = job();
        let encoder = JobEncoder::new();
        let bytes = encoder.encode(&job);
        let decoded = PersonalizationJob::decode(&bytes).unwrap();
        assert_eq!(decoded, job);
    }

    #[test]
    fn gzip_frame_is_self_consistent() {
        // The assembled member must pass full gzip validation (CRC, ISIZE).
        let job = job();
        let encoder = JobEncoder::new();
        let bytes = encoder.encode(&job);
        let raw = hyrec_wire::gzip::decompress(&bytes).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("{\"uid\":1"));
        assert!(text.contains("\"candidates\":[null,"));
        assert!(text.ends_with("]}"));
    }

    #[test]
    fn cache_hits_on_unchanged_profiles() {
        let job = job();
        let encoder = JobEncoder::new();
        let _ = encoder.encode(&job);
        assert_eq!(encoder.cached_profiles(), 2);
        let a = encoder.encode(&job);
        let b = encoder.encode(&job);
        assert_eq!(a, b);
        assert_eq!(encoder.cached_profiles(), 2);
    }

    #[test]
    fn cache_invalidates_on_profile_change() {
        let mut job = job();
        let encoder = JobEncoder::new();
        let before = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(before.candidates.len(), 2);

        // Mutate a *candidate* profile: the cached fragment must refresh.
        let mut candidates = CandidateSet::new();
        let mut changed = Profile::from_liked([4u32, 5, 6]);
        changed.record(hyrec_core::ItemId(999), hyrec_core::Vote::Like);
        candidates.insert(UserId(2), changed);
        candidates.insert(UserId(3), Profile::from_votes([7u32], [8u32]));
        job.candidates = candidates;

        let after = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        let c2 = after
            .candidates
            .iter()
            .find(|c| c.user == UserId(2))
            .unwrap();
        assert!(c2.profile.likes(hyrec_core::ItemId(999)));
    }

    #[test]
    fn leased_job_encodes_credentials() {
        let mut leased = job();
        leased.lease = 31;
        leased.epoch = 4;
        let encoder = JobEncoder::new();
        let decoded = PersonalizationJob::decode(&encoder.encode(&leased)).unwrap();
        assert_eq!(decoded, leased);
        assert_eq!((decoded.lease, decoded.epoch), (31, 4));
        // The raw JSON carries the fields in the canonical position.
        let raw = hyrec_wire::gzip::decompress(&encoder.encode(&leased)).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.contains(",\"lease\":31,\"epoch\":4,\"profile\":"));
        // The unleased twin's bytes are identical to the scalar wire shape
        // (no lease keys at all) and still cache-share fragments.
        let plain = encoder.encode(&job());
        let text = String::from_utf8(hyrec_wire::gzip::decompress(&plain).unwrap()).unwrap();
        assert!(!text.contains("lease"));
    }

    #[test]
    fn fingerprint_distinguishes_likes_from_dislikes() {
        let liked = Profile::from_liked([1u32, 2]);
        let disliked = Profile::from_votes(Vec::<u32>::new(), [1u32, 2]);
        assert_ne!(fingerprint(&liked), fingerprint(&disliked));
    }

    #[test]
    fn empty_job_encodes() {
        let job = PersonalizationJob {
            uid: UserId(0),
            k: 1,
            r: 1,
            lease: 0,
            epoch: 0,
            profile: Profile::new().into(),
            candidates: CandidateSet::new(),
        };
        let encoder = JobEncoder::new();
        let decoded = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(decoded, job);
    }

    #[test]
    fn encode_jobs_matches_scalar_encode() {
        // A batch with heavy candidate overlap (the converged-table regime):
        // batched output must be byte-identical to scalar encodes, both from
        // a cold cache and a warm one.
        let jobs: Vec<PersonalizationJob> = (0..8u32)
            .map(|j| {
                let mut candidates = CandidateSet::new();
                for u in 0..20u32 {
                    candidates.insert(
                        UserId(100 + (u + j) % 25),
                        Profile::from_liked((0..15u32).map(|i| ((u + j) % 25) * 10 + i)),
                    );
                }
                PersonalizationJob {
                    uid: UserId(j),
                    k: 5,
                    r: 5,
                    lease: 0,
                    epoch: 0,
                    profile: Profile::from_liked([j, j + 1, j + 2]).into(),
                    candidates,
                }
            })
            .collect();

        let batch_encoder = JobEncoder::new();
        let scalar_encoder = JobEncoder::new();
        let batched = batch_encoder.encode_jobs(&jobs);
        let scalar: Vec<Vec<u8>> = jobs.iter().map(|job| scalar_encoder.encode(job)).collect();
        assert_eq!(batched, scalar, "cold-cache divergence");
        assert_eq!(
            batch_encoder.cached_profiles(),
            scalar_encoder.cached_profiles()
        );

        // Warm pass: all hits, still identical.
        assert_eq!(
            batch_encoder.encode_jobs(&jobs),
            jobs.iter()
                .map(|job| scalar_encoder.encode(job))
                .collect::<Vec<_>>()
        );
        // Every body decodes to its job.
        for (job, body) in jobs.iter().zip(&batched) {
            assert_eq!(&PersonalizationJob::decode(body).unwrap(), job);
        }
        assert!(batch_encoder.encode_jobs(&[]).is_empty());
    }

    #[test]
    fn cache_bound_holds_under_churn() {
        let encoder = JobEncoder::with_capacity(16);
        assert_eq!(encoder.capacity(), 16);
        // 40 rounds of jobs over a rolling window of fresh users: the cache
        // must never exceed its bound, and recently-used fragments must
        // survive the sweeps that evict stale ones.
        for round in 0..40u32 {
            let mut candidates = CandidateSet::new();
            for u in 0..8u32 {
                candidates.insert(
                    UserId(round * 8 + u),
                    Profile::from_liked([round * 8 + u, u]),
                );
            }
            let job = PersonalizationJob {
                uid: UserId(0),
                k: 3,
                r: 3,
                lease: 0,
                epoch: 0,
                profile: Profile::from_liked([1u32]).into(),
                candidates,
            };
            let first = encoder.encode(&job);
            assert!(
                encoder.cached_profiles() <= 16,
                "round {round}: cache grew to {}",
                encoder.cached_profiles()
            );
            // Re-encoding right away is served from cache, byte-identical.
            assert_eq!(encoder.encode(&job), first);
        }
    }

    #[test]
    fn eviction_prefers_stale_fragments() {
        let encoder = JobEncoder::with_capacity(8);
        let hot_job = PersonalizationJob {
            uid: UserId(0),
            k: 2,
            r: 2,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked([1u32]).into(),
            candidates: {
                let mut c = CandidateSet::new();
                c.insert(UserId(1), Profile::from_liked([10u32, 11]));
                c
            },
        };
        // Touch the hot fragment every round while churning cold users.
        for round in 0..30u32 {
            let _ = encoder.encode(&hot_job);
            let mut candidates = CandidateSet::new();
            candidates.insert(UserId(1000 + round), Profile::from_liked([round]));
            let cold = PersonalizationJob {
                uid: UserId(2),
                k: 2,
                r: 2,
                lease: 0,
                epoch: 0,
                profile: Profile::new().into(),
                candidates,
            };
            let _ = encoder.encode(&cold);
        }
        // The hot user's fragment was re-ticked every round; a final encode
        // after all that churn still hits (cache size stays at bound, so a
        // miss would be observable as a recompression — assert via cache
        // introspection instead: the bound held and output is stable).
        assert!(encoder.cached_profiles() <= 8);
        let a = encoder.encode(&hot_job);
        let b = encoder.encode(&hot_job);
        assert_eq!(a, b);
    }

    #[test]
    fn many_candidates_round_trip() {
        let mut candidates = CandidateSet::new();
        for u in 10..150u32 {
            candidates.insert(
                UserId(u),
                Profile::from_liked((0..40u32).map(|i| u * 13 + i * 3).collect::<Vec<_>>()),
            );
        }
        let job = PersonalizationJob {
            uid: UserId(1),
            k: 10,
            r: 10,
            lease: 0,
            epoch: 0,
            profile: Profile::from_liked(0u32..50).into(),
            candidates,
        };
        let encoder = JobEncoder::new();
        let decoded = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(decoded, job);
        // Second encode is all cache hits and byte-identical.
        assert_eq!(encoder.encode(&job), encoder.encode(&job));
    }
}
