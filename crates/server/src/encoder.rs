//! Compressed-fragment caching for personalization jobs.
//!
//! The orchestrator's per-request work is "retrieve a candidate set … and
//! build a personalization job" (Section 3.1) — crucially *not* any
//! recommendation computation. The dominant cost of shipping a job is
//! serializing and gzip-compressing ~120 candidate profiles; since a
//! profile only changes when its owner rates something, this encoder caches
//! each candidate's **already-compressed** DEFLATE chunk (zlib
//! `Z_SYNC_FLUSH` framing, byte-aligned and freely concatenatable) together
//! with its CRC-32 and a cached CRC shift operator. Serving a request then
//! reduces to:
//!
//! 1. compress the tiny dynamic prefix (requester id + profile),
//! 2. memcpy the cached candidate chunks,
//! 3. fold the cached CRCs with [`hyrec_wire::crc::ShiftOp::combine`],
//! 4. append the stream terminator and gzip trailer.
//!
//! This is the engineering reason the HyRec front-end outruns the CRec
//! front-end in Figure 8: CRec must recompute item popularity over every
//! candidate profile per request, while HyRec's per-request CPU is a small
//! compress plus memcpys.
//!
//! The emitted JSON is schema-compatible with
//! [`PersonalizationJob::decode`]: the candidates array carries a leading
//! `null` sentinel (chunk-alignment artifact) which the decoder skips.

use hyrec_core::FastHashMap;
use hyrec_core::{Profile, UserId};
use hyrec_wire::crc::{crc32, ShiftOp};
use hyrec_wire::deflate::lz77::Effort;
use hyrec_wire::deflate::{compress_chunk, STREAM_TERMINATOR};
use hyrec_wire::gzip;
use hyrec_wire::PersonalizationJob;
use parking_lot::RwLock;
use std::sync::Arc;

/// FNV-1a over the profile's vote lists — cheap fingerprint for cache
/// validation.
fn fingerprint(profile: &Profile) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u32| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for item in profile.liked() {
        eat(item.raw());
    }
    eat(u32::MAX); // separator
    for item in profile.disliked() {
        eat(item.raw());
    }
    hash
}

/// Serializes one profile to the exact JSON shape of
/// `hyrec_wire::messages` (`{"liked":[…],"disliked":[…]}`).
fn profile_json(out: &mut String, profile: &Profile) {
    out.push_str("{\"liked\":[");
    for (i, item) in profile.liked().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.raw().to_string());
    }
    out.push_str("],\"disliked\":[");
    for (i, item) in profile.disliked().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item.raw().to_string());
    }
    out.push_str("]}");
}

/// A cached, pre-compressed candidate fragment:
/// `,{"uid":<uid>,"profile":{…}}` (leading comma — the array opens with a
/// `null` sentinel so every candidate entry is comma-prefixed).
struct CachedFragment {
    fingerprint: u64,
    chunk: Arc<Vec<u8>>,
    crc: u32,
    raw_len: u64,
    shift: ShiftOp,
}

/// Memoizing, chunk-assembling encoder for personalization jobs.
///
/// Thread-safe; share one per server. Output decodes with
/// [`PersonalizationJob::decode`].
///
/// ```
/// use hyrec_server::encoder::JobEncoder;
/// use hyrec_server::HyRecServer;
/// use hyrec_core::{ItemId, UserId, Vote};
/// use hyrec_wire::PersonalizationJob;
///
/// let server = HyRecServer::new();
/// server.record(UserId(1), ItemId(5), Vote::Like);
/// server.record(UserId(2), ItemId(5), Vote::Like);
/// let job = server.build_job(UserId(1));
///
/// let encoder = JobEncoder::new();
/// let bytes = encoder.encode(&job);
/// let decoded = PersonalizationJob::decode(&bytes)?;
/// assert_eq!(decoded, job);
/// # Ok::<(), hyrec_wire::WireError>(())
/// ```
#[derive(Default)]
pub struct JobEncoder {
    cache: RwLock<FastHashMap<UserId, CachedFragment>>,
}

impl std::fmt::Debug for JobEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEncoder")
            .field("cached_profiles", &self.cache.read().len())
            .finish()
    }
}

impl JobEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached candidate fragments.
    #[must_use]
    pub fn cached_profiles(&self) -> usize {
        self.cache.read().len()
    }

    /// Fetches (or builds) the compressed fragment for one candidate.
    fn fragment(&self, user: UserId, profile: &Profile) -> (Arc<Vec<u8>>, u32, u64, ShiftOp) {
        let fp = fingerprint(profile);
        if let Some(entry) = self.cache.read().get(&user) {
            if entry.fingerprint == fp {
                return (
                    Arc::clone(&entry.chunk),
                    entry.crc,
                    entry.raw_len,
                    entry.shift,
                );
            }
        }
        let mut raw = String::with_capacity(32 + profile.exposure_len() * 7);
        raw.push_str(",{\"uid\":");
        raw.push_str(&user.raw().to_string());
        raw.push_str(",\"profile\":");
        profile_json(&mut raw, profile);
        raw.push('}');
        let raw = raw.into_bytes();
        let chunk = Arc::new(compress_chunk(&raw, Effort::FAST));
        let crc = crc32(&raw);
        let raw_len = raw.len() as u64;
        let shift = ShiftOp::for_len(raw_len);
        self.cache.write().insert(
            user,
            CachedFragment {
                fingerprint: fp,
                chunk: Arc::clone(&chunk),
                crc,
                raw_len,
                shift,
            },
        );
        (chunk, crc, raw_len, shift)
    }

    /// Encodes a job to a gzip member assembled from cached fragments.
    #[must_use]
    pub fn encode(&self, job: &PersonalizationJob) -> Vec<u8> {
        // Dynamic prefix: requester id, parameters, requester profile, and
        // the `null` sentinel that makes candidate fragments comma-prefixed.
        let mut prefix = String::with_capacity(64 + job.profile.exposure_len() * 7);
        prefix.push_str("{\"uid\":");
        prefix.push_str(&job.uid.raw().to_string());
        prefix.push_str(",\"k\":");
        prefix.push_str(&job.k.to_string());
        prefix.push_str(",\"r\":");
        prefix.push_str(&job.r.to_string());
        prefix.push_str(",\"profile\":");
        profile_json(&mut prefix, &job.profile);
        prefix.push_str(",\"candidates\":[null");
        let prefix = prefix.into_bytes();

        const SUFFIX: &[u8] = b"]}";

        let mut out = Vec::with_capacity(1024 + job.candidates.len() * 256);
        out.extend_from_slice(&gzip::HEADER);
        out.extend_from_slice(&compress_chunk(&prefix, Effort::FAST));

        let mut crc = crc32(&prefix);
        let mut total_len = prefix.len() as u64;

        for candidate in job.candidates.iter() {
            let (chunk, frag_crc, frag_len, shift) =
                self.fragment(candidate.user, &candidate.profile);
            out.extend_from_slice(&chunk);
            crc = shift.combine(crc, frag_crc);
            total_len += frag_len;
        }

        out.extend_from_slice(&compress_chunk(SUFFIX, Effort::FAST));
        crc = ShiftOp::for_len(SUFFIX.len() as u64).combine(crc, crc32(SUFFIX));
        total_len += SUFFIX.len() as u64;

        out.extend_from_slice(&STREAM_TERMINATOR);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&((total_len & 0xFFFF_FFFF) as u32).to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::CandidateSet;

    fn job() -> PersonalizationJob {
        let mut candidates = CandidateSet::new();
        candidates.insert(UserId(2), Profile::from_liked([4u32, 5, 6]));
        candidates.insert(UserId(3), Profile::from_votes([7u32], [8u32]));
        PersonalizationJob {
            uid: UserId(1),
            k: 2,
            r: 3,
            profile: Profile::from_liked([1u32, 2]).into(),
            candidates,
        }
    }

    #[test]
    fn output_is_decodable_and_equal() {
        let job = job();
        let encoder = JobEncoder::new();
        let bytes = encoder.encode(&job);
        let decoded = PersonalizationJob::decode(&bytes).unwrap();
        assert_eq!(decoded, job);
    }

    #[test]
    fn gzip_frame_is_self_consistent() {
        // The assembled member must pass full gzip validation (CRC, ISIZE).
        let job = job();
        let encoder = JobEncoder::new();
        let bytes = encoder.encode(&job);
        let raw = hyrec_wire::gzip::decompress(&bytes).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("{\"uid\":1"));
        assert!(text.contains("\"candidates\":[null,"));
        assert!(text.ends_with("]}"));
    }

    #[test]
    fn cache_hits_on_unchanged_profiles() {
        let job = job();
        let encoder = JobEncoder::new();
        let _ = encoder.encode(&job);
        assert_eq!(encoder.cached_profiles(), 2);
        let a = encoder.encode(&job);
        let b = encoder.encode(&job);
        assert_eq!(a, b);
        assert_eq!(encoder.cached_profiles(), 2);
    }

    #[test]
    fn cache_invalidates_on_profile_change() {
        let mut job = job();
        let encoder = JobEncoder::new();
        let before = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(before.candidates.len(), 2);

        // Mutate a *candidate* profile: the cached fragment must refresh.
        let mut candidates = CandidateSet::new();
        let mut changed = Profile::from_liked([4u32, 5, 6]);
        changed.record(hyrec_core::ItemId(999), hyrec_core::Vote::Like);
        candidates.insert(UserId(2), changed);
        candidates.insert(UserId(3), Profile::from_votes([7u32], [8u32]));
        job.candidates = candidates;

        let after = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        let c2 = after
            .candidates
            .iter()
            .find(|c| c.user == UserId(2))
            .unwrap();
        assert!(c2.profile.likes(hyrec_core::ItemId(999)));
    }

    #[test]
    fn fingerprint_distinguishes_likes_from_dislikes() {
        let liked = Profile::from_liked([1u32, 2]);
        let disliked = Profile::from_votes(Vec::<u32>::new(), [1u32, 2]);
        assert_ne!(fingerprint(&liked), fingerprint(&disliked));
    }

    #[test]
    fn empty_job_encodes() {
        let job = PersonalizationJob {
            uid: UserId(0),
            k: 1,
            r: 1,
            profile: Profile::new().into(),
            candidates: CandidateSet::new(),
        };
        let encoder = JobEncoder::new();
        let decoded = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(decoded, job);
    }

    #[test]
    fn many_candidates_round_trip() {
        let mut candidates = CandidateSet::new();
        for u in 10..150u32 {
            candidates.insert(
                UserId(u),
                Profile::from_liked((0..40u32).map(|i| u * 13 + i * 3).collect::<Vec<_>>()),
            );
        }
        let job = PersonalizationJob {
            uid: UserId(1),
            k: 10,
            r: 10,
            profile: Profile::from_liked(0u32..50).into(),
            candidates,
        };
        let encoder = JobEncoder::new();
        let decoded = PersonalizationJob::decode(&encoder.encode(&job)).unwrap();
        assert_eq!(decoded, job);
        // Second encode is all cache hits and byte-identical.
        assert_eq!(encoder.encode(&job), encoder.encode(&job));
    }
}
