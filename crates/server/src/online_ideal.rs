//! The Online-Ideal baseline: exact KNN on every request.
//!
//! "The online-ideal solution … provides an upper bound on recommendation
//! performance by computing the ideal KNN before providing each
//! recommendation. While interesting as a baseline, such a protocol is
//! inapplicable due to its huge response times" (Sections 5.2–5.3, the
//! `Online Ideal` series of Figures 3, 6 and 8).

use hyrec_core::{knn, recommend, Neighborhood, ProfileTable, Recommendation, Similarity, UserId};

/// Brute-force per-request recommender over the full profile table.
#[derive(Debug, Clone, Copy)]
pub struct OnlineIdeal<'a, S> {
    profiles: &'a ProfileTable,
    metric: S,
    k: usize,
}

impl<'a, S: Similarity> OnlineIdeal<'a, S> {
    /// Creates the baseline over the global profile table.
    #[must_use]
    pub fn new(profiles: &'a ProfileTable, metric: S, k: usize) -> Self {
        Self {
            profiles,
            metric,
            k,
        }
    }

    /// Computes the exact KNN of `user` by scanning every profile.
    #[must_use]
    pub fn ideal_knn(&self, user: UserId) -> Neighborhood {
        let profile = self.profiles.get(user).unwrap_or_default();
        let snapshot = self.profiles.snapshot();
        knn::select(
            &profile,
            snapshot
                .iter()
                .filter(|(u, _)| *u != user)
                .map(|(u, p)| (*u, p.as_ref())),
            self.k,
            &self.metric,
        )
    }

    /// Serves one request: exact KNN, then Algorithm 2 over the result.
    #[must_use]
    pub fn recommend(&self, user: UserId, r: usize) -> Vec<Recommendation> {
        let profile = self.profiles.get(user).unwrap_or_default();
        let hood = self.ideal_knn(user);
        let neighbor_profiles: Vec<_> = hood.users().filter_map(|v| self.profiles.get(v)).collect();
        recommend::most_popular(&profile, neighbor_profiles.iter().map(AsRef::as_ref), r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{Cosine, ItemId, Vote};

    fn table() -> ProfileTable {
        let profiles = ProfileTable::new();
        // Two clusters: users 0-4 like items 0-5, users 5-9 like 100-105.
        for u in 0..10u32 {
            let base = if u < 5 { 0 } else { 100 };
            for i in 0..6u32 {
                profiles.record(UserId(u), ItemId(base + i), Vote::Like);
            }
        }
        profiles
    }

    #[test]
    fn ideal_knn_finds_the_cluster() {
        let profiles = table();
        let ideal = OnlineIdeal::new(&profiles, Cosine, 4);
        let hood = ideal.ideal_knn(UserId(0));
        assert_eq!(hood.len(), 4);
        for n in hood.iter() {
            assert!(n.user.0 < 5, "out-of-cluster neighbour {}", n.user);
            assert!((n.similarity - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_knn_excludes_self() {
        let profiles = table();
        let ideal = OnlineIdeal::new(&profiles, Cosine, 9);
        let hood = ideal.ideal_knn(UserId(3));
        assert!(!hood.contains(UserId(3)));
        assert_eq!(hood.len(), 9);
    }

    #[test]
    fn recommendation_uses_exact_neighbors() {
        let profiles = table();
        // u0 misses item 5? No - all cluster members share items. Give u1 an
        // extra item that u0 has not seen.
        profiles.record(UserId(1), ItemId(50), Vote::Like);
        let ideal = OnlineIdeal::new(&profiles, Cosine, 4);
        let recs = ideal.recommend(UserId(0), 5);
        assert!(recs.iter().any(|r| r.item == ItemId(50)));
        // Nothing from the other cluster.
        assert!(recs.iter().all(|r| r.item.0 < 100));
    }

    #[test]
    fn unknown_user_gets_zero_similarity_neighbors() {
        let profiles = table();
        let ideal = OnlineIdeal::new(&profiles, Cosine, 3);
        let hood = ideal.ideal_knn(UserId(42));
        assert_eq!(hood.len(), 3);
        assert_eq!(hood.view_similarity(), 0.0);
    }
}
