//! The CRec front-end — the centralized baseline's request path.
//!
//! In the Offline-CRec architecture (Section 5.4–5.5) a front-end server
//! answers every client request by computing item recommendations *on the
//! server* from the KNN table that a back-end refreshed offline. This is the
//! "CRec" line of Figures 8 and 9: its per-request cost grows with profile
//! size because Algorithm 2 runs server-side, whereas HyRec's server only
//! assembles and compresses a message.

use hyrec_core::{
    recommend, KnnTable, Neighborhood, Profile, ProfileTable, Recommendation, UserId,
};

/// Centralized front-end serving recommendations from precomputed KNN.
///
/// Borrows the global tables; the back-end (any [`crate::OfflineBackend`])
/// refreshes the KNN table out of band.
///
/// ```
/// use hyrec_core::{ItemId, KnnTable, Neighbor, Neighborhood, ProfileTable, UserId, Vote};
/// use hyrec_server::CRecFrontEnd;
///
/// let profiles = ProfileTable::new();
/// let knn = KnnTable::new();
/// profiles.record(UserId(1), ItemId(1), Vote::Like);
/// profiles.record(UserId(2), ItemId(1), Vote::Like);
/// profiles.record(UserId(2), ItemId(2), Vote::Like);
/// knn.update(UserId(1), Neighborhood::from_neighbors([
///     Neighbor { user: UserId(2), similarity: 0.7 },
/// ]));
///
/// let front = CRecFrontEnd::new(&profiles, &knn);
/// let recs = front.recommend(UserId(1), 5);
/// assert_eq!(recs[0].item, ItemId(2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CRecFrontEnd<'a> {
    profiles: &'a ProfileTable,
    knn: &'a KnnTable,
}

impl<'a> CRecFrontEnd<'a> {
    /// Creates a front-end over the global tables.
    #[must_use]
    pub fn new(profiles: &'a ProfileTable, knn: &'a KnnTable) -> Self {
        Self { profiles, knn }
    }

    /// Serves one request: Algorithm 2 over the user's stored neighbours.
    ///
    /// Unknown users or users with no KNN entry get an empty list (the
    /// centralized architecture cannot recommend before the next offline
    /// KNN pass — the cold-start weakness Section 5.3 highlights).
    #[must_use]
    pub fn recommend(&self, user: UserId, r: usize) -> Vec<Recommendation> {
        let profile = self.profiles.get(user).unwrap_or_default();
        let hood = self.knn.get(user).unwrap_or_default();
        self.recommend_from(&profile, &hood, r)
    }

    /// The server-side recommendation kernel, exposed for benchmarking the
    /// exact per-request work (Figure 8 measures this loop).
    #[must_use]
    pub fn recommend_from(
        &self,
        profile: &Profile,
        hood: &Neighborhood,
        r: usize,
    ) -> Vec<Recommendation> {
        // `get` hands back shared handles; no profile is copied here.
        let neighbor_profiles: Vec<std::sync::Arc<Profile>> =
            hood.users().filter_map(|v| self.profiles.get(v)).collect();
        recommend::most_popular(profile, neighbor_profiles.iter().map(AsRef::as_ref), r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{ItemId, Neighbor, Vote};

    fn tables() -> (ProfileTable, KnnTable) {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        // u1 likes 1; u2 and u3 like overlapping sets.
        profiles.record(UserId(1), ItemId(1), Vote::Like);
        for i in [1u32, 2, 3] {
            profiles.record(UserId(2), ItemId(i), Vote::Like);
        }
        for i in [2u32, 3, 4] {
            profiles.record(UserId(3), ItemId(i), Vote::Like);
        }
        knn.update(
            UserId(1),
            Neighborhood::from_neighbors([
                Neighbor {
                    user: UserId(2),
                    similarity: 0.6,
                },
                Neighbor {
                    user: UserId(3),
                    similarity: 0.3,
                },
            ]),
        );
        (profiles, knn)
    }

    #[test]
    fn recommends_neighbors_popular_unseen_items() {
        let (profiles, knn) = tables();
        let front = CRecFrontEnd::new(&profiles, &knn);
        let recs = front.recommend(UserId(1), 10);
        // Items 2 and 3 are liked by both neighbours; 1 is excluded (seen).
        assert_eq!(recs[0].item, ItemId(2));
        assert_eq!(recs[0].popularity, 2);
        assert!(recs.iter().all(|rec| rec.item != ItemId(1)));
    }

    #[test]
    fn user_without_knn_gets_nothing() {
        let (profiles, knn) = tables();
        let front = CRecFrontEnd::new(&profiles, &knn);
        assert!(front.recommend(UserId(2), 5).is_empty());
        assert!(front.recommend(UserId(999), 5).is_empty());
    }

    #[test]
    fn respects_r() {
        let (profiles, knn) = tables();
        let front = CRecFrontEnd::new(&profiles, &knn);
        assert_eq!(front.recommend(UserId(1), 1).len(), 1);
        assert!(front.recommend(UserId(1), 0).is_empty());
    }

    #[test]
    fn missing_neighbor_profiles_are_skipped() {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        profiles.record(UserId(1), ItemId(1), Vote::Like);
        knn.update(
            UserId(1),
            Neighborhood::from_neighbors([Neighbor {
                user: UserId(77),
                similarity: 0.9,
            }]),
        );
        let front = CRecFrontEnd::new(&profiles, &knn);
        assert!(front.recommend(UserId(1), 5).is_empty());
    }
}
