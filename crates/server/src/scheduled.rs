//! The scheduled pipeline: [`HyRecServer`] routed through the
//! job-lifecycle scheduler.
//!
//! [`ScheduledServer`] is the glue the HTTP front-end and the churn replay
//! drive instead of a bare [`HyRecServer`] when leases are on:
//!
//! * `issue_jobs` asks the scheduler *which* users most need recomputation
//!   (the staleness queue / churn backlog may override the requested uid),
//!   builds their jobs through the batched pipeline, and stamps each with
//!   its lease credentials.
//! * `complete_updates` validates every [`KnnUpdate`] against the lease
//!   table — stale-epoch, non-leased, duplicate, NaN/out-of-range
//!   similarity and unknown-neighbor completions are rejected with
//!   per-reason counters — and applies only the survivors through
//!   [`HyRecServer::apply_updates`].
//! * `sweep_and_recover` expires abandoned leases; users whose escalation
//!   ladder is exhausted are recomputed **server-side** by running the
//!   widget kernel on the server (the centralized CRec-style path the
//!   paper falls back to when browsers cannot be trusted to return).
//! * `spawn_sweeper` runs that recovery on a timer thread for live
//!   deployments; harnesses with logical clocks call the explicit-`now`
//!   methods directly.

use crate::server::HyRecServer;
use hyrec_client::Widget;
use hyrec_core::{ItemId, UserId, Vote};
use hyrec_sched::{RejectReason, SchedConfig, Scheduler, SweepReport, Tick};
use hyrec_wire::{KnnUpdate, PersonalizationJob};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A [`HyRecServer`] whose job issue / update apply pair is routed through
/// the job-lifecycle [`Scheduler`].
///
/// ```
/// use hyrec_core::{ItemId, UserId, Vote};
/// use hyrec_server::{HyRecServer, ScheduledServer};
/// use hyrec_client::Widget;
/// use std::sync::Arc;
///
/// let scheduled = ScheduledServer::new(
///     Arc::new(HyRecServer::builder().k(2).seed(3).build()),
///     hyrec_sched::SchedConfig::default(),
/// );
/// scheduled.record(UserId(1), ItemId(10), Vote::Like, 0);
/// scheduled.record(UserId(2), ItemId(10), Vote::Like, 0);
///
/// // One leased interaction: issue → widget → validated completion.
/// let job = scheduled.issue_jobs(&[UserId(1)], 1).pop().unwrap();
/// assert!(job.lease > 0);
/// let out = Widget::new().run_job(&job);
/// assert_eq!(scheduled.complete_updates(&[out.update], 2), vec![Ok(())]);
/// ```
pub struct ScheduledServer {
    inner: Arc<HyRecServer>,
    sched: Scheduler,
    /// Server-side widget kernel for escalation-exhausted users (the
    /// centralized fallback — same algorithms the browser would run).
    fallback_widget: Widget,
    /// Serializes validated-completion *application* (browser completions
    /// and fallback recomputes alike). The scheduler's epoch check gates
    /// admission, but without an ordering lock a thread preempted between
    /// validation and `apply_updates` could write an older neighbourhood
    /// over a newer one.
    apply_order: parking_lot::Mutex<()>,
    /// Origin of the wall-clock tick stream ([`Self::now_ms`]).
    origin: Instant,
}

impl std::fmt::Debug for ScheduledServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledServer")
            .field("server", &self.inner)
            .field("sched", &self.sched.config())
            .finish()
    }
}

impl ScheduledServer {
    /// Wraps a server with a scheduler configured by `config`.
    #[must_use]
    pub fn new(server: Arc<HyRecServer>, config: SchedConfig) -> Self {
        Self {
            inner: server,
            sched: Scheduler::new(config),
            fallback_widget: Widget::new(),
            apply_order: parking_lot::Mutex::new(()),
            origin: Instant::now(),
        }
    }

    /// The wrapped server.
    #[must_use]
    pub fn server(&self) -> &Arc<HyRecServer> {
        &self.inner
    }

    /// The scheduler (lease table, staleness queue, stats).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Milliseconds since this wrapper was created — the tick stream the
    /// HTTP front-end feeds into the explicit-`now` methods.
    #[must_use]
    pub fn now_ms(&self) -> Tick {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records a rating and bumps the user's staleness priority.
    pub fn record(&self, user: UserId, item: ItemId, vote: Vote, now: Tick) -> bool {
        let changed = self.inner.record(user, item, vote);
        self.sched.note_vote(user, now);
        changed
    }

    /// Batched [`Self::record`]: one scheduler lock + one table sweep for
    /// a coalesced `/rate/` burst.
    #[must_use]
    pub fn record_many(&self, votes: &[(UserId, ItemId, Vote)], now: Tick) -> Vec<bool> {
        let changed = self.inner.record_many(votes);
        let users: Vec<UserId> = votes.iter().map(|&(user, _, _)| user).collect();
        self.sched.note_votes(&users, now);
        changed
    }

    /// Issues leased personalization jobs for a batch of requests.
    ///
    /// Each returned job is the scheduler's pick for that request slot —
    /// the churn backlog and the staleness queue may override the
    /// requested uid — and carries its lease credentials in
    /// [`PersonalizationJob::lease`] / [`PersonalizationJob::epoch`].
    ///
    /// A uid the server has never seen a vote from does **not** mint
    /// scheduler state: arbitrary browser-supplied ids must not grow the
    /// lease table or, worse, buy a server-side fallback compute by
    /// abandoning phantom jobs. Such requests are answered with the
    /// scheduler's anonymous pick (backlog / staleness queue) when one
    /// exists, and otherwise with an *unleased* cold-start job — the
    /// paper's semantics for unknown users, at the seed wire shape. The
    /// user becomes leasable with their first recorded vote.
    #[must_use]
    pub fn issue_jobs(&self, requested: &[UserId], now: Tick) -> Vec<PersonalizationJob> {
        let slots: Vec<Option<UserId>> = requested
            .iter()
            .map(|&uid| self.inner.profile_of(uid).is_some().then_some(uid))
            .collect();
        let grants = self.sched.issue_mixed(&slots, now);
        let picks: Vec<UserId> = grants
            .iter()
            .zip(requested)
            .map(|(grant, &req)| grant.map_or(req, |g| g.user))
            .collect();
        let mut jobs = self.inner.build_jobs(&picks);
        for (job, grant) in jobs.iter_mut().zip(&grants) {
            if let Some(grant) = grant {
                job.lease = grant.lease;
                job.epoch = grant.epoch;
            }
        }
        jobs
    }

    /// Validates a batch of completions; the survivors are applied through
    /// one batched [`HyRecServer::apply_updates`] call. Outcomes come back
    /// in input order, each `Err` naming its (already counted) reason.
    #[must_use]
    pub fn complete_updates(
        &self,
        updates: &[KnnUpdate],
        now: Tick,
    ) -> Vec<Result<(), RejectReason>> {
        let mut accepted = Vec::with_capacity(updates.len());
        // Admission (scheduler) and application (KNN table) must be
        // ordered together: see the `apply_order` field.
        let _ordered = self.apply_order.lock();
        // One anonymizer (or profile-table) checker for the whole burst —
        // the per-neighbour resolvability probe never re-locks.
        let outcomes: Vec<Result<(), RejectReason>> = self.inner.with_neighbor_checker(|known| {
            updates
                .iter()
                .map(|update| {
                    let neighbors: Vec<(UserId, f64)> = update
                        .neighbors
                        .iter()
                        .map(|n| (n.user, n.similarity))
                        .collect();
                    let verdict = self.sched.complete(
                        update.uid,
                        update.lease,
                        update.epoch,
                        &neighbors,
                        now,
                        &mut *known,
                    );
                    if verdict.is_ok() {
                        accepted.push(update.clone());
                    }
                    verdict
                })
                .collect()
        });
        self.inner.apply_updates(&accepted);
        outcomes
    }

    /// Expires overdue leases and immediately recomputes every user whose
    /// escalation ladder is exhausted — server-side, with the same widget
    /// kernel a browser would run. Returns the sweep report and the number
    /// of fallback recomputations performed.
    pub fn sweep_and_recover(&self, now: Tick) -> (SweepReport, usize) {
        let report = self.sched.sweep(now);
        (report, self.run_fallbacks(now))
    }

    /// Runs the server-side fallback compute for every user in the pen.
    pub fn run_fallbacks(&self, now: Tick) -> usize {
        let users = self.sched.take_fallback();
        if users.is_empty() {
            return 0;
        }
        let jobs = self.inner.build_jobs(&users);
        let updates: Vec<KnnUpdate> = jobs
            .iter()
            .map(|job| self.fallback_widget.run_job(job).update)
            .collect();
        // Same ordering lock as `complete_updates`: the recompute must
        // not interleave with a concurrent validated browser completion's
        // apply for the same user.
        let _ordered = self.apply_order.lock();
        self.inner.apply_updates(&updates);
        for &user in &users {
            self.sched.mark_refreshed(user, now);
        }
        users.len()
    }

    /// Spawns a background sweeper thread driving
    /// [`Self::sweep_and_recover`] every `interval` on the wall clock.
    /// Stops (and joins) when the returned handle is dropped or stopped.
    #[must_use]
    pub fn spawn_sweeper(self: &Arc<Self>, interval: Duration) -> SweeperHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let scheduled = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("hyrec-sweeper".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let now = scheduled.now_ms();
                    let _ = scheduled.sweep_and_recover(now);
                }
            })
            .expect("spawn sweeper thread");
        SweeperHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle owning the background sweeper thread.
#[derive(Debug)]
pub struct SweeperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SweeperHandle {
    /// Signals the sweeper to stop and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SweeperHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HyRecConfig;

    fn scheduled(anonymize: bool, sched: SchedConfig) -> Arc<ScheduledServer> {
        let server = Arc::new(HyRecServer::with_config(
            HyRecConfig::builder()
                .k(3)
                .r(5)
                .anonymize_users(anonymize)
                .seed(11)
                .build(),
        ));
        let scheduled = ScheduledServer::new(server, sched);
        for u in 0..18u32 {
            let base = (u % 3) * 100;
            for i in 0..6u32 {
                scheduled.record(UserId(u), ItemId(base + i), Vote::Like, 0);
            }
        }
        Arc::new(scheduled)
    }

    #[test]
    fn leased_loop_converges_like_the_plain_one() {
        let scheduled = scheduled(false, SchedConfig::default());
        let widget = Widget::new();
        let users: Vec<UserId> = (0..18u32).map(UserId).collect();
        for round in 0..6u64 {
            let jobs = scheduled.issue_jobs(&users, round * 10);
            let updates: Vec<KnnUpdate> = jobs.iter().map(|j| widget.run_job(j).update).collect();
            let outcomes = scheduled.complete_updates(&updates, round * 10 + 5);
            assert!(outcomes.iter().all(Result::is_ok), "round {round}");
        }
        assert!(scheduled.server().average_view_similarity() > 0.99);
        let stats = scheduled.scheduler().stats();
        assert_eq!(stats.issued(), 6 * 18);
        assert_eq!(stats.completed(), 6 * 18);
        assert_eq!(stats.rejected_total(), 0);
    }

    #[test]
    fn completions_validate_against_the_lease_table() {
        let scheduled = scheduled(false, SchedConfig::default());
        let widget = Widget::new();
        let job = scheduled.issue_jobs(&[UserId(1)], 0).pop().unwrap();
        let real = widget.run_job(&job).update;

        // Unleased, fabricated-neighbour and out-of-range forgeries all
        // bounce before apply_updates; the real completion lands.
        let unleased = KnnUpdate {
            lease: 0,
            ..real.clone()
        };
        let forged_neighbor = KnnUpdate {
            neighbors: vec![hyrec_core::Neighbor {
                user: UserId(9999),
                similarity: 0.5,
            }],
            ..real.clone()
        };
        let forged_sim = KnnUpdate {
            neighbors: vec![hyrec_core::Neighbor {
                user: UserId(2),
                similarity: 7.0,
            }],
            ..real.clone()
        };
        let outcomes =
            scheduled.complete_updates(&[unleased, forged_neighbor, forged_sim, real], 1);
        assert_eq!(
            outcomes,
            vec![
                Err(RejectReason::NotLeased),
                Err(RejectReason::UnknownNeighbor),
                Err(RejectReason::OutOfRangeSimilarity),
                Ok(()),
            ]
        );
        assert_eq!(scheduled.server().updates_applied(), 1);
        assert!(scheduled.server().knn_of(UserId(1)).is_some());
    }

    #[test]
    fn anonymized_completions_resolve_pseudonyms_in_validation() {
        let scheduled = scheduled(true, SchedConfig::default());
        let widget = Widget::new();
        let job = scheduled.issue_jobs(&[UserId(0)], 0).pop().unwrap();
        // Candidate ids are pseudonyms — they must count as known.
        let update = widget.run_job(&job).update;
        assert_eq!(scheduled.complete_updates(&[update], 1), vec![Ok(())]);
        // A raw (non-pseudonym) id is unknown under anonymization.
        let job = scheduled.issue_jobs(&[UserId(0)], 2).pop().unwrap();
        let mut update = widget.run_job(&job).update;
        update.neighbors = vec![hyrec_core::Neighbor {
            user: UserId(1),
            similarity: 0.5,
        }];
        assert_eq!(
            scheduled.complete_updates(&[update], 3),
            vec![Err(RejectReason::UnknownNeighbor)]
        );
    }

    #[test]
    fn abandoned_jobs_fall_back_to_server_side_compute() {
        let config = SchedConfig {
            lease_timeout: 5,
            max_reissues: 1,
            ..SchedConfig::default()
        };
        let scheduled = scheduled(false, config);
        // User 1 votes, asks for a job, and the browser vanishes.
        scheduled.record(UserId(1), ItemId(7), Vote::Like, 0);
        let job = scheduled.issue_jobs(&[UserId(1)], 0).pop().unwrap();
        assert_eq!(job.uid, UserId(1));

        // First expiry: the next requesting browser is handed the job…
        let (report, fallbacks) = scheduled.sweep_and_recover(6);
        assert_eq!((report.expired, fallbacks), (1, 0));
        let reissued = scheduled.issue_jobs(&[UserId(2)], 7).pop().unwrap();
        assert_eq!(reissued.uid, UserId(1), "re-issue rung");

        // …and also abandons it: the ladder is exhausted, the server
        // computes the KNN itself.
        let (report, fallbacks) = scheduled.sweep_and_recover(20);
        assert_eq!(report.expired, 1);
        assert_eq!(fallbacks, 1);
        assert!(
            scheduled.server().knn_of(UserId(1)).is_some(),
            "fallback compute must populate the KNN table"
        );
        assert_eq!(scheduled.scheduler().stats().fallbacks(), 1);
        // The user is fresh: no longer overdue (the other seeded users
        // still owe their first refresh, which is fine here).
        assert!(!scheduled
            .scheduler()
            .overdue_users(21, 0)
            .contains(&UserId(1)));
    }

    #[test]
    fn wall_clock_sweeper_recovers_abandoned_jobs() {
        let config = SchedConfig {
            lease_timeout: 30, // ms
            max_reissues: 0,   // straight to fallback
            ..SchedConfig::default()
        };
        let scheduled = scheduled(false, config);
        let sweeper = scheduled.spawn_sweeper(Duration::from_millis(10));
        scheduled.record(UserId(1), ItemId(7), Vote::Like, scheduled.now_ms());
        let job = scheduled
            .issue_jobs(&[UserId(1)], scheduled.now_ms())
            .pop()
            .unwrap();
        assert!(job.lease > 0);
        // Abandon it; within a few sweeper periods the fallback fires.
        let deadline = Instant::now() + Duration::from_secs(5);
        while scheduled.scheduler().stats().fallbacks() == 0 {
            assert!(Instant::now() < deadline, "sweeper never recovered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(scheduled.server().knn_of(UserId(1)).is_some());
        sweeper.stop();
    }
}
