//! The Sampler — Section 3.1's candidate-set construction.
//!
//! "The sampler samples a candidate set `S_u(t)` for a user `u` at time `t`
//! by aggregating three sets: (i) the current approximation of `u`'s KNN,
//! `N_u`, (ii) the current KNN of the users in `N_u`, and (iii) `k` random
//! users."
//!
//! The [`Sampler`] trait is the paper's `interface Sampler {…}` (Table 1):
//! content providers can swap the strategy without touching the
//! orchestrator.

use hyrec_core::{CandidateSet, KnnTable, ProfileTable, UserId};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::Rng;

/// Read-only view of server state handed to samplers.
pub struct SamplerContext<'a> {
    /// The global profile table.
    pub profiles: &'a ProfileTable,
    /// The global KNN table.
    pub knn: &'a KnnTable,
    /// Registry of all user ids ever seen (for uniform random picks).
    pub directory: &'a UserDirectory,
}

/// Append-only registry of user ids supporting O(1) uniform sampling.
///
/// The profile table shards make "pick a uniformly random user" awkward;
/// this directory keeps a flat list, which also matches the paper's server
/// that knows the full user population. Registration is idempotent — a
/// membership set lives under the same lock as the list — so racing
/// first-vote ingest paths (two coalesced `/rate/` batches carrying the
/// same new user on different workers) cannot double-weight a user in the
/// sampler's random leg.
#[derive(Debug, Default)]
pub struct UserDirectory {
    inner: RwLock<DirectoryInner>,
}

#[derive(Debug, Default)]
struct DirectoryInner {
    list: Vec<UserId>,
    members: hyrec_core::FastHashSet<UserId>,
}

impl UserDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user; duplicate registrations are no-ops.
    pub fn register(&self, user: UserId) {
        let mut inner = self.inner.write();
        if inner.members.insert(user) {
            inner.list.push(user);
        }
    }

    /// Number of registered users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().list.len()
    }

    /// True when no user is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().list.is_empty()
    }

    /// Draws up to `n` users uniformly at random (with replacement across
    /// draws, deduplicated by the candidate set downstream).
    pub fn random_users(&self, n: usize, rng: &mut StdRng) -> Vec<UserId> {
        let inner = self.inner.read();
        let users = &inner.list;
        if users.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| users[rng.gen_range(0..users.len())])
            .collect()
    }

    /// Draws `groups` independent legs of `per_group` random users while
    /// holding the registry lock once.
    ///
    /// Draw order is identical to `groups` sequential [`Self::random_users`]
    /// calls, so batched and per-user sampling consume the same RNG stream
    /// and produce the same candidates.
    pub fn random_users_many(
        &self,
        per_group: usize,
        groups: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<UserId>> {
        let inner = self.inner.read();
        let users = &inner.list;
        if users.is_empty() {
            return vec![Vec::new(); groups];
        }
        (0..groups)
            .map(|_| {
                (0..per_group)
                    .map(|_| users[rng.gen_range(0..users.len())])
                    .collect()
            })
            .collect()
    }

    /// Snapshot of all registered users.
    #[must_use]
    pub fn snapshot(&self) -> Vec<UserId> {
        self.inner.read().list.clone()
    }
}

/// A candidate-set construction strategy (Table 1's `Sampler` interface).
pub trait Sampler: Send + Sync {
    /// Builds the candidate set for `user`.
    ///
    /// Implementations must not include `user` itself (self-similarity is
    /// trivially 1.0 and would poison the KNN) and should respect the
    /// paper's size bound for comparability.
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet;

    /// Builds candidate sets for a whole batch of users.
    ///
    /// The default implementation loops [`Self::sample`]; strategies that
    /// can amortize table traffic across the batch (see [`DefaultSampler`])
    /// override it. Implementations must return one set per user, in input
    /// order, and must consume the RNG exactly as the sequential loop would
    /// so batched and per-user request paths stay replay-identical.
    fn sample_batch(
        &self,
        users: &[UserId],
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<CandidateSet> {
        users
            .iter()
            .map(|&user| self.sample(user, k, random_candidates, ctx, rng))
            .collect()
    }

    /// Short stable name for experiment output.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The paper's sampler: `N_u ∪ KNN(N_u) ∪ random`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultSampler;

impl Sampler for DefaultSampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        let mut set = CandidateSet::with_capacity(2 * k + k * k);
        let push = |set: &mut CandidateSet, candidate: UserId| {
            if candidate != user && !set.contains(candidate) {
                if let Some(profile) = ctx.profiles.get(candidate) {
                    set.insert(candidate, profile);
                }
            }
        };

        // (i) current KNN of u; (ii) KNN of each neighbour (2-hop).
        let neighbors: Vec<UserId> = ctx
            .knn
            .with(user, |hood| hood.users().collect())
            .unwrap_or_default();
        for &v in &neighbors {
            push(&mut set, v);
        }
        for &v in &neighbors {
            let two_hop: Vec<UserId> = ctx
                .knn
                .with(v, |hood| hood.users().collect())
                .unwrap_or_default();
            for w in two_hop {
                push(&mut set, w);
            }
        }

        // (iii) k random users (bootstraps new users and prevents local
        // optima).
        for w in ctx.directory.random_users(random_candidates, rng) {
            push(&mut set, w);
        }
        set
    }

    /// Batched candidate assembly with amortized table traffic.
    ///
    /// The sequential path acquires a KNN-shard lock per neighbourhood read
    /// and a profile-shard lock per candidate; for a batch of `B` users with
    /// `|S_u|` candidates each that is `O(B · |S_u|)` acquisitions. This
    /// override stages the same reads through the tables' `get_many`
    /// batch operations — one acquisition per *touched shard* per stage —
    /// and produces byte-identical candidate sets: random legs are drawn in
    /// user order (same RNG stream), and per-user insertion order (1-hop,
    /// 2-hop, random) is preserved.
    fn sample_batch(
        &self,
        users: &[UserId],
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<CandidateSet> {
        // Random legs first, in user order — identical RNG consumption to
        // looping `sample`, with the directory lock held once.
        let random_legs = ctx
            .directory
            .random_users_many(random_candidates, users.len(), rng);

        // 1-hop neighbourhoods of the whole batch (ids extracted under the
        // shard locks; no Neighborhood is cloned).
        let one_hop: Vec<Vec<UserId>> = ctx
            .knn
            .map_many(users, |h| h.users().collect())
            .into_iter()
            .map(Option::unwrap_or_default)
            .collect();

        // 2-hop: every distinct 1-hop neighbour across the batch, fetched
        // once (converged tables repeat the same neighbours heavily).
        // `hop_ids` stays sorted, so lookups are binary searches into the
        // parallel list — no hash map in the hot path.
        let mut hop_ids: Vec<UserId> = one_hop.iter().flatten().copied().collect();
        hop_ids.sort_unstable();
        hop_ids.dedup();
        let two_hop_lists: Vec<Vec<UserId>> = ctx
            .knn
            .map_many(&hop_ids, |h| h.users().collect())
            .into_iter()
            .map(Option::unwrap_or_default)
            .collect();
        let two_hop = |v: UserId| -> &[UserId] {
            hop_ids
                .binary_search(&v)
                .map_or(&[][..], |idx| &two_hop_lists[idx])
        };

        // Per-user candidate id lists in the sequential insertion order,
        // concatenated flat. The dedup scratch set is allocated once and
        // reused across the whole batch.
        let mut flat_ids: Vec<UserId> = Vec::with_capacity(users.len() * (2 * k + k * k));
        let mut spans = Vec::with_capacity(users.len());
        let mut scratch =
            hyrec_core::FastHashSet::with_capacity_and_hasher(2 * k + k * k, Default::default());
        for (i, &user) in users.iter().enumerate() {
            let start = flat_ids.len();
            scratch.clear();
            let mut push = |candidate: UserId, flat_ids: &mut Vec<UserId>| {
                if candidate != user && scratch.insert(candidate) {
                    flat_ids.push(candidate);
                }
            };
            for &v in &one_hop[i] {
                push(v, &mut flat_ids);
            }
            for &v in &one_hop[i] {
                for &w in two_hop(v) {
                    push(w, &mut flat_ids);
                }
            }
            for &w in &random_legs[i] {
                push(w, &mut flat_ids);
            }
            spans.push(start..flat_ids.len());
        }

        // Cross-batch dedup, then one shard-grouped fetch of each distinct
        // profile. Once the KNN tables converge, the users of a batch draw
        // from heavily overlapping communities ("more and more as the KNN
        // tables converge"), so the distinct-profile count is a small
        // fraction of the flat id count — each distinct profile is fetched
        // once and fanned out as `Arc` clones.
        let mut index_of: hyrec_core::FastHashMap<UserId, u32> =
            hyrec_core::FastHashMap::with_capacity_and_hasher(flat_ids.len(), Default::default());
        let mut unique: Vec<UserId> = Vec::with_capacity(flat_ids.len());
        let slot_of: Vec<u32> = flat_ids
            .iter()
            .map(|&id| {
                *index_of.entry(id).or_insert_with(|| {
                    unique.push(id);
                    (unique.len() - 1) as u32
                })
            })
            .collect();
        let profiles = ctx.profiles.get_many(&unique);

        spans
            .into_iter()
            .map(|span| {
                // Ids were deduplicated during list assembly, so the set is
                // constructed without re-hashing anything.
                let members = flat_ids[span.clone()]
                    .iter()
                    .zip(&slot_of[span])
                    .filter_map(|(&id, &slot)| {
                        profiles[slot as usize].as_ref().map(|profile| {
                            hyrec_core::CandidateProfile {
                                user: id,
                                profile: hyrec_core::SharedProfile::clone(profile),
                            }
                        })
                    })
                    .collect();
                CandidateSet::from_deduped(members)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

/// Ablation sampler: random users only (no gossip structure). Converges far
/// more slowly — used to quantify the value of the 2-hop feedback loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomOnlySampler;

impl Sampler for RandomOnlySampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        let budget = k + k * k + random_candidates;
        let mut set = CandidateSet::with_capacity(budget);
        for w in ctx.directory.random_users(budget, rng) {
            if w != user && !set.contains(w) {
                if let Some(profile) = ctx.profiles.get(w) {
                    set.insert(w, profile);
                }
            }
        }
        set
    }

    fn name(&self) -> &'static str {
        "random-only"
    }
}

/// Ablation sampler: neighbours and 2-hop only, no random injection. Prone
/// to getting stuck in local optima exactly as Section 3.1 warns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRandomSampler;

impl Sampler for NoRandomSampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        _random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        DefaultSampler.sample(user, k, 0, ctx, rng)
    }

    fn name(&self) -> &'static str {
        "no-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{ItemId, Neighbor, Neighborhood, Vote};
    use rand::SeedableRng;

    fn context() -> (ProfileTable, KnnTable, UserDirectory) {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        for u in 0..50u32 {
            profiles.record(UserId(u), ItemId(u % 7), Vote::Like);
            directory.register(UserId(u));
        }
        (profiles, knn, directory)
    }

    fn hood(users: &[u32]) -> Neighborhood {
        Neighborhood::from_neighbors(users.iter().map(|&u| Neighbor {
            user: UserId(u),
            similarity: 0.5,
        }))
    }

    #[test]
    fn aggregates_one_hop_two_hop_and_random() {
        let (profiles, knn, directory) = context();
        knn.update(UserId(0), hood(&[1, 2]));
        knn.update(UserId(1), hood(&[3, 4]));
        knn.update(UserId(2), hood(&[5]));
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let set = DefaultSampler.sample(UserId(0), 2, 2, &ctx, &mut rng);

        for expected in [1u32, 2, 3, 4, 5] {
            assert!(set.contains(UserId(expected)), "missing u{expected}");
        }
        // Requester never appears.
        assert!(!set.contains(UserId(0)));
    }

    #[test]
    fn respects_size_bound() {
        let (profiles, knn, directory) = context();
        // Fully-populated tables: every user has k neighbours.
        let k = 5usize;
        for u in 0..50u32 {
            let others: Vec<u32> = (0..50)
                .filter(|&v| v != u)
                .take(k as u32 as usize)
                .collect();
            knn.update(UserId(u), hood(&others));
        }
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for u in 0..50u32 {
            let set = DefaultSampler.sample(UserId(u), k, k, &ctx, &mut rng);
            assert!(
                set.len() <= hyrec_core::candidate_set_bound(k),
                "candidate set {} exceeds bound {}",
                set.len(),
                hyrec_core::candidate_set_bound(k)
            );
        }
    }

    #[test]
    fn bootstrap_user_gets_random_candidates() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(3);
        // No KNN entry for u0 yet: candidates come only from the random leg.
        let set = DefaultSampler.sample(UserId(0), 10, 10, &ctx, &mut rng);
        assert!(!set.is_empty());
        assert!(set.len() <= 10);
    }

    #[test]
    fn empty_directory_yields_empty_set() {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let set = DefaultSampler.sample(UserId(0), 10, 10, &ctx, &mut rng);
        assert!(set.is_empty());
    }

    #[test]
    fn candidates_without_profiles_are_skipped() {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        // u1 is in u0's KNN but has no profile (e.g. purged).
        knn.update(UserId(0), hood(&[1]));
        directory.register(UserId(0));
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let set = DefaultSampler.sample(UserId(0), 2, 0, &ctx, &mut rng);
        assert!(set.is_empty());
    }

    #[test]
    fn directory_registration_is_idempotent() {
        // Racing first-vote paths may register the same user twice; the
        // directory must not double-weight them in the random leg.
        let directory = UserDirectory::new();
        for _ in 0..3 {
            directory.register(UserId(7));
        }
        directory.register(UserId(8));
        assert_eq!(directory.len(), 2);
        assert_eq!(directory.snapshot(), vec![UserId(7), UserId(8)]);
    }

    #[test]
    fn ablation_samplers_have_names() {
        assert_eq!(DefaultSampler.name(), "default");
        assert_eq!(RandomOnlySampler.name(), "random-only");
        assert_eq!(NoRandomSampler.name(), "no-random");
    }

    #[test]
    fn no_random_sampler_is_empty_without_knn() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let set = NoRandomSampler.sample(UserId(0), 5, 5, &ctx, &mut rng);
        assert!(set.is_empty(), "no-random sampler cannot bootstrap");
    }

    #[test]
    fn random_only_excludes_requester() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext {
            profiles: &profiles,
            knn: &knn,
            directory: &directory,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let set = RandomOnlySampler.sample(UserId(3), 3, 3, &ctx, &mut rng);
            assert!(!set.contains(UserId(3)));
        }
    }
}
