//! The Sampler — Section 3.1's candidate-set construction.
//!
//! "The sampler samples a candidate set `S_u(t)` for a user `u` at time `t`
//! by aggregating three sets: (i) the current approximation of `u`'s KNN,
//! `N_u`, (ii) the current KNN of the users in `N_u`, and (iii) `k` random
//! users."
//!
//! The [`Sampler`] trait is the paper's `interface Sampler {…}` (Table 1):
//! content providers can swap the strategy without touching the
//! orchestrator.

use hyrec_core::{CandidateSet, KnnTable, ProfileTable, UserId};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::Rng;

/// Read-only view of server state handed to samplers.
pub struct SamplerContext<'a> {
    /// The global profile table.
    pub profiles: &'a ProfileTable,
    /// The global KNN table.
    pub knn: &'a KnnTable,
    /// Registry of all user ids ever seen (for uniform random picks).
    pub directory: &'a UserDirectory,
}

/// Append-only registry of user ids supporting O(1) uniform sampling.
///
/// The profile table shards make "pick a uniformly random user" awkward;
/// this directory keeps a flat list, which also matches the paper's server
/// that knows the full user population.
#[derive(Debug, Default)]
pub struct UserDirectory {
    users: RwLock<Vec<UserId>>,
}

impl UserDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user; duplicates are the caller's responsibility
    /// (the server registers exactly once per new profile).
    pub fn register(&self, user: UserId) {
        self.users.write().push(user);
    }

    /// Number of registered users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.read().len()
    }

    /// True when no user is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.read().is_empty()
    }

    /// Draws up to `n` users uniformly at random (with replacement across
    /// draws, deduplicated by the candidate set downstream).
    pub fn random_users(&self, n: usize, rng: &mut StdRng) -> Vec<UserId> {
        let users = self.users.read();
        if users.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| users[rng.gen_range(0..users.len())]).collect()
    }

    /// Snapshot of all registered users.
    #[must_use]
    pub fn snapshot(&self) -> Vec<UserId> {
        self.users.read().clone()
    }
}

/// A candidate-set construction strategy (Table 1's `Sampler` interface).
pub trait Sampler: Send + Sync {
    /// Builds the candidate set for `user`.
    ///
    /// Implementations must not include `user` itself (self-similarity is
    /// trivially 1.0 and would poison the KNN) and should respect the
    /// paper's size bound for comparability.
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet;

    /// Short stable name for experiment output.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The paper's sampler: `N_u ∪ KNN(N_u) ∪ random`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultSampler;

impl Sampler for DefaultSampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        let mut set = CandidateSet::with_capacity(2 * k + k * k);
        let push = |set: &mut CandidateSet, candidate: UserId| {
            if candidate != user && !set.contains(candidate) {
                if let Some(profile) = ctx.profiles.get(candidate) {
                    set.insert(candidate, profile);
                }
            }
        };

        // (i) current KNN of u; (ii) KNN of each neighbour (2-hop).
        let neighbors: Vec<UserId> = ctx
            .knn
            .with(user, |hood| hood.users().collect())
            .unwrap_or_default();
        for &v in &neighbors {
            push(&mut set, v);
        }
        for &v in &neighbors {
            let two_hop: Vec<UserId> = ctx
                .knn
                .with(v, |hood| hood.users().collect())
                .unwrap_or_default();
            for w in two_hop {
                push(&mut set, w);
            }
        }

        // (iii) k random users (bootstraps new users and prevents local
        // optima).
        for w in ctx.directory.random_users(random_candidates, rng) {
            push(&mut set, w);
        }
        set
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

/// Ablation sampler: random users only (no gossip structure). Converges far
/// more slowly — used to quantify the value of the 2-hop feedback loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomOnlySampler;

impl Sampler for RandomOnlySampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        let budget = k + k * k + random_candidates;
        let mut set = CandidateSet::with_capacity(budget);
        for w in ctx.directory.random_users(budget, rng) {
            if w != user && !set.contains(w) {
                if let Some(profile) = ctx.profiles.get(w) {
                    set.insert(w, profile);
                }
            }
        }
        set
    }

    fn name(&self) -> &'static str {
        "random-only"
    }
}

/// Ablation sampler: neighbours and 2-hop only, no random injection. Prone
/// to getting stuck in local optima exactly as Section 3.1 warns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRandomSampler;

impl Sampler for NoRandomSampler {
    fn sample(
        &self,
        user: UserId,
        k: usize,
        _random_candidates: usize,
        ctx: &SamplerContext<'_>,
        rng: &mut StdRng,
    ) -> CandidateSet {
        DefaultSampler.sample(user, k, 0, ctx, rng)
    }

    fn name(&self) -> &'static str {
        "no-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrec_core::{ItemId, Neighbor, Neighborhood, Vote};
    use rand::SeedableRng;

    fn context() -> (ProfileTable, KnnTable, UserDirectory) {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        for u in 0..50u32 {
            profiles.record(UserId(u), ItemId(u % 7), Vote::Like);
            directory.register(UserId(u));
        }
        (profiles, knn, directory)
    }

    fn hood(users: &[u32]) -> Neighborhood {
        Neighborhood::from_neighbors(
            users
                .iter()
                .map(|&u| Neighbor { user: UserId(u), similarity: 0.5 }),
        )
    }

    #[test]
    fn aggregates_one_hop_two_hop_and_random() {
        let (profiles, knn, directory) = context();
        knn.update(UserId(0), hood(&[1, 2]));
        knn.update(UserId(1), hood(&[3, 4]));
        knn.update(UserId(2), hood(&[5]));
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(1);
        let set = DefaultSampler.sample(UserId(0), 2, 2, &ctx, &mut rng);

        for expected in [1u32, 2, 3, 4, 5] {
            assert!(set.contains(UserId(expected)), "missing u{expected}");
        }
        // Requester never appears.
        assert!(!set.contains(UserId(0)));
    }

    #[test]
    fn respects_size_bound() {
        let (profiles, knn, directory) = context();
        // Fully-populated tables: every user has k neighbours.
        let k = 5usize;
        for u in 0..50u32 {
            let others: Vec<u32> = (0..50).filter(|&v| v != u).take(k as u32 as usize).collect();
            knn.update(UserId(u), hood(&others));
        }
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(2);
        for u in 0..50u32 {
            let set = DefaultSampler.sample(UserId(u), k, k, &ctx, &mut rng);
            assert!(
                set.len() <= hyrec_core::candidate_set_bound(k),
                "candidate set {} exceeds bound {}",
                set.len(),
                hyrec_core::candidate_set_bound(k)
            );
        }
    }

    #[test]
    fn bootstrap_user_gets_random_candidates() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(3);
        // No KNN entry for u0 yet: candidates come only from the random leg.
        let set = DefaultSampler.sample(UserId(0), 10, 10, &ctx, &mut rng);
        assert!(!set.is_empty());
        assert!(set.len() <= 10);
    }

    #[test]
    fn empty_directory_yields_empty_set() {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(4);
        let set = DefaultSampler.sample(UserId(0), 10, 10, &ctx, &mut rng);
        assert!(set.is_empty());
    }

    #[test]
    fn candidates_without_profiles_are_skipped() {
        let profiles = ProfileTable::new();
        let knn = KnnTable::new();
        let directory = UserDirectory::new();
        // u1 is in u0's KNN but has no profile (e.g. purged).
        knn.update(UserId(0), hood(&[1]));
        directory.register(UserId(0));
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(5);
        let set = DefaultSampler.sample(UserId(0), 2, 0, &ctx, &mut rng);
        assert!(set.is_empty());
    }

    #[test]
    fn ablation_samplers_have_names() {
        assert_eq!(DefaultSampler.name(), "default");
        assert_eq!(RandomOnlySampler.name(), "random-only");
        assert_eq!(NoRandomSampler.name(), "no-random");
    }

    #[test]
    fn no_random_sampler_is_empty_without_knn() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(6);
        let set = NoRandomSampler.sample(UserId(0), 5, 5, &ctx, &mut rng);
        assert!(set.is_empty(), "no-random sampler cannot bootstrap");
    }

    #[test]
    fn random_only_excludes_requester() {
        let (profiles, knn, directory) = context();
        let ctx = SamplerContext { profiles: &profiles, knn: &knn, directory: &directory };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let set = RandomOnlySampler.sample(UserId(3), 3, 3, &ctx, &mut rng);
            assert!(!set.contains(UserId(3)));
        }
    }
}
