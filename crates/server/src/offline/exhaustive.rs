//! Offline-Ideal: exact all-pairs KNN.
//!
//! The paper's reference back-end "computes similarities between all pairs
//! of users thereby yielding the ideal KNN at each iteration" (Section 5.4).
//! `O(N²)` similarity computations — the quantity Figure 7 shows exploding
//! with dataset size.

use super::{parallel_chunks, OfflineBackend};
use hyrec_core::{knn, Cosine, Neighborhood, SharedProfile, Similarity, UserId};

/// Exact all-pairs KNN with a configurable worker count.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveBackend {
    /// Number of worker threads.
    pub workers: usize,
}

impl Default for ExhaustiveBackend {
    fn default() -> Self {
        Self {
            workers: default_workers(),
        }
    }
}

pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

impl ExhaustiveBackend {
    /// Creates the back-end with an explicit worker count.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Computes the exact KNN table with an arbitrary similarity metric.
    pub fn compute_with<S: Similarity>(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
        metric: &S,
    ) -> Vec<(UserId, Neighborhood)> {
        parallel_chunks(profiles, self.workers, |(user, profile)| {
            let hood = knn::select(
                profile,
                profiles
                    .iter()
                    .filter(|(v, _)| v != user)
                    .map(|(v, p)| (*v, p.as_ref())),
                k,
                metric,
            );
            (*user, hood)
        })
    }
}

impl OfflineBackend for ExhaustiveBackend {
    fn compute(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
    ) -> Vec<(UserId, Neighborhood)> {
        self.compute_with(profiles, k, &Cosine)
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_profiles(clusters: u32, per_cluster: u32) -> Vec<(UserId, SharedProfile)> {
        (0..clusters * per_cluster)
            .map(|u| {
                let cluster = u % clusters;
                let profile = hyrec_core::Profile::from_liked(
                    (0..6u32).map(|i| cluster * 100 + i).collect::<Vec<_>>(),
                );
                (UserId(u), SharedProfile::new(profile))
            })
            .collect()
    }

    #[test]
    fn finds_exact_clusters() {
        let profiles = clustered_profiles(3, 5);
        let table = ExhaustiveBackend::new(2).compute(&profiles, 4);
        assert_eq!(table.len(), 15);
        for (user, hood) in &table {
            assert_eq!(hood.len(), 4);
            for n in hood.iter() {
                assert_eq!(n.user.0 % 3, user.0 % 3, "wrong cluster for {user}");
            }
        }
    }

    #[test]
    fn single_worker_matches_parallel() {
        let profiles = clustered_profiles(2, 6);
        let serial = ExhaustiveBackend::new(1).compute(&profiles, 3);
        let parallel = ExhaustiveBackend::new(4).compute(&profiles, 3);
        assert_eq!(serial.len(), parallel.len());
        for ((ua, ha), (ub, hb)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(ua, ub);
            assert_eq!(ha.view_similarity(), hb.view_similarity());
        }
    }

    #[test]
    fn never_includes_self() {
        let profiles = clustered_profiles(1, 8);
        let table = ExhaustiveBackend::default().compute(&profiles, 7);
        for (user, hood) in &table {
            assert!(!hood.contains(*user));
        }
    }

    #[test]
    fn empty_input() {
        let table = ExhaustiveBackend::default().compute(&[], 5);
        assert!(table.is_empty());
    }

    #[test]
    fn jaccard_variant_works() {
        let profiles = clustered_profiles(2, 4);
        let table = ExhaustiveBackend::new(2).compute_with(&profiles, 3, &hyrec_core::Jaccard);
        assert_eq!(table.len(), 8);
        assert!(table.iter().all(|(_, h)| h.view_similarity() > 0.9));
    }
}
