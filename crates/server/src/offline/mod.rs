//! Offline KNN back-ends — the centralized alternatives of Figure 7.
//!
//! All three back-ends consume a profile snapshot and produce a complete
//! KNN table; they differ in algorithm and cost:
//!
//! * [`ExhaustiveBackend`] (*Offline-Ideal*): all-pairs similarity, exact.
//! * [`CRecBackend`] (*Offline-CRec*): HyRec's sampling iterations run as
//!   synchronous map-reduce rounds until convergence — approximate but far
//!   cheaper, and the baseline the paper selects for the cost analysis.
//! * [`MahoutLikeBackend`] (*MahoutSingle*/*ClusMahout*): exact KNN through
//!   an item-inverted index with the materialized shuffle stages (and
//!   posting caps) characteristic of Mahout's Hadoop implementation.

mod crec_backend;
mod exhaustive;
mod mahout_like;

pub use crec_backend::CRecBackend;
pub use exhaustive::ExhaustiveBackend;
pub use mahout_like::MahoutLikeBackend;

use hyrec_core::{Neighborhood, SharedProfile, UserId};

/// A periodic KNN-selection back-end (the paper's "back-end server").
pub trait OfflineBackend: Send + Sync {
    /// Computes the k-nearest-neighbour table for every user in `profiles`.
    ///
    /// Takes shared profile handles — a `ProfileTable::snapshot()` or a
    /// trace's `final_profiles()` feeds in without copying any item vector.
    /// Result order matches the input order.
    fn compute(
        &self,
        profiles: &[(UserId, SharedProfile)],
        k: usize,
    ) -> Vec<(UserId, Neighborhood)>;

    /// Short stable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Splits `items` into `workers` contiguous chunks and maps them in
/// parallel with std scoped threads, preserving order.
pub(crate) fn parallel_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_chunks_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        for workers in [1, 2, 3, 8] {
            let doubled = parallel_chunks(&items, workers, |&x| x * 2);
            assert_eq!(doubled.len(), 1000);
            assert!(doubled.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
        }
    }

    #[test]
    fn parallel_chunks_handles_empty_and_tiny() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_chunks(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_chunks(&[7u32], 4, |&x| x + 1), vec![8]);
    }
}
